//! The device-independent dispatcher: the server's main loop (§7.3.1).
//!
//! One thread owns all server state.  It multiplexes three input sources —
//! framed client requests, connection lifecycle, and control messages —
//! over a single channel (the `select()` of the original), runs due tasks
//! (the periodic update, wake-ups for suspended clients), and calls into
//! the device-dependent layer through [`crate::buffer::DeviceBuffers`].

use crate::pool::BufferPool;
use crate::state::{
    AccessControl, AtomRegistry, Blocked, BlockedOp, ClientId, ClientState, ConnKick, ControlMsg,
    Device, PropertyValue, RawRequest, ServerAc, ServerEvent, ServerStats,
};
use crate::task::{TaskKind, TaskQueue};
use crate::worker::{AudioJob, WorkerHandle};
use af_dsp::convert::Converter;
use af_proto::request::{play_flags, record_flags, PropertyMode};
use af_proto::{
    message, AcAttributes, AcId, AcMask, Atom, DeviceId, ErrorCode, Event, EventDetail, EventMask,
    Opcode, Reply, Request, SetupReply, WireError, MAX_REQUEST_BYTES,
};
use af_time::ATime;
use crossbeam_channel::{Receiver, RecvTimeoutError};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime};

/// All state owned by the dispatcher thread.
pub struct ServerCore {
    /// Vendor string reported at setup.
    pub vendor: String,
    /// The abstract audio devices.
    pub devices: Vec<Device>,
    /// Connected clients.
    pub clients: HashMap<ClientId, ClientState>,
    /// The atom registry.
    pub atoms: AtomRegistry,
    /// Host access control.
    pub access: AccessControl,
    /// Failure counters, shared with the server handle.
    pub stats: Arc<ServerStats>,
    /// Reply/frame buffer pool, shared with the transport layer so reply
    /// buffers drained by writer threads come back to the dispatcher.
    pub pool: Arc<BufferPool>,
}

impl ServerCore {
    fn device(&mut self, id: DeviceId) -> Option<&mut Device> {
        self.devices.get_mut(id as usize)
    }

    /// Resolves a device id to its buffer owner and, for mono views, the
    /// channel lane (§7.4.1: "the mono channel devices are built on top of
    /// the server's stereo buffers").
    fn resolve(&self, id: DeviceId) -> Option<(usize, Option<u8>)> {
        let d = self.devices.get(id as usize)?;
        match d.mono_of {
            Some((parent, lane)) if parent < self.devices.len() => Some((parent, Some(lane))),
            Some(_) => None,
            None => Some((id as usize, None)),
        }
    }

    /// The buffering engine serving `id`, the view lane, and the owner's
    /// channel count.
    fn buffers_mut(
        &mut self,
        id: DeviceId,
    ) -> Option<(&mut crate::buffer::DeviceBuffers, Option<u8>, u8)> {
        let (owner, lane) = self.resolve(id)?;
        let channels = self.devices[owner].desc.play_nchannels;
        self.devices[owner]
            .buffers
            .as_mut()
            .map(|b| (b, lane, channels))
    }

    /// Current device time of `id` (the owner's clock for mono views).
    /// Sharded devices answer from the worker's published snapshot, so
    /// this never blocks on the data plane.
    fn dev_now(&mut self, id: DeviceId) -> ATime {
        self.try_dev_now(id).unwrap_or(ATime::ZERO)
    }

    /// `dev_now` distinguishing "no such device" from time zero.
    fn try_dev_now(&mut self, id: DeviceId) -> Option<ATime> {
        let (owner, _) = self.resolve(id)?;
        if let Some(w) = &self.devices[owner].worker {
            return Some(w.now());
        }
        self.devices[owner].buffers.as_mut().map(|b| b.now())
    }

    /// The buffer owner's native encoding, whichever plane owns the
    /// buffers.
    fn owner_encoding(&self, owner: usize) -> Option<af_dsp::Encoding> {
        let d = self.devices.get(owner)?;
        d.buffers
            .as_ref()
            .map(|b| b.encoding())
            .or_else(|| d.worker.as_ref().map(|w| w.enc))
    }

    /// Output gain and enablement that apply to `id`'s buffer owner.
    fn output_state(&self, id: DeviceId) -> (i32, bool) {
        match self.resolve(id) {
            Some((owner, _)) => {
                let d = &self.devices[owner];
                (d.output_gain_db, d.output_enabled())
            }
            None => (0, true),
        }
    }
}

/// The dispatcher: event loop plus request handlers.
pub struct Dispatcher {
    core: ServerCore,
    rx: Receiver<ServerEvent>,
    tasks: TaskQueue,
    update_interval: Duration,
    /// Evict clients that send nothing for this long (checked during the
    /// periodic update; suspended clients are exempt — they are waiting on
    /// the server, not the other way round).
    idle_timeout: Option<Duration>,
    shutdown: bool,
    /// Scratch for AC sample-type conversion, reused across requests so a
    /// steady play/record stream converts without allocating.
    conv_buf: Vec<u8>,
    /// Data-plane workers (sharded mode): joined at shutdown, fanned out
    /// to on explicit `RunUpdate` so the handle stays a full barrier.
    workers: Vec<WorkerHandle>,
}

/// Milliseconds since the Unix epoch (the "host clock time" in events).
fn host_time_ms() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

impl Dispatcher {
    /// Creates a dispatcher over `core`, fed by `rx`.
    pub fn new(core: ServerCore, rx: Receiver<ServerEvent>, update_interval: Duration) -> Self {
        Dispatcher {
            core,
            rx,
            tasks: TaskQueue::new(),
            update_interval,
            idle_timeout: None,
            shutdown: false,
            conv_buf: Vec::new(),
            workers: Vec::new(),
        }
    }

    /// Enables idle-connection eviction.
    pub fn with_idle_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.idle_timeout = timeout;
        self
    }

    /// Attaches the data-plane workers (sharded mode).
    pub fn with_workers(mut self, workers: Vec<WorkerHandle>) -> Self {
        self.workers = workers;
        self
    }

    /// Runs until shutdown (the `WaitForSomething` loop).
    pub fn run(mut self) {
        self.tasks
            .schedule(Instant::now() + self.update_interval, TaskKind::Update);
        while !self.shutdown {
            let timeout = self
                .tasks
                .next_deadline()
                .map(|d| d.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::from_secs(1));
            match self.rx.recv_timeout(timeout) {
                Ok(ev) => self.handle_event(ev),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            let now = Instant::now();
            for kind in self.tasks.pop_due(now) {
                match kind {
                    TaskKind::Update => {
                        self.run_update();
                        self.tasks
                            .schedule(now + self.update_interval, TaskKind::Update);
                    }
                    TaskKind::WakeBlocked(device) => self.retry_blocked_device(device),
                }
            }
        }
        // Drain the data plane: each worker exits after its queued jobs.
        for w in &self.workers {
            let _ = w.tx.send(AudioJob::Shutdown);
        }
        for w in self.workers.drain(..) {
            let _ = w.join.join();
        }
    }

    fn handle_event(&mut self, ev: ServerEvent) {
        match ev {
            ServerEvent::NewClient {
                id,
                setup,
                peer,
                tx,
                kick,
            } => self.handle_new_client(id, &setup, peer, tx, kick),
            ServerEvent::Request { id, raw } => {
                if let Some(c) = self.core.clients.get_mut(&id) {
                    c.last_activity = Instant::now();
                }
                let blocked = self
                    .core
                    .clients
                    .get(&id)
                    .map(|c| c.blocked.is_some() || c.awaiting_worker)
                    .unwrap_or(true);
                if blocked {
                    if let Some(c) = self.core.clients.get_mut(&id) {
                        c.queue.push_back(raw);
                    }
                } else {
                    self.process_request(id, raw);
                }
            }
            ServerEvent::ProtocolError { id, error: _ } => {
                // A framing violation poisons only the offending
                // connection; other clients are untouched.
                ServerStats::bump(&self.core.stats.protocol_errors);
                self.evict(id);
            }
            ServerEvent::Disconnect { id } => self.remove_client(id),
            ServerEvent::WorkerDone { id } => {
                if let Some(c) = self.core.clients.get_mut(&id) {
                    c.awaiting_worker = false;
                }
                self.drain_queue(id);
            }
            ServerEvent::Control(msg) => match msg {
                ControlMsg::RunUpdate { ack } => {
                    self.run_update();
                    self.run_worker_updates();
                    let _ = ack.send(());
                }
                ControlMsg::Barrier { ack } => {
                    let _ = ack.send(());
                }
                ControlMsg::Shutdown => self.shutdown = true,
            },
        }
        // Any event may have queued outbound data; evict clients whose
        // bounded queue overflowed rather than buffering without limit.
        self.evict_overflowed();
    }

    fn handle_new_client(
        &mut self,
        id: ClientId,
        setup: &[u8],
        peer: Option<std::net::IpAddr>,
        tx: crate::transport::OutboundTx,
        kick: ConnKick,
    ) {
        let setup = match af_proto::ConnSetup::decode(setup) {
            Ok(s) => s,
            Err(_) => return, // Garbage setup: drop the connection.
        };
        let order = setup.byte_order;
        if !self.core.access.allows(peer) {
            let reply = SetupReply::Failed {
                reason: "host not authorized".to_string(),
            };
            tx.send_blocking(reply.encode(order).into());
            return;
        }
        if setup.major != af_proto::PROTOCOL_MAJOR {
            let reply = SetupReply::Failed {
                reason: format!(
                    "protocol version mismatch: client {}.{}, server {}.{}",
                    setup.major,
                    setup.minor,
                    af_proto::PROTOCOL_MAJOR,
                    af_proto::PROTOCOL_MINOR
                ),
            };
            tx.send_blocking(reply.encode(order).into());
            return;
        }
        let reply = SetupReply::Success {
            major: af_proto::PROTOCOL_MAJOR,
            minor: af_proto::PROTOCOL_MINOR,
            vendor: self.core.vendor.clone(),
            devices: self.core.devices.iter().map(|d| d.desc).collect(),
        };
        tx.send_blocking(reply.encode(order).into());
        self.core
            .clients
            .insert(id, ClientState::new(id, order, tx, kick));
        ServerStats::bump(&self.core.stats.clients_total);
        ServerStats::set(
            &self.core.stats.clients_current,
            self.core.clients.len() as u64,
        );
    }

    fn remove_client(&mut self, id: ClientId) {
        if let Some(client) = self.core.clients.remove(&id) {
            // Release record references held by the client's ACs.
            for ac in client.acs.values() {
                if ac.recording {
                    if let Some((buffers, _, _)) = self.core.buffers_mut(ac.device) {
                        buffers.remove_recorder();
                    } else if let Some((owner, _)) = self.core.resolve(ac.device) {
                        if let Some(w) = &self.core.devices[owner].worker {
                            let _ = w.tx.send(AudioJob::RemoveRecorder { device: owner });
                        }
                    }
                }
            }
            // Drop worker-side converter state for the client's ACs.
            let mut notified: Vec<usize> = Vec::new();
            for d in &self.core.devices {
                if let Some(w) = &d.worker {
                    if !notified.contains(&w.worker_id) {
                        notified.push(w.worker_id);
                        let _ = w.tx.send(AudioJob::ForgetAc {
                            client: id,
                            ac: None,
                        });
                    }
                }
            }
            ServerStats::bump(&self.core.stats.disconnects);
            ServerStats::set(
                &self.core.stats.clients_current,
                self.core.clients.len() as u64,
            );
        }
    }

    /// Forcibly disconnects `id`: closes its socket (unblocking the reader
    /// thread) and drops its state (closing the writer's queue).  The
    /// reader's eventual `Disconnect` event finds nothing and is a no-op.
    fn evict(&mut self, id: ClientId) {
        if let Some(c) = self.core.clients.get(&id) {
            (c.kick)();
        }
        self.remove_client(id);
    }

    /// Evicts every client whose outbound queue overflowed.
    fn evict_overflowed(&mut self) {
        let ids: Vec<ClientId> = self
            .core
            .clients
            .iter()
            .filter(|(_, c)| c.overflowed.load(std::sync::atomic::Ordering::Acquire))
            .map(|(id, _)| *id)
            .collect();
        for id in ids {
            ServerStats::bump(&self.core.stats.evicted_slow);
            self.evict(id);
        }
    }

    /// Evicts clients that have sent nothing for the idle timeout.
    ///
    /// Suspended clients are exempt: they are waiting on the *server* (a
    /// play past the horizon, a blocking record), not the other way round.
    fn sweep_idle(&mut self) {
        let Some(timeout) = self.idle_timeout else {
            return;
        };
        let now = Instant::now();
        let ids: Vec<ClientId> = self
            .core
            .clients
            .iter()
            .filter(|(_, c)| {
                c.blocked.is_none()
                    && !c.awaiting_worker
                    && now.duration_since(c.last_activity) > timeout
            })
            .map(|(id, _)| *id)
            .collect();
        for id in ids {
            ServerStats::bump(&self.core.stats.evicted_idle);
            self.evict(id);
        }
    }

    // ---- The update task (§7.2). ----

    fn run_update(&mut self) {
        // Worker-owned devices have `buffers == None` here and update on
        // their own threads; this loop covers only dispatcher-owned ones.
        for dev in &mut self.core.devices {
            let gain = dev.output_gain_db;
            let enabled = dev.output_enabled();
            if let Some(b) = dev.buffers.as_mut() {
                b.update(gain, enabled);
            }
        }
        self.run_passthrough();
        self.poll_phone_events();
        self.retry_blocked_all();
        self.sweep_idle();
        self.evict_overflowed();
    }

    /// Fans an explicit update out to every worker and waits for the
    /// acks, so `ServerHandle::run_update` remains a synchronous barrier
    /// over the whole server in sharded mode.  The periodic task does
    /// *not* call this — workers run their own periodic updates.
    fn run_worker_updates(&mut self) {
        let mut acks = Vec::with_capacity(self.workers.len());
        for w in &self.workers {
            let (ack, done) = crossbeam_channel::bounded(1);
            if w.tx.send(AudioJob::Update { ack }).is_ok() {
                acks.push(done);
            }
        }
        for done in acks {
            let _ = done.recv_timeout(Duration::from_secs(10));
        }
    }

    /// Moves audio directly between pass-through-connected device pairs.
    ///
    /// LoFi routed this in hardware; here the update task copies the
    /// freshest recorded frames of each device into the other's playback
    /// stream a small lead ahead of now (§7.4.1, "Pass-Through").
    fn run_passthrough(&mut self) {
        for i in 0..self.core.devices.len() {
            let (enabled, peer) = {
                let d = &self.core.devices[i];
                (d.passthrough, d.passthrough_peer)
            };
            let Some(j) = peer else { continue };
            if !enabled || i >= self.core.devices.len() || j >= self.core.devices.len() || i == j {
                continue;
            }
            // Copy peer's fresh record data into our play stream.
            let (src, dst) = if i < j {
                let (a, b) = self.core.devices.split_at_mut(j);
                (&mut b[0], &mut a[i])
            } else {
                let (a, b) = self.core.devices.split_at_mut(i);
                (&mut a[j], &mut b[0])
            };
            let (Some(sb), Some(db)) = (src.buffers.as_mut(), dst.buffers.as_mut()) else {
                continue; // Mono views cannot be pass-through endpoints.
            };
            // dst.pt_in tracks how much of src's record stream we consumed.
            let avail = sb.recorded_until() - dst.pt_in;
            if avail <= 0 {
                continue;
            }
            let frames = (avail as u32).min(sb.frames() / 2);
            let data = sb.read_rec(dst.pt_in, frames);
            let gain = dst.output_gain_db;
            let out_enabled = dst.outputs_enabled != 0;
            db.write_play(dst.pt_out, &data, false, gain, out_enabled);
            dst.pt_in += frames;
            dst.pt_out += frames;
        }
    }

    fn poll_phone_events(&mut self) {
        let mut outgoing: Vec<(DeviceId, Event)> = Vec::new();
        for (idx, dev) in self.core.devices.iter_mut().enumerate() {
            let Some(phone) = &dev.phone else { continue };
            let signals = phone.poll_signals();
            if signals.is_empty() {
                continue;
            }
            let device_time = match dev.buffers.as_mut() {
                Some(b) => b.now(),
                None => dev.worker.as_ref().map(|w| w.now()).unwrap_or(ATime::ZERO),
            };
            for s in signals {
                let detail = match s {
                    af_device::PhoneSignal::Ring(r) => EventDetail::Ring { ringing: r },
                    af_device::PhoneSignal::Dtmf { digit, down } => EventDetail::Dtmf {
                        digit: digit as u8,
                        down,
                    },
                    af_device::PhoneSignal::Loop(c) => EventDetail::Loop { current: c },
                    af_device::PhoneSignal::Hook(h) => EventDetail::Hook { off_hook: h },
                };
                outgoing.push((
                    idx as DeviceId,
                    Event {
                        device: idx as DeviceId,
                        device_time,
                        host_time_ms: host_time_ms(),
                        detail,
                    },
                ));
            }
        }
        for (device, event) in outgoing {
            self.broadcast_event(device, &event);
        }
    }

    fn broadcast_event(&mut self, device: DeviceId, event: &Event) {
        let kind = event.detail.kind();
        for client in self.core.clients.values() {
            if client.mask_for(device).selects(kind) {
                client.send(event.encode(client.order, client.seq));
            }
        }
    }

    // ---- Suspended clients (the task-resume mechanism). ----

    fn retry_blocked_all(&mut self) {
        let ids: Vec<ClientId> = self
            .core
            .clients
            .iter()
            .filter(|(_, c)| c.blocked.is_some())
            .map(|(id, _)| *id)
            .collect();
        for id in ids {
            self.retry_blocked(id);
            // A completed request may unblock queued requests.
            self.drain_queue(id);
        }
    }

    /// Retries only the clients suspended on `device` — the scoped form a
    /// `WakeBlocked(device)` task runs, so one device's wake-up does not
    /// re-attempt every suspended request server-wide.
    fn retry_blocked_device(&mut self, device: DeviceId) {
        let ids: Vec<ClientId> = self
            .core
            .clients
            .iter()
            .filter(|(_, c)| c.blocked.as_ref().is_some_and(|b| b.op.device() == device))
            .map(|(id, _)| *id)
            .collect();
        for id in ids {
            self.retry_blocked(id);
            self.drain_queue(id);
        }
    }

    fn drain_queue(&mut self, id: ClientId) {
        loop {
            let raw = {
                let Some(c) = self.core.clients.get_mut(&id) else {
                    return;
                };
                if c.blocked.is_some() || c.awaiting_worker {
                    return;
                }
                match c.queue.pop_front() {
                    Some(r) => r,
                    None => return,
                }
            };
            self.process_request(id, raw);
        }
    }

    fn retry_blocked(&mut self, id: ClientId) {
        let Some(client) = self.core.clients.get_mut(&id) else {
            return;
        };
        let Some(blocked) = client.blocked.take() else {
            return;
        };
        let seq = blocked.seq;
        let order = client.order;
        match blocked.op {
            BlockedOp::Play {
                device,
                preempt,
                start,
                frames,
                offset,
                suppress_reply,
            } => {
                let (gain, enabled) = self.core.output_state(device);
                let Some((buffers, lane, channels)) = self.core.buffers_mut(device) else {
                    return;
                };
                let fb = match lane {
                    Some(_) => buffers.frame_bytes() / channels.max(1) as usize,
                    None => buffers.frame_bytes(),
                };
                let pending = &frames[offset..];
                let outcome = match lane {
                    Some(ch) => buffers
                        .write_play_channel(start, pending, ch, channels, preempt, gain, enabled),
                    None => buffers.write_play(start, pending, preempt, gain, enabled),
                };
                let consumed = (outcome.dropped_past + outcome.written) as usize * fb;
                if outcome.beyond_horizon > 0 {
                    // Advance the cursor instead of re-copying the tail: the
                    // request bytes are written exactly once no matter how
                    // many wake-ups it takes to drain them.
                    let new_start = start + (outcome.dropped_past + outcome.written);
                    let wake = self.play_wake_instant(device, outcome.beyond_horizon);
                    let Some(client) = self.core.clients.get_mut(&id) else {
                        return; // disconnected mid-retry; drop the blocked op
                    };
                    client.blocked = Some(Blocked {
                        seq,
                        op: BlockedOp::Play {
                            device,
                            preempt,
                            start: new_start,
                            frames,
                            offset: offset + consumed,
                            suppress_reply,
                        },
                    });
                    self.tasks.schedule(wake, TaskKind::WakeBlocked(device));
                } else if !suppress_reply {
                    let now = self.core.dev_now(device);
                    self.send_reply_to(id, order, seq, &Reply::Time { time: now });
                }
            }
            BlockedOp::Record {
                ac,
                device,
                start,
                nframes,
                big_endian,
            } => {
                let ready = {
                    let Some((buffers, _, _)) = self.core.buffers_mut(device) else {
                        return;
                    };
                    let end = start + nframes;
                    !end.is_after(buffers.recorded_until())
                };
                if ready {
                    self.finish_record(id, order, seq, ac, device, start, nframes, big_endian);
                } else {
                    let remaining = {
                        let Some((buffers, _, _)) = self.core.buffers_mut(device) else {
                            return; // device vanished since the check above
                        };
                        let end = start + nframes;
                        (end - buffers.recorded_until()).max(1) as u32
                    };
                    let wake = self.play_wake_instant(device, remaining);
                    let Some(client) = self.core.clients.get_mut(&id) else {
                        return; // disconnected mid-retry; drop the blocked op
                    };
                    client.blocked = Some(Blocked {
                        seq,
                        op: BlockedOp::Record {
                            ac,
                            device,
                            start,
                            nframes,
                            big_endian,
                        },
                    });
                    self.tasks.schedule(wake, TaskKind::WakeBlocked(device));
                }
            }
        }
    }

    /// Estimates when `frames` more frames will have elapsed on `device`.
    fn play_wake_instant(&self, device: DeviceId, frames: u32) -> Instant {
        let rate = self
            .core
            .devices
            .get(device as usize)
            .map(|d| d.desc.play_sample_freq)
            .unwrap_or(8000)
            .max(1);
        let secs = f64::from(frames) / f64::from(rate);
        Instant::now() + Duration::from_secs_f64(secs.max(0.001))
    }

    // ---- Request processing. ----

    fn process_request(&mut self, id: ClientId, raw: RawRequest) {
        let Some(client) = self.core.clients.get_mut(&id) else {
            return;
        };
        client.seq = client.seq.wrapping_add(1);
        let seq = client.seq;
        let order = client.order;

        let opcode = match Opcode::from_wire(raw.opcode) {
            Ok(op) => op,
            Err(_) => {
                self.send_error_to(
                    id,
                    order,
                    seq,
                    ErrorCode::BadRequest,
                    u32::from(raw.opcode),
                    raw.opcode,
                );
                return;
            }
        };
        let request = match Request::decode(order, opcode, &raw.payload) {
            Ok(r) => r,
            Err(_) => {
                self.send_error_to(id, order, seq, ErrorCode::BadLength, 0, opcode.to_wire());
                return;
            }
        };
        self.dispatch(id, order, seq, opcode, request);
    }

    fn dispatch(
        &mut self,
        id: ClientId,
        order: af_proto::ByteOrder,
        seq: u16,
        opcode: Opcode,
        request: Request,
    ) {
        use Request as R;
        let result: Result<Option<Reply>, (ErrorCode, u32)> = match request {
            R::SelectEvents { device, mask } => self.h_select_events(id, device, mask),
            R::CreateAc {
                id: ac_id,
                device,
                mask,
                attrs,
            } => self.h_create_ac(id, ac_id, device, mask, attrs),
            R::ChangeAcAttributes {
                id: ac_id,
                mask,
                attrs,
            } => self.h_change_ac(id, ac_id, mask, attrs),
            R::FreeAc { id: ac_id } => self.h_free_ac(id, ac_id),
            R::PlaySamples {
                ac,
                start_time,
                flags,
                data,
            } => {
                // Play may suspend the client; it handles its own reply.
                self.h_play(id, order, seq, ac, start_time, flags, data);
                return;
            }
            R::RecordSamples {
                ac,
                start_time,
                nbytes,
                flags,
            } => {
                self.h_record(id, order, seq, ac, start_time, nbytes, flags);
                return;
            }
            R::GetTime { device } => match self.core.try_dev_now(device) {
                // Sharded devices answer from the worker's atomic snapshot,
                // so GetTime never waits on the data plane.
                Some(now) => Ok(Some(Reply::Time { time: now })),
                None => Err((ErrorCode::BadDevice, u32::from(device))),
            },
            R::QueryPhone { device } => self.h_query_phone(device),
            R::EnablePassThrough { device } => self.h_passthrough(device, true),
            R::DisablePassThrough { device } => self.h_passthrough(device, false),
            R::HookSwitch { device, off_hook } => self.h_hookswitch(device, off_hook),
            R::FlashHook { device } => self.h_flashhook(device),
            R::EnableGainControl { device } | R::DisableGainControl { device } => {
                // "Not for general use": accepted as no-ops.
                self.core
                    .device(device)
                    .map(|_| None)
                    .ok_or((ErrorCode::BadDevice, u32::from(device)))
            }
            R::DialPhone { .. } => Err((ErrorCode::BadImplementation, 0)),
            R::SetInputGain { device, db } => self.h_set_gain(device, db, true),
            R::SetOutputGain { device, db } => self.h_set_gain(device, db, false),
            R::QueryInputGain { device } => self.h_query_gain(device, true),
            R::QueryOutputGain { device } => self.h_query_gain(device, false),
            R::EnableInput { device, mask } => self.h_io_control(device, mask, true, true),
            R::EnableOutput { device, mask } => self.h_io_control(device, mask, false, true),
            R::DisableInput { device, mask } => self.h_io_control(device, mask, true, false),
            R::DisableOutput { device, mask } => self.h_io_control(device, mask, false, false),
            R::SetAccessControl { enabled } => {
                self.core.access.set_enabled(enabled);
                Ok(None)
            }
            R::ChangeHosts { insert, address } => {
                if address.len() == 4 || address.len() == 16 {
                    self.core.access.change(insert, &address);
                    Ok(None)
                } else {
                    Err((ErrorCode::BadValue, address.len() as u32))
                }
            }
            R::ListHosts => Ok(Some(Reply::Hosts {
                enabled: self.core.access.enabled(),
                hosts: self.core.access.hosts().to_vec(),
            })),
            R::InternAtom {
                only_if_exists,
                name,
            } => Ok(Some(Reply::InternedAtom {
                atom: self.core.atoms.intern(&name, only_if_exists),
            })),
            R::GetAtomName { atom } => match self.core.atoms.name(atom) {
                Some(n) => Ok(Some(Reply::AtomName {
                    name: n.to_string(),
                })),
                None => Err((ErrorCode::BadAtom, atom.0)),
            },
            R::ChangeProperty {
                device,
                mode,
                property,
                type_,
                data,
            } => self.h_change_property(device, mode, property, type_, data),
            R::DeleteProperty { device, property } => self.h_delete_property(device, property),
            R::GetProperty {
                device,
                delete,
                property,
                type_,
            } => self.h_get_property(device, delete, property, type_),
            R::ListProperties { device } => self
                .core
                .device(device)
                .map(|d| {
                    let mut atoms: Vec<Atom> = d.properties.keys().copied().collect();
                    atoms.sort();
                    Some(Reply::Properties { atoms })
                })
                .ok_or((ErrorCode::BadDevice, u32::from(device))),
            R::NoOperation => Ok(None),
            R::SyncConnection => Ok(Some(Reply::Sync)),
            R::QueryExtension { .. } => Ok(Some(Reply::Extension { present: false })),
            R::ListExtensions => Ok(Some(Reply::Extensions { names: Vec::new() })),
            R::KillClient { .. } => Err((ErrorCode::BadImplementation, 0)),
        };
        match result {
            Ok(Some(reply)) => self.send_reply_to(id, order, seq, &reply),
            Ok(None) => {}
            Err((code, bad_value)) => {
                self.send_error_to(id, order, seq, code, bad_value, opcode.to_wire())
            }
        }
    }

    // ---- Individual handlers. ----

    fn h_select_events(
        &mut self,
        id: ClientId,
        device: DeviceId,
        mask: EventMask,
    ) -> Result<Option<Reply>, (ErrorCode, u32)> {
        if self.core.device(device).is_none() {
            return Err((ErrorCode::BadDevice, u32::from(device)));
        }
        if let Some(c) = self.core.clients.get_mut(&id) {
            c.event_masks.insert(device, mask);
        }
        Ok(None)
    }

    fn h_create_ac(
        &mut self,
        id: ClientId,
        ac_id: AcId,
        device: DeviceId,
        mask: AcMask,
        attrs: AcAttributes,
    ) -> Result<Option<Reply>, (ErrorCode, u32)> {
        let (dev_enc, dev_channels) = {
            let (owner, _lane) = self
                .core
                .resolve(device)
                .ok_or((ErrorCode::BadDevice, u32::from(device)))?;
            let enc = self
                .core
                .owner_encoding(owner)
                .ok_or((ErrorCode::BadDevice, u32::from(device)))?;
            // Mono views advertise one channel over the owner's encoding.
            let channels = self.core.devices[device as usize].desc.play_nchannels;
            (enc, channels)
        };
        // The AC starts from device-native defaults, then applies the
        // client's chosen fields.
        let mut effective = AcAttributes {
            encoding: dev_enc,
            channels: dev_channels,
            ..AcAttributes::default()
        };
        effective.apply(mask, &attrs);
        if effective.channels != dev_channels {
            return Err((ErrorCode::BadMatch, u32::from(effective.channels)));
        }
        // The device advertises the sample types its conversion modules
        // handle (§5.4); anything else is a mismatch.
        let supported = self.core.devices[device as usize]
            .desc
            .supports(effective.encoding);
        if !supported || !effective.encoding.is_convertible() {
            return Err((ErrorCode::BadMatch, u32::from(effective.encoding.to_wire())));
        }
        let play_conv =
            Converter::new(effective.encoding, dev_enc).map_err(|_| (ErrorCode::BadMatch, 0))?;
        let rec_conv =
            Converter::new(dev_enc, effective.encoding).map_err(|_| (ErrorCode::BadMatch, 0))?;
        let client = self
            .core
            .clients
            .get_mut(&id)
            .ok_or((ErrorCode::BadAccess, 0))?;
        if client.acs.contains_key(&ac_id) {
            return Err((ErrorCode::BadIdChoice, ac_id));
        }
        client.acs.insert(
            ac_id,
            ServerAc {
                device,
                attrs: effective,
                play_conv,
                rec_conv,
                recording: false,
            },
        );
        Ok(None)
    }

    fn h_change_ac(
        &mut self,
        id: ClientId,
        ac_id: AcId,
        mask: AcMask,
        attrs: AcAttributes,
    ) -> Result<Option<Reply>, (ErrorCode, u32)> {
        let device_channels: HashMap<DeviceId, (af_dsp::Encoding, u8)> =
            (0..self.core.devices.len())
                .filter_map(|i| {
                    let id = i as DeviceId;
                    let (owner, _) = self.core.resolve(id)?;
                    let enc = self.core.owner_encoding(owner)?;
                    Some((id, (enc, self.core.devices[i].desc.play_nchannels)))
                })
                .collect();
        let client = self
            .core
            .clients
            .get_mut(&id)
            .ok_or((ErrorCode::BadAccess, 0))?;
        let ac = client
            .acs
            .get_mut(&ac_id)
            .ok_or((ErrorCode::BadAc, ac_id))?;
        let old_encoding = ac.attrs.encoding;
        ac.attrs.apply(mask, &attrs);
        let (dev_enc, dev_channels) = device_channels[&ac.device];
        if ac.attrs.channels != dev_channels {
            ac.attrs.channels = dev_channels;
            return Err((ErrorCode::BadMatch, 0));
        }
        if ac.attrs.encoding != old_encoding {
            ac.play_conv = Converter::new(ac.attrs.encoding, dev_enc)
                .map_err(|_| (ErrorCode::BadMatch, u32::from(ac.attrs.encoding.to_wire())))?;
            ac.rec_conv =
                Converter::new(dev_enc, ac.attrs.encoding).map_err(|_| (ErrorCode::BadMatch, 0))?;
        }
        Ok(None)
    }

    fn h_free_ac(&mut self, id: ClientId, ac_id: AcId) -> Result<Option<Reply>, (ErrorCode, u32)> {
        let client = self
            .core
            .clients
            .get_mut(&id)
            .ok_or((ErrorCode::BadAccess, 0))?;
        let ac = client.acs.remove(&ac_id).ok_or((ErrorCode::BadAc, ac_id))?;
        if let Some((owner, _)) = self.core.resolve(ac.device) {
            if let Some(w) = &self.core.devices[owner].worker {
                if ac.recording {
                    let _ = w.tx.send(AudioJob::RemoveRecorder { device: owner });
                }
                // Drop the worker's cached converters so a recreated AC
                // starts with fresh codec state, matching the per-AC
                // converters of the classic path.
                let _ = w.tx.send(AudioJob::ForgetAc {
                    client: id,
                    ac: Some(ac_id),
                });
                return Ok(None);
            }
        }
        if ac.recording {
            if let Some((buffers, _, _)) = self.core.buffers_mut(ac.device) {
                buffers.remove_recorder();
            }
        }
        Ok(None)
    }

    #[allow(clippy::too_many_arguments)]
    fn h_play(
        &mut self,
        id: ClientId,
        order: af_proto::ByteOrder,
        seq: u16,
        ac_id: AcId,
        start_time: ATime,
        flags: u8,
        mut data: Vec<u8>,
    ) {
        // Sharded data plane: validate here (control plane), then hand the
        // raw payload to the owning device's worker.  Byte swapping,
        // conversion, gain, and the ring write all happen in-ring on the
        // worker thread; control state is captured now so the job sees
        // exactly what a synchronous request would have seen.
        let sharded = {
            let Some(client) = self.core.clients.get(&id) else {
                return;
            };
            let Some(ac) = client.acs.get(&ac_id) else {
                self.send_error_to(
                    id,
                    order,
                    seq,
                    ErrorCode::BadAc,
                    ac_id,
                    Opcode::PlaySamples.to_wire(),
                );
                return;
            };
            let device = ac.device;
            match self.core.resolve(device) {
                Some((owner, lane)) if self.core.devices[owner].worker.is_some() => Some((
                    owner,
                    lane,
                    device,
                    ac.attrs.big_endian_data || flags & play_flags::BIG_ENDIAN_DATA != 0,
                    ac.attrs.encoding,
                    i32::from(ac.attrs.play_gain_db),
                    ac.attrs.preempt || flags & play_flags::PREEMPT != 0,
                    flags & play_flags::SUPPRESS_REPLY != 0,
                )),
                _ => None,
            }
        };
        if let Some((owner, lane, device, swap_bytes, src_enc, play_gain_db, preempt, suppress)) =
            sharded
        {
            let (out_gain_db, out_enabled) = self.core.output_state(device);
            // Checked sharded above, but never panic the dispatcher on an
            // internal inconsistency: report it and keep serving.
            let Some(w) = self.core.devices[owner].worker.as_ref() else {
                self.send_error_to(
                    id,
                    order,
                    seq,
                    ErrorCode::BadImplementation,
                    ac_id,
                    Opcode::PlaySamples.to_wire(),
                );
                return;
            };
            let sink = {
                let Some(client) = self.core.clients.get_mut(&id) else {
                    return;
                };
                client.awaiting_worker = true;
                client.reply_sink(&self.core.pool)
            };
            let _ = w.tx.send(AudioJob::Play {
                sink,
                client: id,
                ac: ac_id,
                seq,
                device: owner,
                lane,
                start: start_time,
                preempt,
                suppress_reply: suppress,
                swap_bytes,
                src_enc,
                play_gain_db,
                out_gain_db,
                out_enabled,
                data,
            });
            w.stats.observe_depth(w.tx.len() as u64);
            return;
        }
        // Convert through the AC pipeline to device frames.
        let (device, preempt, suppress) = {
            let Some(client) = self.core.clients.get_mut(&id) else {
                return;
            };
            let Some(ac) = client.acs.get_mut(&ac_id) else {
                self.send_error_to(
                    id,
                    order,
                    seq,
                    ErrorCode::BadAc,
                    ac_id,
                    Opcode::PlaySamples.to_wire(),
                );
                return;
            };
            let big = ac.attrs.big_endian_data || flags & play_flags::BIG_ENDIAN_DATA != 0;
            if big {
                crate::gain::swap_sample_bytes(ac.attrs.encoding, &mut data);
            }
            // Identity ACs skip conversion (and its copy) outright; other
            // pipelines convert into the dispatcher's reusable scratch.
            if !ac.play_conv.is_identity() {
                let mut converted = std::mem::take(&mut self.conv_buf);
                match ac.play_conv.convert_into(&data, &mut converted) {
                    Ok(()) => {
                        std::mem::swap(&mut data, &mut converted);
                        self.conv_buf = converted;
                    }
                    Err(_) => {
                        self.conv_buf = converted;
                        self.send_error_to(
                            id,
                            order,
                            seq,
                            ErrorCode::BadLength,
                            data.len() as u32,
                            Opcode::PlaySamples.to_wire(),
                        );
                        return;
                    }
                }
            }
            (
                ac.device,
                ac.attrs.preempt || flags & play_flags::PREEMPT != 0,
                flags & play_flags::SUPPRESS_REPLY != 0,
            )
        };
        // Apply the AC's play gain in the owner's native encoding.
        let (play_gain, dev_enc) = {
            let Some(client) = self.core.clients.get(&id) else {
                return;
            };
            let Some(ac) = client.acs.get(&ac_id) else {
                return;
            };
            let enc = match self.core.resolve(device) {
                Some((owner, _)) => self.core.devices[owner]
                    .buffers
                    .as_ref()
                    .map(|b| b.encoding())
                    .unwrap_or(af_dsp::Encoding::Mu255),
                None => af_dsp::Encoding::Mu255,
            };
            (i32::from(ac.attrs.play_gain_db), enc)
        };
        crate::gain::apply_gain_bytes(dev_enc, &mut data, play_gain);
        let (gain, enabled) = self.core.output_state(device);
        let Some((buffers, lane, channels)) = self.core.buffers_mut(device) else {
            self.send_error_to(
                id,
                order,
                seq,
                ErrorCode::BadDevice,
                u32::from(device),
                Opcode::PlaySamples.to_wire(),
            );
            return;
        };
        let fb = match lane {
            Some(_) => buffers.frame_bytes() / channels.max(1) as usize,
            None => buffers.frame_bytes(),
        };
        if !data.len().is_multiple_of(fb) {
            self.send_error_to(
                id,
                order,
                seq,
                ErrorCode::BadLength,
                data.len() as u32,
                Opcode::PlaySamples.to_wire(),
            );
            return;
        }
        let outcome = match lane {
            Some(ch) => {
                buffers.write_play_channel(start_time, &data, ch, channels, preempt, gain, enabled)
            }
            None => buffers.write_play(start_time, &data, preempt, gain, enabled),
        };
        if outcome.beyond_horizon > 0 {
            // Suspend until time advances (§2.2: "requests that fall beyond
            // the four-second buffer are suspended").  The whole buffer moves
            // into the blocked op with a consumed-bytes cursor — no tail copy
            // here or on any retry.
            let consumed = (outcome.dropped_past + outcome.written) as usize * fb;
            let new_start = start_time + (outcome.dropped_past + outcome.written);
            let wake = self.play_wake_instant(device, outcome.beyond_horizon);
            if let Some(client) = self.core.clients.get_mut(&id) {
                client.blocked = Some(Blocked {
                    seq,
                    op: BlockedOp::Play {
                        device,
                        preempt,
                        start: new_start,
                        frames: data,
                        offset: consumed,
                        suppress_reply: suppress,
                    },
                });
            }
            self.tasks.schedule(wake, TaskKind::WakeBlocked(device));
            return;
        }
        if !suppress {
            let now = self.core.dev_now(device);
            self.send_reply_to(id, order, seq, &Reply::Time { time: now });
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn h_record(
        &mut self,
        id: ClientId,
        order: af_proto::ByteOrder,
        seq: u16,
        ac_id: AcId,
        start_time: ATime,
        nbytes: u32,
        flags: u8,
    ) {
        if nbytes as usize > MAX_REQUEST_BYTES {
            self.send_error_to(
                id,
                order,
                seq,
                ErrorCode::BadValue,
                nbytes,
                Opcode::RecordSamples.to_wire(),
            );
            return;
        }
        let (device, nframes, big_endian, newly_recording, dst_enc, record_gain_db) = {
            let Some(client) = self.core.clients.get_mut(&id) else {
                return;
            };
            let Some(ac) = client.acs.get_mut(&ac_id) else {
                self.send_error_to(
                    id,
                    order,
                    seq,
                    ErrorCode::BadAc,
                    ac_id,
                    Opcode::RecordSamples.to_wire(),
                );
                return;
            };
            let samples = ac.attrs.encoding.samples_in_bytes(nbytes as usize);
            let nframes = (samples / ac.attrs.channels.max(1) as usize) as u32;
            let big = ac.attrs.big_endian_data || flags & record_flags::BIG_ENDIAN_DATA != 0;
            let newly = !ac.recording;
            if newly {
                // "The first record operation performed under a context
                // marks the context as recording."
                ac.recording = true;
            }
            (
                ac.device,
                nframes,
                big,
                newly,
                ac.attrs.encoding,
                i32::from(ac.attrs.record_gain_db),
            )
        };
        // Sharded data plane: the worker owns the record update, blocking,
        // and the read; the dispatcher only validates and captures
        // request-time control state.
        if let Some((owner, lane)) = self.core.resolve(device) {
            if self.core.devices[owner].worker.is_some() {
                let (out_gain_db, out_enabled) = self.core.output_state(device);
                // Checked sharded above, but never panic the dispatcher on
                // an internal inconsistency: report it and keep serving.
                let Some(w) = self.core.devices[owner].worker.as_ref() else {
                    self.send_error_to(
                        id,
                        order,
                        seq,
                        ErrorCode::BadImplementation,
                        ac_id,
                        Opcode::RecordSamples.to_wire(),
                    );
                    return;
                };
                let sink = {
                    let Some(client) = self.core.clients.get_mut(&id) else {
                        return;
                    };
                    client.awaiting_worker = true;
                    client.reply_sink(&self.core.pool)
                };
                let _ = w.tx.send(AudioJob::Record {
                    sink,
                    client: id,
                    ac: ac_id,
                    seq,
                    device: owner,
                    lane,
                    start: start_time,
                    nframes,
                    block: flags & record_flags::BLOCK != 0,
                    big_endian,
                    dst_enc,
                    record_gain_db,
                    add_recorder: newly_recording,
                    out_gain_db,
                    out_enabled,
                });
                w.stats.observe_depth(w.tx.len() as u64);
                return;
            }
        }
        let (gain, enabled) = self.core.output_state(device);
        let Some((buffers, _, _)) = self.core.buffers_mut(device) else {
            self.send_error_to(
                id,
                order,
                seq,
                ErrorCode::BadDevice,
                u32::from(device),
                Opcode::RecordSamples.to_wire(),
            );
            return;
        };
        if newly_recording {
            buffers.add_recorder();
        }
        let end = start_time + nframes;
        // Record update: make the buffer consistent if the request touches
        // the shaded region (§7.2).
        if end.is_after(buffers.recorded_until()) {
            buffers.update(gain, enabled);
        }
        let block = flags & record_flags::BLOCK != 0;
        if end.is_after(buffers.recorded_until()) {
            if block {
                let remaining = (end - buffers.recorded_until()).max(1) as u32;
                let wake = self.play_wake_instant(device, remaining);
                if let Some(client) = self.core.clients.get_mut(&id) {
                    client.blocked = Some(Blocked {
                        seq,
                        op: BlockedOp::Record {
                            ac: ac_id,
                            device,
                            start: start_time,
                            nframes,
                            big_endian,
                        },
                    });
                }
                self.tasks.schedule(wake, TaskKind::WakeBlocked(device));
                return;
            }
            // Non-blocking: return whatever is available now.
            let available = (buffers.recorded_until() - start_time).max(0) as u32;
            let nframes = available.min(nframes);
            self.finish_record(
                id, order, seq, ac_id, device, start_time, nframes, big_endian,
            );
            return;
        }
        self.finish_record(
            id, order, seq, ac_id, device, start_time, nframes, big_endian,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_record(
        &mut self,
        id: ClientId,
        order: af_proto::ByteOrder,
        seq: u16,
        ac_id: AcId,
        device: DeviceId,
        start: ATime,
        nframes: u32,
        big_endian: bool,
    ) {
        let (input_enabled, input_gain) = match self.core.resolve(device) {
            Some((owner, _)) => {
                let d = &self.core.devices[owner];
                (d.input_enabled(), d.input_gain_db)
            }
            None => return,
        };
        let (raw, now) = {
            let Some((buffers, lane, channels)) = self.core.buffers_mut(device) else {
                return;
            };
            let raw = match lane {
                Some(ch) => buffers.read_rec_channel(start, nframes, ch, channels),
                None => buffers.read_rec(start, nframes),
            };
            (raw, buffers.now())
        };
        let Some(client) = self.core.clients.get_mut(&id) else {
            return;
        };
        let Some(ac) = client.acs.get_mut(&ac_id) else {
            return;
        };
        let dev_enc = ac.rec_conv.from_encoding();
        let mut raw = raw;
        if !input_enabled {
            af_dsp::silence::fill_silence(dev_enc, &mut raw);
        } else {
            let total_gain = input_gain + i32::from(ac.attrs.record_gain_db);
            crate::gain::apply_gain_bytes(dev_enc, &mut raw, total_gain);
        }
        // Convert through the dispatcher's reusable scratch, and reclaim it
        // from the reply afterwards so steady recording never allocates here.
        let mut out = std::mem::take(&mut self.conv_buf);
        if ac.rec_conv.convert_into(&raw, &mut out).is_err() {
            out.clear();
        }
        if big_endian {
            crate::gain::swap_sample_bytes(ac.attrs.encoding, &mut out);
        }
        let reply = Reply::Record {
            time: now,
            data: out,
        };
        self.send_reply_to(id, order, seq, &reply);
        if let Reply::Record { data, .. } = reply {
            self.conv_buf = data;
        }
    }

    fn h_query_phone(&mut self, device: DeviceId) -> Result<Option<Reply>, (ErrorCode, u32)> {
        let dev = self
            .core
            .device(device)
            .ok_or((ErrorCode::BadDevice, u32::from(device)))?;
        let phone = dev
            .phone
            .as_ref()
            .ok_or((ErrorCode::BadMatch, u32::from(device)))?;
        let (off_hook, loop_current, ringing) = phone.query();
        Ok(Some(Reply::Phone {
            off_hook,
            loop_current,
            ringing,
        }))
    }

    fn h_hookswitch(
        &mut self,
        device: DeviceId,
        off_hook: bool,
    ) -> Result<Option<Reply>, (ErrorCode, u32)> {
        let dev = self
            .core
            .device(device)
            .ok_or((ErrorCode::BadDevice, u32::from(device)))?;
        let phone = dev
            .phone
            .as_ref()
            .ok_or((ErrorCode::BadMatch, u32::from(device)))?;
        phone.set_hook(off_hook);
        Ok(None)
    }

    fn h_flashhook(&mut self, device: DeviceId) -> Result<Option<Reply>, (ErrorCode, u32)> {
        let dev = self
            .core
            .device(device)
            .ok_or((ErrorCode::BadDevice, u32::from(device)))?;
        let phone = dev
            .phone
            .as_ref()
            .ok_or((ErrorCode::BadMatch, u32::from(device)))?;
        phone.flash_hook();
        Ok(None)
    }

    fn h_passthrough(
        &mut self,
        device: DeviceId,
        enable: bool,
    ) -> Result<Option<Reply>, (ErrorCode, u32)> {
        let ndev = self.core.devices.len();
        let di = device as usize;
        if di >= ndev {
            return Err((ErrorCode::BadDevice, u32::from(device)));
        }
        let peer = self.core.devices[di]
            .passthrough_peer
            .filter(|p| *p < ndev && *p != di)
            .ok_or((ErrorCode::BadMatch, u32::from(device)))?;
        if self.core.devices[di].passthrough == enable {
            return Ok(None);
        }
        // Sharded data plane: passthrough pairs are grouped onto one worker
        // by the builder, so the cursor work happens in-ring.  The
        // dispatcher mirrors the flags so idempotence and peer lookups keep
        // working without consulting the worker.
        if let (Some(wd), Some(wp)) = (
            self.core.devices[di].worker.as_ref(),
            self.core.devices[peer].worker.as_ref(),
        ) {
            if wd.worker_id != wp.worker_id {
                return Err((ErrorCode::BadMatch, u32::from(device)));
            }
            let (ack, done) = crossbeam_channel::bounded(1);
            if wd
                .tx
                .send(AudioJob::SetPassthrough {
                    device: di,
                    peer,
                    enable,
                    ack,
                })
                .is_ok()
            {
                // Wait for the cursor setup so pass-through starts from the
                // device time of *this* request, as the classic path does.
                let _ = done.recv_timeout(Duration::from_secs(10));
            }
            self.core.devices[di].passthrough = enable;
            self.core.devices[peer].passthrough = enable;
            self.core.devices[peer].passthrough_peer = Some(di);
            return Ok(None);
        }
        // Pass-through needs both devices' record streams flowing, and
        // fresh cursors: consume the peer's stream from its current
        // position, write a small lead ahead of our own now.  Mono views
        // cannot be endpoints (they have no buffers of their own).
        for (a, b) in [(di, peer), (peer, di)] {
            if self.core.devices[a].buffers.is_none() || self.core.devices[b].buffers.is_none() {
                return Err((ErrorCode::BadMatch, u32::from(device)));
            }
        }
        for (a, b) in [(di, peer), (peer, di)] {
            // Both endpoints were verified to own buffers just above; if
            // that ever stops holding, fail the request, not the server.
            let Some(peer_rec) = self.core.devices[b]
                .buffers
                .as_ref()
                .map(|bufs| bufs.recorded_until())
            else {
                return Err((ErrorCode::BadMatch, u32::from(device)));
            };
            let dev = &mut self.core.devices[a];
            dev.passthrough = enable;
            let Some(bufs) = dev.buffers.as_mut() else {
                return Err((ErrorCode::BadMatch, u32::from(device)));
            };
            if enable {
                bufs.add_recorder();
                let lead = 800u32.min(bufs.frames() / 4);
                dev.pt_out = bufs.now() + lead;
                dev.pt_in = peer_rec;
            } else {
                bufs.remove_recorder();
            }
        }
        // Mirror the pairing so both directions flow in run_passthrough.
        self.core.devices[peer].passthrough_peer = Some(di);
        Ok(None)
    }

    fn h_set_gain(
        &mut self,
        device: DeviceId,
        db: i32,
        input: bool,
    ) -> Result<Option<Reply>, (ErrorCode, u32)> {
        // Gains live on the buffer owner: a mono view's volume is the
        // stereo device's volume (LoFi had no per-channel HiFi gain).
        let (owner, _) = self
            .core
            .resolve(device)
            .ok_or((ErrorCode::BadDevice, u32::from(device)))?;
        let dev = &mut self.core.devices[owner];
        let (min, max) = dev.gain_range;
        if db < min || db > max {
            return Err((ErrorCode::BadValue, db as u32));
        }
        if input {
            dev.input_gain_db = db;
        } else {
            dev.output_gain_db = db;
        }
        // Mirror into the worker's control block synchronously, before any
        // later job is enqueued, so the data plane observes control changes
        // in dispatch order.
        if let Some(w) = &dev.worker {
            let cell = if input {
                &w.control.input_gain_db
            } else {
                &w.control.output_gain_db
            };
            cell.store(db, std::sync::atomic::Ordering::Release);
        }
        Ok(None)
    }

    fn h_query_gain(
        &mut self,
        device: DeviceId,
        input: bool,
    ) -> Result<Option<Reply>, (ErrorCode, u32)> {
        let (owner, _) = self
            .core
            .resolve(device)
            .ok_or((ErrorCode::BadDevice, u32::from(device)))?;
        let dev = &mut self.core.devices[owner];
        Ok(Some(Reply::Gain {
            min_db: dev.gain_range.0,
            max_db: dev.gain_range.1,
            current_db: if input {
                dev.input_gain_db
            } else {
                dev.output_gain_db
            },
        }))
    }

    fn h_io_control(
        &mut self,
        device: DeviceId,
        mask: u32,
        input: bool,
        enable: bool,
    ) -> Result<Option<Reply>, (ErrorCode, u32)> {
        let (owner, _) = self
            .core
            .resolve(device)
            .ok_or((ErrorCode::BadDevice, u32::from(device)))?;
        let dev = &mut self.core.devices[owner];
        let count = if input {
            dev.desc.number_of_inputs
        } else {
            dev.desc.number_of_outputs
        };
        let valid = if count >= 32 {
            u32::MAX
        } else {
            (1u32 << count) - 1
        };
        if mask & !valid != 0 {
            return Err((ErrorCode::BadValue, mask));
        }
        let target = if input {
            &mut dev.inputs_enabled
        } else {
            &mut dev.outputs_enabled
        };
        if enable {
            *target |= mask;
        } else {
            *target &= !mask;
        }
        let updated = *target;
        if let Some(w) = &dev.worker {
            let cell = if input {
                &w.control.inputs_enabled
            } else {
                &w.control.outputs_enabled
            };
            cell.store(updated, std::sync::atomic::Ordering::Release);
        }
        Ok(None)
    }

    fn h_change_property(
        &mut self,
        device: DeviceId,
        mode: PropertyMode,
        property: Atom,
        type_: Atom,
        data: Vec<u8>,
    ) -> Result<Option<Reply>, (ErrorCode, u32)> {
        if self.core.atoms.name(property).is_none() {
            return Err((ErrorCode::BadAtom, property.0));
        }
        let dev = self
            .core
            .device(device)
            .ok_or((ErrorCode::BadDevice, u32::from(device)))?;
        let entry = dev.properties.get_mut(&property);
        match (mode, entry) {
            (PropertyMode::Replace, _) => {
                dev.properties
                    .insert(property, PropertyValue { type_, data });
            }
            (PropertyMode::Prepend, Some(existing)) => {
                if existing.type_ != type_ {
                    return Err((ErrorCode::BadMatch, type_.0));
                }
                let mut combined = data;
                combined.extend_from_slice(&existing.data);
                existing.data = combined;
            }
            (PropertyMode::Append, Some(existing)) => {
                if existing.type_ != type_ {
                    return Err((ErrorCode::BadMatch, type_.0));
                }
                existing.data.extend_from_slice(&data);
            }
            (_, None) => {
                dev.properties
                    .insert(property, PropertyValue { type_, data });
            }
        }
        let now = self.core.dev_now(device);
        let event = Event {
            device,
            device_time: now,
            host_time_ms: host_time_ms(),
            detail: EventDetail::Property {
                atom: property,
                exists: true,
            },
        };
        self.broadcast_event(device, &event);
        Ok(None)
    }

    fn h_delete_property(
        &mut self,
        device: DeviceId,
        property: Atom,
    ) -> Result<Option<Reply>, (ErrorCode, u32)> {
        let dev = self
            .core
            .device(device)
            .ok_or((ErrorCode::BadDevice, u32::from(device)))?;
        if dev.properties.remove(&property).is_some() {
            let now = self.core.dev_now(device);
            let event = Event {
                device,
                device_time: now,
                host_time_ms: host_time_ms(),
                detail: EventDetail::Property {
                    atom: property,
                    exists: false,
                },
            };
            self.broadcast_event(device, &event);
        }
        Ok(None)
    }

    fn h_get_property(
        &mut self,
        device: DeviceId,
        delete: bool,
        property: Atom,
        type_filter: Atom,
    ) -> Result<Option<Reply>, (ErrorCode, u32)> {
        let dev = self
            .core
            .device(device)
            .ok_or((ErrorCode::BadDevice, u32::from(device)))?;
        let Some(value) = dev.properties.get(&property) else {
            return Ok(Some(Reply::Property {
                type_: Atom::NONE,
                data: Vec::new(),
            }));
        };
        if !type_filter.is_none() && type_filter != value.type_ {
            // Type mismatch: report the actual type with no data, as X does.
            return Ok(Some(Reply::Property {
                type_: value.type_,
                data: Vec::new(),
            }));
        }
        let reply = Reply::Property {
            type_: value.type_,
            data: value.data.clone(),
        };
        if delete {
            dev.properties.remove(&property);
            let now = self.core.dev_now(device);
            let event = Event {
                device,
                device_time: now,
                host_time_ms: host_time_ms(),
                detail: EventDetail::Property {
                    atom: property,
                    exists: false,
                },
            };
            self.broadcast_event(device, &event);
        }
        Ok(Some(reply))
    }

    // ---- Outbound helpers. ----

    fn send_reply_to(&self, id: ClientId, order: af_proto::ByteOrder, seq: u16, reply: &Reply) {
        if let Some(c) = self.core.clients.get(&id) {
            // Header and payload are encoded into one pooled buffer: one
            // allocation-free encode, one `write` on the transport, and the
            // writer thread's drop recycles the storage.
            let mut buf = self.core.pool.take_empty();
            reply.encode_into(order, seq, buf.vec_mut());
            c.send(buf);
        }
    }

    fn send_error_to(
        &self,
        id: ClientId,
        order: af_proto::ByteOrder,
        seq: u16,
        code: ErrorCode,
        bad_value: u32,
        opcode: u8,
    ) {
        if let Some(c) = self.core.clients.get(&id) {
            c.send(message::encode_error(
                order,
                &WireError {
                    code,
                    sequence: seq,
                    bad_value,
                    opcode,
                },
            ));
        }
    }
}
