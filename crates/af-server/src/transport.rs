//! The OS layer: sockets in, framed requests out.
//!
//! The paper's server multiplexed client sockets with `select()`.  Two
//! transports reproduce that contract: the **reactor** (default; see
//! [`crate::reactor`]) registers nonblocking sockets with a small set of
//! readiness-driven shards, and the **classic** transport here gives each
//! accepted connection a reader thread (which performs the framing:
//! 4-byte header, length-derived payload) and a writer thread (which
//! drains a **bounded** outbound queue).  Either way the transport feeds
//! the dispatcher's single event channel, preserving single-threaded
//! semantics over all server state; [`OutboundTx`] abstracts the reply
//! route so the dispatcher and audio workers are transport-agnostic.
//!
//! Failure model: a malformed or oversized frame header is a protocol
//! error that disconnects only the offending client; a client that stops
//! reading fills its bounded queue and is evicted instead of growing
//! server memory; a [`StreamFaultPlan`] on the transport injects faults
//! into every accepted connection for chaos testing.
//!
//! TCP and Unix-domain sockets are supported, matching §5.1.

use crate::pool::{BufferPool, PooledBuf};
use crate::state::{ClientId, ConnKick, RawRequest, ServerEvent};
use af_chaos::{ChaosStream, StreamFaultPlan};
use af_proto::{message, ByteOrder, ConnSetup, ErrorCode, Reply, WireError, MAX_REQUEST_BYTES};
use crossbeam_channel::Sender;
use std::io::{Read, Write};
use std::net::{IpAddr, Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Bound on each connection's outbound (server → client) queue, in
/// messages.  A slow client hits this bound and is evicted; the seed's
/// unbounded queue grew without limit instead.
pub const OUTBOUND_QUEUE_CAPACITY: usize = 256;

/// The outbound route to one connection: its bounded queue plus, for
/// reactor-owned connections, the wakeup handle that tells the owning
/// shard new data is queued.
///
/// The classic transport needs no notifier — its writer thread blocks on
/// the queue — so [`OutboundTx::classic`] carries `None`.  Producers
/// (dispatcher and audio workers) queue first, then wake; the ordering is
/// what makes the reactor's clear-before-drain protocol lossless.
#[derive(Clone)]
pub struct OutboundTx {
    tx: Sender<PooledBuf>,
    notify: Option<crate::reactor::ConnNotify>,
}

impl OutboundTx {
    /// A route to a classic writer thread (blocking queue consumer).
    pub fn classic(tx: Sender<PooledBuf>) -> OutboundTx {
        OutboundTx { tx, notify: None }
    }

    /// A route to a reactor shard, woken through `notify` after pushes.
    pub(crate) fn reactor(tx: Sender<PooledBuf>, notify: crate::reactor::ConnNotify) -> OutboundTx {
        OutboundTx {
            tx,
            notify: Some(notify),
        }
    }

    /// Queues a message without blocking; the caller maps `Full` onto the
    /// slow-client overflow policy.
    pub fn try_send(
        &self,
        buf: PooledBuf,
    ) -> Result<(), crossbeam_channel::TrySendError<PooledBuf>> {
        self.tx.try_send(buf)?;
        if let Some(notify) = &self.notify {
            notify.wake();
        }
        Ok(())
    }

    /// Queues a message, blocking if the queue is full.  Only for paths
    /// where the queue is provably near-empty (connection setup replies);
    /// steady-state producers must use [`Self::try_send`] so a slow
    /// client back-pressures into eviction rather than into the caller.
    pub fn send_blocking(&self, buf: PooledBuf) {
        if self.tx.send(buf).is_ok() {
            if let Some(notify) = &self.notify {
                notify.wake();
            }
        }
    }
}

/// A detached route to one client's outbound queue, handed to audio
/// workers so data-plane replies bypass the dispatcher entirely.
///
/// Mirrors the dispatcher's outbound path exactly: replies encode into a
/// pooled buffer, the bounded queue is tried without blocking, and a full
/// queue flags the shared overflow bit so the dispatcher evicts the
/// client on its next pass — the same slow-client policy either way.
#[derive(Clone)]
pub struct ReplySink {
    tx: OutboundTx,
    order: ByteOrder,
    overflowed: Arc<AtomicBool>,
    pool: Arc<BufferPool>,
}

impl ReplySink {
    /// Builds a sink over a client's outbound route and overflow flag.
    pub fn new(
        tx: OutboundTx,
        order: ByteOrder,
        overflowed: Arc<AtomicBool>,
        pool: Arc<BufferPool>,
    ) -> ReplySink {
        ReplySink {
            tx,
            order,
            overflowed,
            pool,
        }
    }

    /// Encodes and queues a reply.
    pub fn send_reply(&self, seq: u16, reply: &Reply) {
        let mut buf = self.pool.take_empty();
        reply.encode_into(self.order, seq, buf.vec_mut());
        self.push(buf);
    }

    /// Encodes and queues a protocol error.
    pub fn send_error(&self, seq: u16, code: ErrorCode, bad_value: u32, opcode: u8) {
        self.push(
            message::encode_error(
                self.order,
                &WireError {
                    code,
                    sequence: seq,
                    bad_value,
                    opcode,
                },
            )
            .into(),
        );
    }

    fn push(&self, buf: PooledBuf) {
        match self.tx.try_send(buf) {
            Ok(()) => {}
            Err(crossbeam_channel::TrySendError::Full(_)) => {
                self.overflowed.store(true, Ordering::Release);
            }
            Err(crossbeam_channel::TrySendError::Disconnected(_)) => {}
        }
    }
}

/// Where a server listens.
#[derive(Clone, Debug)]
pub enum ListenAddr {
    /// A TCP socket address.
    Tcp(SocketAddr),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

/// Why the framing layer rejected an inbound frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The length field was zero — below the minimum one-word frame.
    ZeroLength,
    /// The frame claimed more payload than [`MAX_REQUEST_BYTES`].
    Oversized {
        /// The claimed payload size in bytes.
        bytes: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::ZeroLength => write!(f, "zero-length frame header"),
            FrameError::Oversized { bytes } => {
                write!(f, "oversized frame: {bytes} bytes > {MAX_REQUEST_BYTES}")
            }
        }
    }
}

/// Decodes a 4-byte request frame header into `(opcode, payload_len)`.
///
/// The header is `[len_lo, len_hi, opcode, pad]` with the length counted
/// in 4-byte words including the header itself.  Garbage prefixes decode
/// to out-of-range lengths and are rejected rather than trusted — an
/// attacker-controlled or corrupted length must never size an allocation.
pub fn decode_frame_header(order: ByteOrder, header: [u8; 4]) -> Result<(u8, usize), FrameError> {
    let words = match order {
        ByteOrder::Little => u16::from_le_bytes([header[0], header[1]]),
        ByteOrder::Big => u16::from_be_bytes([header[0], header[1]]),
    } as usize;
    if words == 0 {
        return Err(FrameError::ZeroLength);
    }
    let payload_len = words * 4 - 4;
    if payload_len > MAX_REQUEST_BYTES {
        return Err(FrameError::Oversized { bytes: payload_len });
    }
    Ok((header[2], payload_len))
}

/// Shared transport bookkeeping.
pub struct TransportShared {
    /// Dispatcher event channel.
    pub events: Sender<ServerEvent>,
    /// Client id allocator.
    pub next_id: AtomicU64,
    /// Set to stop accept loops.
    pub stop: AtomicBool,
    /// Faults injected into every accepted connection (chaos testing).
    pub chaos: Option<StreamFaultPlan>,
    /// Frame/reply buffer pool shared by reader threads and the dispatcher.
    pub pool: Arc<BufferPool>,
}

impl TransportShared {
    /// Creates shared state feeding `events`.
    pub fn new(events: Sender<ServerEvent>) -> Arc<TransportShared> {
        Self::with_chaos(events, None)
    }

    /// Creates shared state with an optional per-connection fault plan.
    pub fn with_chaos(
        events: Sender<ServerEvent>,
        chaos: Option<StreamFaultPlan>,
    ) -> Arc<TransportShared> {
        Self::with_pool(events, chaos, BufferPool::shared())
    }

    /// Creates shared state over an explicitly sized buffer pool — the
    /// hook for reactor-mode servers, whose partial-frame accumulation
    /// wants a deeper free list than the classic default.
    pub fn with_pool(
        events: Sender<ServerEvent>,
        chaos: Option<StreamFaultPlan>,
        pool: Arc<BufferPool>,
    ) -> Arc<TransportShared> {
        Arc::new(TransportShared {
            events,
            next_id: AtomicU64::new(1),
            stop: AtomicBool::new(false),
            chaos,
            pool,
        })
    }
}

/// Starts reader/writer threads for `stream`, wrapping it in the shared
/// fault plan (reseeded per connection) when one is configured.
fn spawn_wrapped<S: Conn>(shared: Arc<TransportShared>, stream: S, peer: Option<IpAddr>) {
    match &shared.chaos {
        Some(plan) => {
            // Each connection gets its own fault schedule, derived
            // deterministically from the plan seed and the connection id.
            let salt = shared.next_id.load(Ordering::Relaxed);
            let mut plan = plan.clone();
            plan.seed = af_chaos::ChaosRng::new(plan.seed).fork(salt).next_u64();
            let wrapped = ChaosStream::new(stream, plan);
            spawn_connection(Arc::clone(&shared), wrapped, peer);
        }
        None => spawn_connection(shared, stream, peer),
    }
}

/// Starts a TCP listener; returns the bound address.
pub fn spawn_tcp(shared: Arc<TransportShared>, addr: SocketAddr) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    std::thread::Builder::new()
        .name("af-accept-tcp".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if shared.stop.load(Ordering::Relaxed) {
                    break;
                }
                match stream {
                    Ok(s) => {
                        let _ = s.set_nodelay(true);
                        let peer = s.peer_addr().ok().map(|a| a.ip());
                        spawn_wrapped(Arc::clone(&shared), s, peer);
                    }
                    Err(_) => break,
                }
            }
        })?;
    Ok(bound)
}

/// Starts a Unix-domain listener at `path` (removing any stale socket).
pub fn spawn_unix(shared: Arc<TransportShared>, path: &Path) -> std::io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    std::thread::Builder::new()
        .name("af-accept-unix".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if shared.stop.load(Ordering::Relaxed) {
                    break;
                }
                match stream {
                    Ok(s) => spawn_wrapped(Arc::clone(&shared), s, None),
                    Err(_) => break,
                }
            }
        })?;
    Ok(())
}

/// A bidirectional byte stream usable as an AudioFile connection.
///
/// `Sync` is required so a shared handle can live inside the dispatcher's
/// [`ConnKick`] closure.
pub trait Conn: Read + Write + Send + Sync + Sized + 'static {
    /// Clones the stream for the writer thread.
    fn split(&self) -> std::io::Result<Self>;

    /// Forcibly shuts down both directions, unblocking any reader.
    ///
    /// The dispatcher holds this (via a [`ConnKick`] closure) so it can
    /// evict a client whose socket would otherwise keep a reader thread
    /// parked in `read_exact` forever.
    fn shutdown(&self);
}

impl Conn for TcpStream {
    fn split(&self) -> std::io::Result<TcpStream> {
        self.try_clone()
    }

    fn shutdown(&self) {
        let _ = TcpStream::shutdown(self, Shutdown::Both);
    }
}

impl Conn for UnixStream {
    fn split(&self) -> std::io::Result<UnixStream> {
        self.try_clone()
    }

    fn shutdown(&self) {
        let _ = UnixStream::shutdown(self, Shutdown::Both);
    }
}

impl<S: Conn> Conn for ChaosStream<S> {
    fn split(&self) -> std::io::Result<Self> {
        Ok(self.fork(self.get_ref().split()?))
    }

    fn shutdown(&self) {
        self.get_ref().shutdown();
    }
}

/// Sets up reader and writer threads for one accepted connection.
pub fn spawn_connection<S: Conn>(shared: Arc<TransportShared>, stream: S, peer: Option<IpAddr>) {
    let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
    let (tx, rx) = crossbeam_channel::bounded::<PooledBuf>(OUTBOUND_QUEUE_CAPACITY);
    let mut write_half = match stream.split() {
        Ok(s) => s,
        Err(_) => return,
    };
    let kick_half = match stream.split() {
        Ok(s) => s,
        Err(_) => return,
    };
    let kick: ConnKick = Arc::new(move || kick_half.shutdown());

    // Writer: drain outbound queue until the channel closes.
    let _ = std::thread::Builder::new()
        .name(format!("af-writer-{id}"))
        .spawn(move || {
            // Each message arrives as one contiguous pooled buffer (header +
            // payload), so it costs a single write; dropping the buffer
            // afterwards recycles it through the pool.
            while let Ok(bytes) = rx.recv() {
                if write_half.write_all(&bytes).is_err() {
                    break;
                }
            }
            let _ = write_half.flush();
        });

    // Reader: setup message, then framed requests until EOF.
    let _ = std::thread::Builder::new()
        .name(format!("af-reader-{id}"))
        .spawn(move || {
            let mut stream = stream;
            let tx = OutboundTx::classic(tx);
            if let Some(order) = read_setup(&mut stream, &shared, id, peer, tx, kick) {
                read_requests(&mut stream, &shared, id, order);
            }
            let _ = shared.events.send(ServerEvent::Disconnect { id });
        });
}

fn read_setup<S: Read>(
    stream: &mut S,
    shared: &TransportShared,
    id: ClientId,
    peer: Option<IpAddr>,
    tx: OutboundTx,
    kick: ConnKick,
) -> Option<ByteOrder> {
    let mut header = [0u8; ConnSetup::HEADER_SIZE];
    stream.read_exact(&mut header).ok()?;
    let tail_len = ConnSetup::tail_len(&header).ok()?;
    let mut setup = header.to_vec();
    setup.resize(ConnSetup::HEADER_SIZE + tail_len, 0);
    stream
        .read_exact(&mut setup[ConnSetup::HEADER_SIZE..])
        .ok()?;
    let order = ByteOrder::from_marker(setup[0]).ok()?;
    shared
        .events
        .send(ServerEvent::NewClient {
            id,
            setup,
            peer,
            tx,
            kick,
        })
        .ok()?;
    Some(order)
}

fn read_requests<S: Read>(
    stream: &mut S,
    shared: &TransportShared,
    id: ClientId,
    order: ByteOrder,
) {
    loop {
        let mut header = [0u8; 4];
        if stream.read_exact(&mut header).is_err() {
            return;
        }
        let (opcode, payload_len) = match decode_frame_header(order, header) {
            Ok(decoded) => decoded,
            Err(error) => {
                // Protocol violation: report it so the dispatcher can
                // account for it, then drop only this connection.
                let _ = shared.events.send(ServerEvent::ProtocolError { id, error });
                return;
            }
        };
        // Pooled: steady-state traffic recycles the same frame buffers
        // instead of allocating one per request.
        let mut payload = shared.pool.take_filled(payload_len);
        if stream.read_exact(&mut payload).is_err() {
            return;
        }
        let raw = RawRequest { opcode, payload };
        if shared
            .events
            .send(ServerEvent::Request { id, raw })
            .is_err()
        {
            return;
        }
    }
}

/// Unblocks a pending `accept` on `addr` so its loop observes `stop`.
pub fn poke_tcp(addr: SocketAddr) {
    let _ = TcpStream::connect(addr);
}

/// Unblocks a pending Unix-domain `accept`.
pub fn poke_unix(path: &Path) {
    let _ = UnixStream::connect(path);
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_time::ATime;

    #[test]
    fn framing_round_trip_over_tcp() {
        let (tx, rx) = crossbeam_channel::unbounded();
        let shared = TransportShared::new(tx);
        let addr = spawn_tcp(Arc::clone(&shared), "127.0.0.1:0".parse().unwrap()).unwrap();

        // Handshake + one request from a raw socket.
        let mut sock = TcpStream::connect(addr).unwrap();
        let setup = ConnSetup::new();
        sock.write_all(&setup.encode()).unwrap();
        let req = af_proto::Request::PlaySamples {
            ac: 3,
            start_time: ATime::new(99),
            flags: 0,
            data: vec![1, 2, 3, 4, 5, 6, 7],
        };
        sock.write_all(&req.encode(ByteOrder::native())).unwrap();

        // The dispatcher side sees NewClient then the framed request.
        match rx.recv_timeout(std::time::Duration::from_secs(2)).unwrap() {
            ServerEvent::NewClient { setup: s, peer, .. } => {
                assert_eq!(ConnSetup::decode(&s).unwrap(), setup);
                assert!(peer.unwrap().is_loopback());
            }
            _ => panic!("expected NewClient"),
        }
        match rx.recv_timeout(std::time::Duration::from_secs(2)).unwrap() {
            ServerEvent::Request { raw, .. } => {
                assert_eq!(raw.opcode, af_proto::Opcode::PlaySamples.to_wire());
                let decoded = af_proto::Request::decode(
                    ByteOrder::native(),
                    af_proto::Opcode::PlaySamples,
                    &raw.payload,
                )
                .unwrap();
                assert_eq!(decoded, req);
            }
            _ => panic!("expected Request"),
        }

        // Dropping the socket produces a Disconnect.
        drop(sock);
        match rx.recv_timeout(std::time::Duration::from_secs(2)).unwrap() {
            ServerEvent::Disconnect { .. } => {}
            _ => panic!("expected Disconnect"),
        }
        shared.stop.store(true, Ordering::Relaxed);
        poke_tcp(addr);
    }

    #[test]
    fn zero_length_frame_drops_connection() {
        let (tx, rx) = crossbeam_channel::unbounded();
        let shared = TransportShared::new(tx);
        let addr = spawn_tcp(Arc::clone(&shared), "127.0.0.1:0".parse().unwrap()).unwrap();

        let mut sock = TcpStream::connect(addr).unwrap();
        sock.write_all(&ConnSetup::new().encode()).unwrap();
        let _ = rx.recv_timeout(std::time::Duration::from_secs(2)).unwrap();
        // A zero length header is invalid: the transport reports the
        // protocol error, then drops the connection.
        sock.write_all(&[0, 0, 33, 0]).unwrap();
        match rx.recv_timeout(std::time::Duration::from_secs(2)).unwrap() {
            ServerEvent::ProtocolError { error, .. } => {
                assert_eq!(error, FrameError::ZeroLength);
            }
            _ => panic!("expected ProtocolError for bad framing"),
        }
        match rx.recv_timeout(std::time::Duration::from_secs(2)).unwrap() {
            ServerEvent::Disconnect { .. } => {}
            _ => panic!("expected Disconnect for bad framing"),
        }
        shared.stop.store(true, Ordering::Relaxed);
        poke_tcp(addr);
    }

    #[test]
    fn truncated_max_length_frame_disconnects_without_desync() {
        let (tx, rx) = crossbeam_channel::unbounded();
        let shared = TransportShared::new(tx);
        let addr = spawn_tcp(Arc::clone(&shared), "127.0.0.1:0".parse().unwrap()).unwrap();

        let mut sock = TcpStream::connect(addr).unwrap();
        sock.write_all(&ConnSetup::new().encode()).unwrap();
        let _ = rx.recv_timeout(std::time::Duration::from_secs(2)).unwrap();
        // Claim the maximum expressible frame length (0xffff words, which
        // reads the same in either byte order), then hang up without
        // sending the payload.  The reader must not emit a partial request.
        sock.write_all(&[0xff, 0xff, 33, 0]).unwrap();
        drop(sock);
        match rx.recv_timeout(std::time::Duration::from_secs(2)).unwrap() {
            ServerEvent::Disconnect { .. } => {}
            _ => panic!("expected Disconnect for truncated frame"),
        }
        shared.stop.store(true, Ordering::Relaxed);
        poke_tcp(addr);
    }

    #[test]
    fn decode_frame_header_bounds_every_possible_prefix() {
        // Zero length in both byte orders.
        assert_eq!(
            decode_frame_header(ByteOrder::Little, [0, 0, 7, 0]),
            Err(FrameError::ZeroLength)
        );
        assert_eq!(
            decode_frame_header(ByteOrder::Big, [0, 0, 7, 0]),
            Err(FrameError::ZeroLength)
        );
        // Minimum valid frame: one word, no payload — opcode preserved.
        assert_eq!(
            decode_frame_header(ByteOrder::Little, [1, 0, 42, 0]),
            Ok((42, 0))
        );
        assert_eq!(
            decode_frame_header(ByteOrder::Big, [0, 1, 42, 0]),
            Ok((42, 0))
        );
        // The allocation-safety property: over the ENTIRE header space, a
        // garbage prefix either errors or yields a payload length at most
        // MAX_REQUEST_BYTES — the length field never sizes an unbounded
        // allocation.  (The u16 length field tops out at 262,136 bytes,
        // just under the limit, so today Oversized guards against the
        // limit shrinking or the field widening.)
        for hi in 0..=255u8 {
            for lo in [0u8, 1, 2, 0x7f, 0x80, 0xfe, 0xff] {
                for order in [ByteOrder::Little, ByteOrder::Big] {
                    match decode_frame_header(order, [lo, hi, 0xAB, 0xCD]) {
                        Ok((op, len)) => {
                            assert_eq!(op, 0xAB);
                            assert!(len <= MAX_REQUEST_BYTES);
                        }
                        Err(FrameError::ZeroLength) => {}
                        Err(FrameError::Oversized { bytes }) => {
                            assert!(bytes > MAX_REQUEST_BYTES);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn reader_steady_state_recycles_frame_buffers() {
        // The acceptance property for the buffer pool: on the steady-state
        // request path, the reader does NOT allocate a Vec per frame.  A
        // bounded(1) event channel forces lock-step with the consumer, so at
        // most a few buffers are ever in flight; after 100 frames the pool
        // must have satisfied nearly all takes from its free list.
        let (tx, rx) = crossbeam_channel::bounded(1);
        let shared = TransportShared::new(tx);
        let pool = Arc::clone(&shared.pool);

        let mut wire = Vec::new();
        for _ in 0..100 {
            wire.extend_from_slice(&[2, 0, 33, 0]); // 2 words: header + 4 bytes.
            wire.extend_from_slice(&[1, 2, 3, 4]);
        }
        let reader = std::thread::spawn(move || {
            let mut cur = std::io::Cursor::new(wire);
            read_requests(&mut cur, &shared, 1, ByteOrder::Little);
        });

        let mut seen = 0;
        while seen < 100 {
            match rx.recv_timeout(std::time::Duration::from_secs(2)).unwrap() {
                ServerEvent::Request { raw, .. } => {
                    assert_eq!(&*raw.payload, &[1, 2, 3, 4]);
                    seen += 1;
                    // Dropping `raw` returns its buffer to the pool, exactly
                    // as the dispatcher does after handling a request.
                }
                _ => panic!("expected Request"),
            }
        }
        reader.join().unwrap();
        assert!(
            pool.allocs() <= 4,
            "steady-state reader allocated per frame: {} allocs",
            pool.allocs()
        );
        assert!(pool.reuses() >= 96, "only {} reuses", pool.reuses());
    }

    #[test]
    fn unix_socket_round_trip() {
        let (tx, rx) = crossbeam_channel::unbounded();
        let shared = TransportShared::new(tx);
        let dir = std::env::temp_dir().join(format!("af-test-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("af-unix-test.sock");
        spawn_unix(Arc::clone(&shared), &path).unwrap();

        let mut sock = UnixStream::connect(&path).unwrap();
        sock.write_all(&ConnSetup::new().encode()).unwrap();
        match rx.recv_timeout(std::time::Duration::from_secs(2)).unwrap() {
            ServerEvent::NewClient { peer, .. } => assert!(peer.is_none()),
            _ => panic!("expected NewClient"),
        }
        shared.stop.store(true, Ordering::Relaxed);
        poke_unix(&path);
        let _ = std::fs::remove_file(&path);
    }
}
