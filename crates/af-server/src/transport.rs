//! The OS layer: sockets in, framed requests out.
//!
//! The paper's server multiplexed client sockets with `select()`.  Here
//! each accepted connection gets a reader thread (which performs the
//! framing: 4-byte header, length-derived payload) and a writer thread
//! (which drains an outbound queue); both feed or are fed by the
//! dispatcher's single event channel, preserving single-threaded semantics
//! over all server state.
//!
//! TCP and Unix-domain sockets are supported, matching §5.1.

use crate::state::{ClientId, RawRequest, ServerEvent};
use af_proto::{ByteOrder, ConnSetup, MAX_REQUEST_BYTES};
use crossbeam_channel::Sender;
use std::io::{Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Where a server listens.
#[derive(Clone, Debug)]
pub enum ListenAddr {
    /// A TCP socket address.
    Tcp(SocketAddr),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

/// Shared transport bookkeeping.
pub struct TransportShared {
    /// Dispatcher event channel.
    pub events: Sender<ServerEvent>,
    /// Client id allocator.
    pub next_id: AtomicU64,
    /// Set to stop accept loops.
    pub stop: AtomicBool,
}

impl TransportShared {
    /// Creates shared state feeding `events`.
    pub fn new(events: Sender<ServerEvent>) -> Arc<TransportShared> {
        Arc::new(TransportShared {
            events,
            next_id: AtomicU64::new(1),
            stop: AtomicBool::new(false),
        })
    }
}

/// Starts a TCP listener; returns the bound address.
pub fn spawn_tcp(shared: Arc<TransportShared>, addr: SocketAddr) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    std::thread::Builder::new()
        .name("af-accept-tcp".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if shared.stop.load(Ordering::Relaxed) {
                    break;
                }
                match stream {
                    Ok(s) => {
                        let _ = s.set_nodelay(true);
                        let peer = s.peer_addr().ok().map(|a| a.ip());
                        spawn_connection(Arc::clone(&shared), s, peer);
                    }
                    Err(_) => break,
                }
            }
        })?;
    Ok(bound)
}

/// Starts a Unix-domain listener at `path` (removing any stale socket).
pub fn spawn_unix(shared: Arc<TransportShared>, path: &Path) -> std::io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    std::thread::Builder::new()
        .name("af-accept-unix".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if shared.stop.load(Ordering::Relaxed) {
                    break;
                }
                match stream {
                    Ok(s) => spawn_connection(Arc::clone(&shared), s, None),
                    Err(_) => break,
                }
            }
        })?;
    Ok(())
}

/// A bidirectional byte stream usable as an AudioFile connection.
pub trait Conn: Read + Write + Send + Sized + 'static {
    /// Clones the stream for the writer thread.
    fn split(&self) -> std::io::Result<Self>;
}

impl Conn for TcpStream {
    fn split(&self) -> std::io::Result<TcpStream> {
        self.try_clone()
    }
}

impl Conn for UnixStream {
    fn split(&self) -> std::io::Result<UnixStream> {
        self.try_clone()
    }
}

/// Sets up reader and writer threads for one accepted connection.
pub fn spawn_connection<S: Conn>(shared: Arc<TransportShared>, stream: S, peer: Option<IpAddr>) {
    let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
    let (tx, rx) = crossbeam_channel::unbounded::<Vec<u8>>();
    let mut write_half = match stream.split() {
        Ok(s) => s,
        Err(_) => return,
    };

    // Writer: drain outbound queue until the channel closes.
    let _ = std::thread::Builder::new()
        .name(format!("af-writer-{id}"))
        .spawn(move || {
            while let Ok(bytes) = rx.recv() {
                if write_half.write_all(&bytes).is_err() {
                    break;
                }
            }
            let _ = write_half.flush();
        });

    // Reader: setup message, then framed requests until EOF.
    let _ = std::thread::Builder::new()
        .name(format!("af-reader-{id}"))
        .spawn(move || {
            let mut stream = stream;
            if let Some(order) = read_setup(&mut stream, &shared, id, peer, tx) {
                read_requests(&mut stream, &shared, id, order);
            }
            let _ = shared.events.send(ServerEvent::Disconnect { id });
        });
}

fn read_setup<S: Read>(
    stream: &mut S,
    shared: &TransportShared,
    id: ClientId,
    peer: Option<IpAddr>,
    tx: Sender<Vec<u8>>,
) -> Option<ByteOrder> {
    let mut header = [0u8; ConnSetup::HEADER_SIZE];
    stream.read_exact(&mut header).ok()?;
    let tail_len = ConnSetup::tail_len(&header).ok()?;
    let mut setup = header.to_vec();
    setup.resize(ConnSetup::HEADER_SIZE + tail_len, 0);
    stream
        .read_exact(&mut setup[ConnSetup::HEADER_SIZE..])
        .ok()?;
    let order = ByteOrder::from_marker(setup[0]).ok()?;
    shared
        .events
        .send(ServerEvent::NewClient {
            id,
            setup,
            peer,
            tx,
        })
        .ok()?;
    Some(order)
}

fn read_requests<S: Read>(
    stream: &mut S,
    shared: &TransportShared,
    id: ClientId,
    order: ByteOrder,
) {
    loop {
        let mut header = [0u8; 4];
        if stream.read_exact(&mut header).is_err() {
            return;
        }
        let words = match order {
            ByteOrder::Little => u16::from_le_bytes([header[0], header[1]]),
            ByteOrder::Big => u16::from_be_bytes([header[0], header[1]]),
        } as usize;
        if words == 0 {
            return; // Malformed framing: drop the connection.
        }
        let payload_len = words * 4 - 4;
        if payload_len > MAX_REQUEST_BYTES {
            return;
        }
        let mut payload = vec![0u8; payload_len];
        if stream.read_exact(&mut payload).is_err() {
            return;
        }
        let raw = RawRequest {
            opcode: header[2],
            payload,
        };
        if shared
            .events
            .send(ServerEvent::Request { id, raw })
            .is_err()
        {
            return;
        }
    }
}

/// Unblocks a pending `accept` on `addr` so its loop observes `stop`.
pub fn poke_tcp(addr: SocketAddr) {
    let _ = TcpStream::connect(addr);
}

/// Unblocks a pending Unix-domain `accept`.
pub fn poke_unix(path: &Path) {
    let _ = UnixStream::connect(path);
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_time::ATime;

    #[test]
    fn framing_round_trip_over_tcp() {
        let (tx, rx) = crossbeam_channel::unbounded();
        let shared = TransportShared::new(tx);
        let addr = spawn_tcp(Arc::clone(&shared), "127.0.0.1:0".parse().unwrap()).unwrap();

        // Handshake + one request from a raw socket.
        let mut sock = TcpStream::connect(addr).unwrap();
        let setup = ConnSetup::new();
        sock.write_all(&setup.encode()).unwrap();
        let req = af_proto::Request::PlaySamples {
            ac: 3,
            start_time: ATime::new(99),
            flags: 0,
            data: vec![1, 2, 3, 4, 5, 6, 7],
        };
        sock.write_all(&req.encode(ByteOrder::native())).unwrap();

        // The dispatcher side sees NewClient then the framed request.
        match rx.recv_timeout(std::time::Duration::from_secs(2)).unwrap() {
            ServerEvent::NewClient { setup: s, peer, .. } => {
                assert_eq!(ConnSetup::decode(&s).unwrap(), setup);
                assert!(peer.unwrap().is_loopback());
            }
            _ => panic!("expected NewClient"),
        }
        match rx.recv_timeout(std::time::Duration::from_secs(2)).unwrap() {
            ServerEvent::Request { raw, .. } => {
                assert_eq!(raw.opcode, af_proto::Opcode::PlaySamples.to_wire());
                let decoded = af_proto::Request::decode(
                    ByteOrder::native(),
                    af_proto::Opcode::PlaySamples,
                    &raw.payload,
                )
                .unwrap();
                assert_eq!(decoded, req);
            }
            _ => panic!("expected Request"),
        }

        // Dropping the socket produces a Disconnect.
        drop(sock);
        match rx.recv_timeout(std::time::Duration::from_secs(2)).unwrap() {
            ServerEvent::Disconnect { .. } => {}
            _ => panic!("expected Disconnect"),
        }
        shared.stop.store(true, Ordering::Relaxed);
        poke_tcp(addr);
    }

    #[test]
    fn zero_length_frame_drops_connection() {
        let (tx, rx) = crossbeam_channel::unbounded();
        let shared = TransportShared::new(tx);
        let addr = spawn_tcp(Arc::clone(&shared), "127.0.0.1:0".parse().unwrap()).unwrap();

        let mut sock = TcpStream::connect(addr).unwrap();
        sock.write_all(&ConnSetup::new().encode()).unwrap();
        let _ = rx.recv_timeout(std::time::Duration::from_secs(2)).unwrap();
        // A zero length header is invalid.
        sock.write_all(&[0, 0, 33, 0]).unwrap();
        match rx.recv_timeout(std::time::Duration::from_secs(2)).unwrap() {
            ServerEvent::Disconnect { .. } => {}
            _ => panic!("expected Disconnect for bad framing"),
        }
        shared.stop.store(true, Ordering::Relaxed);
        poke_tcp(addr);
    }

    #[test]
    fn unix_socket_round_trip() {
        let (tx, rx) = crossbeam_channel::unbounded();
        let shared = TransportShared::new(tx);
        let dir = std::env::temp_dir().join(format!("af-test-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("af-unix-test.sock");
        spawn_unix(Arc::clone(&shared), &path).unwrap();

        let mut sock = UnixStream::connect(&path).unwrap();
        sock.write_all(&ConnSetup::new().encode()).unwrap();
        match rx.recv_timeout(std::time::Duration::from_secs(2)).unwrap() {
            ServerEvent::NewClient { peer, .. } => assert!(peer.is_none()),
            _ => panic!("expected NewClient"),
        }
        shared.stop.store(true, Ordering::Relaxed);
        poke_unix(&path);
        let _ = std::fs::remove_file(&path);
    }
}
