//! A reuse pool for frame and reply buffers.
//!
//! The transport reader allocated a fresh `Vec<u8>` per request frame and
//! the dispatcher another per reply; at paper §10 request rates that is two
//! heap round trips per request.  [`BufferPool`] keeps a small free list so
//! steady-state traffic recycles the same few buffers: the reader takes one
//! per frame, the dispatcher reuses it (or takes another for the reply),
//! and the writer thread returns it when the bytes hit the socket.
//!
//! [`PooledBuf`] is the RAII handle — dropping it gives the buffer back.
//! Buffers can also be detached from any pool (`PooledBuf::from(vec)`) for
//! cold paths like setup replies and error messages.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Free list capacity: enough for every stage of a connection's pipeline
/// (frame in flight, reply queued, a few blocked) without hoarding memory.
const DEFAULT_MAX_IDLE: usize = 32;

/// Free-list sizing for reactor-mode servers, per shard.  A reactor shard
/// keeps one partial-frame accumulation buffer alive per connection that
/// is mid-frame, and thousands of connections cycle through frames
/// concurrently — a 32-buffer free list would thrash back to the
/// allocator under that churn.  The transport pool is sized
/// `shards × REACTOR_MAX_IDLE_PER_SHARD` instead.
pub const REACTOR_MAX_IDLE_PER_SHARD: usize = 128;

/// A shared pool of reusable byte buffers.
#[derive(Debug)]
pub struct BufferPool {
    idle: Mutex<Vec<Vec<u8>>>,
    max_idle: usize,
    allocs: AtomicU64,
    reuses: AtomicU64,
}

impl BufferPool {
    /// Creates a pool retaining at most `max_idle` idle buffers.
    pub fn with_max_idle(max_idle: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool {
            idle: Mutex::new(Vec::new()),
            max_idle,
            allocs: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
        })
    }

    /// Creates a pool with the default free-list size.
    pub fn shared() -> Arc<BufferPool> {
        Self::with_max_idle(DEFAULT_MAX_IDLE)
    }

    /// Takes an empty buffer (length 0, capacity whatever the pool has).
    pub fn take_empty(self: &Arc<Self>) -> PooledBuf {
        let mut buf = self.pop();
        buf.clear();
        PooledBuf {
            buf,
            pool: Some(Arc::clone(self)),
        }
    }

    /// Takes a buffer resized (zero-filled) to exactly `len` bytes.
    pub fn take_filled(self: &Arc<Self>, len: usize) -> PooledBuf {
        let mut buf = self.pop();
        buf.clear();
        buf.resize(len, 0);
        PooledBuf {
            buf,
            pool: Some(Arc::clone(self)),
        }
    }

    fn pop(&self) -> Vec<u8> {
        // The lock scope is a leaf (no user code runs under it), so a
        // poisoned pool only means another thread died mid-push; its free
        // list is still structurally sound — recover it.
        let recycled = self
            .idle
            // af-analyze: allow(blocking-in-reactor): leaf mutex with a bounded critical section (vec pop); never held across I/O or sends
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .pop();
        match recycled {
            Some(buf) => {
                self.reuses.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                self.allocs.fetch_add(1, Ordering::Relaxed);
                // af-analyze: allow(alloc): counted pool-miss path; steady state recycles returned buffers
                Vec::new()
            }
        }
    }

    /// Returns a detached `Vec`'s storage to the free list — the hook for
    /// audio workers recycling drained job payloads without wrapping them
    /// in a [`PooledBuf`] first.
    pub fn recycle(&self, buf: Vec<u8>) {
        self.give(buf);
    }

    fn give(&self, buf: Vec<u8>) {
        if buf.capacity() == 0 {
            return;
        }
        let mut idle = self
            .idle
            // af-analyze: allow(blocking-in-reactor): leaf mutex with a bounded critical section (vec push); never held across I/O or sends
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if idle.len() < self.max_idle {
            idle.push(buf);
        }
    }

    /// Buffers handed out that missed the free list (fresh allocations).
    pub fn allocs(&self) -> u64 {
        self.allocs.load(Ordering::Relaxed)
    }

    /// Buffers handed out from the free list.
    pub fn reuses(&self) -> u64 {
        self.reuses.load(Ordering::Relaxed)
    }

    /// The free-list retention bound this pool was built with.
    pub fn max_idle(&self) -> usize {
        self.max_idle
    }

    /// Buffers currently idle in the free list.
    pub fn idle_len(&self) -> usize {
        self.idle
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .len()
    }
}

/// A byte buffer borrowed from a [`BufferPool`] (or detached from any).
///
/// Dereferences to `[u8]`; dropping returns the storage to its pool.
#[derive(Debug)]
pub struct PooledBuf {
    buf: Vec<u8>,
    pool: Option<Arc<BufferPool>>,
}

impl PooledBuf {
    /// The underlying vector, for growth/encoding in place.
    pub fn vec_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }

    /// Detaches the buffer from its pool, returning the raw vector.
    pub fn into_vec(mut self) -> Vec<u8> {
        self.pool = None;
        std::mem::take(&mut self.buf)
    }
}

impl From<Vec<u8>> for PooledBuf {
    /// Wraps a plain vector as a pool-less buffer (cold paths).
    fn from(buf: Vec<u8>) -> PooledBuf {
        PooledBuf { buf, pool: None }
    }
}

impl Clone for PooledBuf {
    /// Clones the contents into a detached (pool-less) buffer.
    fn clone(&self) -> PooledBuf {
        PooledBuf {
            buf: self.buf.clone(),
            pool: None,
        }
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.give(std::mem::take(&mut self.buf));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_recycle_through_the_pool() {
        let pool = BufferPool::with_max_idle(4);
        {
            let mut a = pool.take_filled(100);
            a[0] = 7;
        } // Returned on drop.
        assert_eq!(pool.allocs(), 1);
        assert_eq!(pool.idle_len(), 1);

        let b = pool.take_filled(50);
        assert_eq!(pool.allocs(), 1, "second take must reuse");
        assert_eq!(pool.reuses(), 1);
        assert_eq!(b.len(), 50);
        assert!(b.iter().all(|&x| x == 0), "reused buffer must be zeroed");
    }

    #[test]
    fn free_list_is_bounded() {
        let pool = BufferPool::with_max_idle(2);
        let bufs: Vec<_> = (0..5).map(|_| pool.take_filled(8)).collect();
        drop(bufs);
        assert_eq!(pool.idle_len(), 2);
    }

    #[test]
    fn detached_buffers_skip_the_pool() {
        let pool = BufferPool::with_max_idle(4);
        let d = PooledBuf::from(vec![1, 2, 3]);
        assert_eq!(&*d, &[1, 2, 3]);
        drop(d);
        assert_eq!(pool.idle_len(), 0);

        let taken = pool.take_filled(16);
        let v = taken.into_vec();
        assert_eq!(v.len(), 16);
        assert_eq!(pool.idle_len(), 0, "into_vec detaches from the pool");
    }

    #[test]
    fn steady_state_allocates_nothing_new() {
        let pool = BufferPool::with_max_idle(4);
        for _ in 0..100 {
            let frame = pool.take_filled(1024);
            let mut reply = pool.take_empty();
            reply.vec_mut().extend_from_slice(&[0u8; 64]); // "encode" a reply
            drop(frame);
            drop(reply);
        }
        assert!(
            pool.allocs() <= 2,
            "steady state must recycle: {} allocs",
            pool.allocs()
        );
        assert!(pool.reuses() >= 198);
    }
}
