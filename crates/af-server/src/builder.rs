//! Assembling and running servers.
//!
//! The paper shipped several server binaries — `Alofi` (two CODECs, HiFi,
//! telephone line), `Aaxp`/`Asparc` (one base-board CODEC), `Als`
//! (LineServer) — that differed only in their device-dependent bottom
//! halves.  [`ServerBuilder`] composes the same shapes from simulated
//! devices and produces a [`RunningServer`] with its dispatcher thread and
//! transports started.

use crate::backend::{AlsBackend, LocalBackend};
use crate::broadcast::{BroadcastBus, BroadcastConfig, BroadcastStats, BusTap};
use crate::buffer::DeviceBuffers;
use crate::dispatch::{Dispatcher, ServerCore};
use crate::state::{AccessControl, AtomRegistry, ControlMsg, Device, ServerEvent, ServerStats};
use crate::transport::{self, TransportShared};
use crate::worker::{
    AudioWorker, DeviceControl, WorkerDevice, WorkerHandle, WorkerLink, WorkerStats,
    WORKER_QUEUE_CAPACITY,
};
use af_chaos::StreamFaultPlan;
use af_device::hardware::{HwConfig, VirtualAudioHw};
use af_device::io::{NullSink, SampleSink, SampleSource, SilenceSource};
use af_device::lineserver::LineServerLink;
use af_device::{PhoneLine, SharedClock};
use af_dsp::Encoding;
use af_proto::{DeviceDesc, DeviceKind};
use af_time::ATime;
use crossbeam_channel::Sender;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Capacity of the dispatcher's central event queue.
///
/// Bounded so a stalled dispatcher exerts backpressure instead of growing
/// the heap: transport readers block (which in turn stops reading the
/// socket — TCP backpressure to the client), and audio workers block on
/// their `WorkerDone` notifications.  The bound cannot deadlock the
/// dispatcher↔worker cycle in practice: each client has at most one job in
/// flight (`awaiting_worker`), so outstanding `WorkerDone` events are
/// bounded by the client count, and each transport reader parks after a
/// single blocked send — thousands of concurrent senders would be needed
/// to fill the queue while the dispatcher is also blocked.
pub const EVENT_QUEUE_CAPACITY: usize = 4096;

/// Ingredients for one abstract audio device.
pub struct DeviceSetup {
    /// Advertised description (index is assigned by the builder).
    pub desc: DeviceDesc,
    /// The buffering engine over its backend (owners only).
    pub buffers: Option<DeviceBuffers>,
    /// For mono views: `(parent device index, channel lane)`.
    pub mono_of: Option<(usize, u8)>,
    /// Attached telephone line, if any.
    pub phone: Option<PhoneLine>,
    /// Pass-through peer device index, if wired.
    pub passthrough_peer: Option<usize>,
}

/// Builder for an AudioFile server.
pub struct ServerBuilder {
    vendor: String,
    update_interval: Duration,
    devices: Vec<DeviceSetup>,
    tcp: Option<SocketAddr>,
    unix: Option<PathBuf>,
    access_enabled: bool,
    idle_timeout: Option<Duration>,
    chaos: Option<StreamFaultPlan>,
    sharded: bool,
    classic_transport: bool,
    reactor_shards: Option<usize>,
    link_stats: Vec<Arc<af_device::jitter::LinkStats>>,
    broadcast: Option<(usize, SocketAddr, BroadcastConfig)>,
}

/// Server play/record buffer frames for an 8 kHz device: ≈ 4 seconds
/// (the next power of two above 4 × 8000).
pub const CODEC_BUFFER_FRAMES: u32 = 32_768;
/// Server buffer frames for a 44.1/48 kHz device: ≈ 4–6 seconds.
pub const HIFI_BUFFER_FRAMES: u32 = 262_144;

impl ServerBuilder {
    /// Creates an empty builder.
    pub fn new() -> ServerBuilder {
        ServerBuilder {
            vendor: "audiofile-rs".to_string(),
            update_interval: Duration::from_millis(crate::MSUPDATE),
            devices: Vec::new(),
            tcp: None,
            unix: None,
            access_enabled: true,
            idle_timeout: None,
            chaos: None,
            sharded: false,
            classic_transport: false,
            reactor_shards: None,
            link_stats: Vec::new(),
            broadcast: None,
        }
    }

    /// Broadcasts `device`'s post-mix speaker bus to HTTP/ICY listeners on
    /// `addr` (encode-once fan-out, DESIGN.md §13).  Use port 0 for an
    /// ephemeral port; the bound address is
    /// [`RunningServer::broadcast_addr`].  The device must own buffers (not
    /// a mono view).  Listeners are served by the reactor: in classic
    /// transport mode a dedicated broadcast-only reactor is spawned.
    pub fn broadcast(self, device: usize, addr: SocketAddr) -> Self {
        self.broadcast_with_config(device, addr, BroadcastConfig::default())
    }

    /// [`ServerBuilder::broadcast`] with explicit bus tuning (chunk size,
    /// ring depth, preroll, stall budget) — tests shrink these.
    pub fn broadcast_with_config(
        mut self,
        device: usize,
        addr: SocketAddr,
        cfg: BroadcastConfig,
    ) -> Self {
        self.broadcast = Some((device, addr, cfg));
        self
    }

    /// Selects the classic thread-per-connection transport instead of the
    /// event-driven reactor (the default).  Kept for differential testing
    /// and for targets without a reactor syscall backend — which fall back
    /// to classic automatically.
    pub fn classic_transport(mut self, enabled: bool) -> Self {
        self.classic_transport = enabled;
        self
    }

    /// Sets the reactor shard count (default `min(4, cores)`).  Ignored
    /// by the classic transport.
    pub fn reactor_shards(mut self, shards: usize) -> Self {
        self.reactor_shards = Some(shards.max(1));
        self
    }

    /// Shards the sample hot path: each buffer-owning device (grouped with
    /// its pass-through peer) moves onto a dedicated audio worker thread
    /// that drains play/record jobs, runs its own periodic update, and
    /// replies to clients directly.  Control requests keep the paper's
    /// single-threaded dispatcher semantics (§7.3.1).  Off by default.
    pub fn sharded_data_plane(mut self, enabled: bool) -> Self {
        self.sharded = enabled;
        self
    }

    /// Sets the vendor string reported at connection setup.
    pub fn vendor(mut self, vendor: &str) -> Self {
        self.vendor = vendor.to_string();
        self
    }

    /// Sets the update task period (the paper's `MSUPDATE`, default 100 ms).
    pub fn update_interval(mut self, interval: Duration) -> Self {
        self.update_interval = interval;
        self
    }

    /// Listens on a TCP address (use port 0 for an ephemeral port).
    pub fn listen_tcp(mut self, addr: SocketAddr) -> Self {
        self.tcp = Some(addr);
        self
    }

    /// Listens on a Unix-domain socket path.
    pub fn listen_unix(mut self, path: PathBuf) -> Self {
        self.unix = Some(path);
        self
    }

    /// Starts with access control disabled (any host may connect).
    pub fn access_control(mut self, enabled: bool) -> Self {
        self.access_enabled = enabled;
        self
    }

    /// Evicts clients that send no requests for `timeout`.
    ///
    /// Suspended clients (waiting on the server) are exempt.  Off by
    /// default, matching the paper's model of long-lived idle connections.
    pub fn idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = Some(timeout);
        self
    }

    /// Injects deterministic faults into every accepted connection.
    ///
    /// Each connection's fault schedule is forked from the plan's seed and
    /// the connection id, so runs with the same seed see the same faults.
    pub fn chaos(mut self, plan: StreamFaultPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    fn desc_for(
        kind: DeviceKind,
        cfg: &HwConfig,
        frames: u32,
        phone_masks: (u32, u32),
    ) -> DeviceDesc {
        DeviceDesc {
            index: 0, // Assigned at spawn.
            kind,
            play_sample_freq: cfg.rate,
            rec_sample_freq: cfg.rate,
            play_buf_type: cfg.encoding,
            rec_buf_type: cfg.encoding,
            play_nchannels: cfg.channels,
            rec_nchannels: cfg.channels,
            play_nsamples_buf: frames,
            rec_nsamples_buf: frames,
            number_of_inputs: 1,
            number_of_outputs: 1,
            inputs_from_phone: phone_masks.0,
            outputs_to_phone: phone_masks.1,
            supported_types: DeviceDesc::all_convertible_types(),
        }
    }

    /// Adds an 8 kHz µ-law codec device with the given endpoints.
    ///
    /// Returns the device index.
    pub fn add_codec(
        &mut self,
        clock: SharedClock,
        sink: Box<dyn SampleSink>,
        source: Box<dyn SampleSource>,
    ) -> usize {
        self.add_codec_with_buffer(clock, sink, source, CODEC_BUFFER_FRAMES)
    }

    /// Adds a codec with an explicit server buffer size in frames (a power
    /// of two).  The buffer size is an advertised device attribute (§2.1
    /// footnote: "the precise size of the server buffer is available to
    /// clients as an attribute of the audio device"), so nonstandard sizes
    /// are legitimate — benchmarks use larger ones.
    pub fn add_codec_with_buffer(
        &mut self,
        clock: SharedClock,
        sink: Box<dyn SampleSink>,
        source: Box<dyn SampleSource>,
        frames: u32,
    ) -> usize {
        let cfg = HwConfig::codec();
        let hw = VirtualAudioHw::new(cfg, clock, sink, source);
        let buffers =
            DeviceBuffers::new(Box::new(LocalBackend::new(hw)), Encoding::Mu255, 1, frames);
        self.push(DeviceSetup {
            desc: Self::desc_for(DeviceKind::Codec, &cfg, frames, (0, 0)),
            buffers: Some(buffers),
            mono_of: None,
            phone: None,
            passthrough_peer: None,
        })
    }

    /// Adds a codec whose connectors reach a telephone line (LoFi device 0).
    pub fn add_phone_codec(&mut self, clock: SharedClock, line: PhoneLine) -> usize {
        let cfg = HwConfig::codec();
        let hw = VirtualAudioHw::new(
            cfg,
            clock,
            Box::new(line.line_sink()),
            Box::new(line.line_source()),
        );
        let buffers = DeviceBuffers::new(
            Box::new(LocalBackend::new(hw)),
            Encoding::Mu255,
            1,
            CODEC_BUFFER_FRAMES,
        );
        self.push(DeviceSetup {
            desc: Self::desc_for(DeviceKind::Codec, &cfg, CODEC_BUFFER_FRAMES, (1, 1)),
            buffers: Some(buffers),
            mono_of: None,
            phone: Some(line),
            passthrough_peer: None,
        })
    }

    /// Adds a 44.1 kHz 16-bit stereo HiFi device.
    pub fn add_hifi(
        &mut self,
        clock: SharedClock,
        sink: Box<dyn SampleSink>,
        source: Box<dyn SampleSource>,
    ) -> usize {
        let cfg = HwConfig::hifi();
        let hw = VirtualAudioHw::new(cfg, clock, sink, source);
        let buffers = DeviceBuffers::new(
            Box::new(LocalBackend::new(hw)),
            Encoding::Lin16,
            2,
            HIFI_BUFFER_FRAMES,
        );
        self.push(DeviceSetup {
            desc: Self::desc_for(DeviceKind::Hifi, &cfg, HIFI_BUFFER_FRAMES, (0, 0)),
            buffers: Some(buffers),
            mono_of: None,
            phone: None,
            passthrough_peer: None,
        })
    }

    /// Adds a HiFi stereo device plus two mono-view devices for its left
    /// and right channels, as the Alofi server does (§7.4.1: "to support
    /// mono channel operations, we also implemented two audio devices that
    /// represent the separate left and right channels of the stereo
    /// device").
    ///
    /// Returns `(stereo, left, right)` device indices.
    pub fn add_hifi_with_mono(
        &mut self,
        clock: SharedClock,
        sink: Box<dyn SampleSink>,
        source: Box<dyn SampleSource>,
    ) -> (usize, usize, usize) {
        let stereo = self.add_hifi(clock, sink, source);
        let cfg = HwConfig::hifi();
        let mono_desc = |kind: DeviceKind| {
            let mut d = Self::desc_for(kind, &cfg, HIFI_BUFFER_FRAMES, (0, 0));
            d.play_nchannels = 1;
            d.rec_nchannels = 1;
            d
        };
        let left = self.push(DeviceSetup {
            desc: mono_desc(DeviceKind::HifiLeft),
            buffers: None,
            mono_of: Some((stereo, 0)),
            phone: None,
            passthrough_peer: None,
        });
        let right = self.push(DeviceSetup {
            desc: mono_desc(DeviceKind::HifiRight),
            buffers: None,
            mono_of: Some((stereo, 1)),
            phone: None,
            passthrough_peer: None,
        });
        (stereo, left, right)
    }

    /// Adds a device served by a remote LineServer over UDP (`Als`).
    pub fn add_lineserver(&mut self, addr: SocketAddr) -> std::io::Result<usize> {
        let link = LineServerLink::connect(addr)?;
        Ok(self.add_lineserver_link(link))
    }

    /// Adds a LineServer device over an already-connected link — the hook
    /// for links with a fault-injecting UDP socket underneath.
    pub fn add_lineserver_link(&mut self, link: LineServerLink) -> usize {
        let backend = AlsBackend::new(link, 8000, af_device::lineserver::LS_BUFFER_SAMPLES);
        self.link_stats.push(backend.stats_handle());
        let buffers =
            DeviceBuffers::new(Box::new(backend), Encoding::Mu255, 1, CODEC_BUFFER_FRAMES);
        let cfg = HwConfig {
            encoding: Encoding::Mu255,
            rate: 8000,
            channels: 1,
            ring_frames: af_device::lineserver::LS_BUFFER_SAMPLES,
        };
        self.push(DeviceSetup {
            desc: Self::desc_for(DeviceKind::LineServer, &cfg, CODEC_BUFFER_FRAMES, (0, 0)),
            buffers: Some(buffers),
            mono_of: None,
            phone: None,
            passthrough_peer: None,
        })
    }

    /// Adds a fully custom device.
    pub fn add_device(&mut self, setup: DeviceSetup) -> usize {
        self.push(setup)
    }

    fn push(&mut self, setup: DeviceSetup) -> usize {
        self.devices.push(setup);
        self.devices.len() - 1
    }

    /// Wires two devices as a pass-through pair (§7.4.1).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range or they are equal.
    pub fn pair_passthrough(&mut self, a: usize, b: usize) {
        assert!(a != b && a < self.devices.len() && b < self.devices.len());
        self.devices[a].passthrough_peer = Some(b);
        self.devices[b].passthrough_peer = Some(a);
    }

    /// The standard LoFi shape: a phone codec, a local codec (pass-through
    /// paired), and a HiFi device — all on one clock, as LoFi's devices
    /// shared synchronized interrupts.
    ///
    /// Returns `(builder, phone_line)`.
    pub fn lofi(clock: SharedClock) -> (ServerBuilder, PhoneLine) {
        let mut b = ServerBuilder::new().vendor("audiofile-rs Alofi");
        let line = PhoneLine::new();
        let d0 = b.add_phone_codec(Arc::clone(&clock), line.clone());
        let d1 = b.add_codec(
            Arc::clone(&clock),
            Box::new(NullSink),
            Box::new(SilenceSource::new(af_dsp::g711::ULAW_SILENCE)),
        );
        b.pair_passthrough(d0, d1);
        // Like Alofi, "presents five audio devices to clients": two CODECs
        // and three HiFi views (stereo, left, right).
        b.add_hifi_with_mono(clock, Box::new(NullSink), Box::new(SilenceSource::new(0)));
        (b, line)
    }

    /// Starts the server: dispatcher thread plus configured transports.
    pub fn spawn(self) -> std::io::Result<RunningServer> {
        let (tx, rx) = crossbeam_channel::bounded::<ServerEvent>(EVENT_QUEUE_CAPACITY);
        let mut devices = Vec::with_capacity(self.devices.len());
        for (i, mut setup) in self.devices.into_iter().enumerate() {
            setup.desc.index = i as u8;
            devices.push(Device {
                desc: setup.desc,
                buffers: setup.buffers,
                mono_of: setup.mono_of,
                phone: setup.phone,
                input_gain_db: 0,
                output_gain_db: 0,
                gain_range: (-30, 30),
                inputs_enabled: u32::MAX,
                outputs_enabled: u32::MAX,
                passthrough: false,
                passthrough_peer: setup.passthrough_peer,
                properties: HashMap::new(),
                gain_control_locked: false,
                pt_in: ATime::ZERO,
                pt_out: ATime::ZERO,
                worker: None,
            });
        }
        let mut access = AccessControl::new();
        access.set_enabled(self.access_enabled);
        let stats = Arc::new(ServerStats::default());
        for link in self.link_stats {
            stats.register_link(link);
        }
        // Broadcast fan-out: build the bus and install the speaker-bus tap
        // on the device *before* buffers can move onto an audio worker, so
        // the tap publishes from whichever thread runs the update task.
        let broadcast_req = self.broadcast;
        let mut broadcast_bus: Option<Arc<BroadcastBus>> = None;
        if let Some((dev_idx, _, cfg)) = &broadcast_req {
            let buffers = devices
                .get_mut(*dev_idx)
                .and_then(|d| d.buffers.as_mut())
                .ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        "broadcast device must own buffers",
                    )
                })?;
            let bstats = BroadcastStats::new(format!("broadcast-dev{dev_idx}"));
            stats.register_broadcast(Arc::clone(&bstats));
            let bus = BroadcastBus::new(cfg.clone(), buffers.frame_bytes(), bstats);
            let fill = af_dsp::silence::silence_byte(buffers.encoding()).unwrap_or(0);
            buffers.set_tap(Box::new(BusTap::new(Arc::clone(&bus), fill)));
            broadcast_bus = Some(bus);
        }
        // Transport mode: event-driven reactor by default; classic
        // thread-per-connection when requested or when the target has no
        // reactor syscall backend.
        let use_reactor = !self.classic_transport && crate::reactor::reactor_supported();
        let reactor_shards = self
            .reactor_shards
            .unwrap_or_else(crate::reactor::default_shards);
        // The transport layer owns the buffer pool; the dispatcher shares it
        // so reply buffers drained by writers come back around.  Reactor
        // mode sizes the free list for per-connection partial-frame
        // accumulation across thousands of sockets.
        let pool = if use_reactor {
            crate::pool::BufferPool::with_max_idle(
                reactor_shards * crate::pool::REACTOR_MAX_IDLE_PER_SHARD,
            )
        } else {
            crate::pool::BufferPool::shared()
        };
        let shared = TransportShared::with_pool(tx.clone(), self.chaos, pool);
        let mut workers: Vec<WorkerHandle> = Vec::new();
        if self.sharded {
            // Group buffer owners so pass-through pairs share one worker
            // (their cursor work crosses both rings); everything else gets
            // its own thread.  Mono views stay with their owner implicitly —
            // they have no buffers and resolve through `mono_of`.
            let n = devices.len();
            let mut root: Vec<usize> = (0..n).collect();
            fn find(root: &mut [usize], mut i: usize) -> usize {
                while root[i] != i {
                    root[i] = root[root[i]];
                    i = root[i];
                }
                i
            }
            let peers: Vec<Option<usize>> = devices.iter().map(|d| d.passthrough_peer).collect();
            for (i, peer) in peers.iter().enumerate() {
                if let Some(p) = *peer {
                    if p < n {
                        let (a, b) = (find(&mut root, i), find(&mut root, p));
                        if a != b {
                            root[a] = b;
                        }
                    }
                }
            }
            let owners: Vec<bool> = devices.iter().map(|d| d.buffers.is_some()).collect();
            let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
            for (i, owns) in owners.iter().enumerate() {
                if *owns {
                    let r = find(&mut root, i);
                    groups.entry(r).or_default().push(i);
                }
            }
            let mut group_list: Vec<Vec<usize>> = groups.into_values().collect();
            group_list.sort_by_key(|g| g[0]);
            for (gi, members) in group_list.into_iter().enumerate() {
                let (jtx, jrx) = crossbeam_channel::bounded(WORKER_QUEUE_CAPACITY);
                let wstats = Arc::new(WorkerStats::new(format!("audio-worker-{gi}")));
                stats.register_worker(Arc::clone(&wstats));
                let mut wdevs = Vec::with_capacity(members.len());
                for &i in &members {
                    let d = &mut devices[i];
                    // Groups are built from buffer owners only; if a member
                    // has no buffers, leave it on the classic path rather
                    // than dying during startup.
                    let Some(buffers) = d.buffers.take() else {
                        continue;
                    };
                    let control = Arc::new(DeviceControl::new(
                        d.output_gain_db,
                        d.input_gain_db,
                        d.inputs_enabled,
                        d.outputs_enabled,
                    ));
                    let snapshot = Arc::new(std::sync::atomic::AtomicU64::new(0));
                    d.worker = Some(WorkerLink {
                        worker_id: gi,
                        tx: jtx.clone(),
                        snapshot: Arc::clone(&snapshot),
                        control: Arc::clone(&control),
                        stats: Arc::clone(&wstats),
                        enc: buffers.encoding(),
                        frame_bytes: buffers.frame_bytes(),
                        frames: buffers.frames(),
                    });
                    wdevs.push(WorkerDevice {
                        index: i,
                        buffers,
                        control,
                        snapshot,
                        rate: d.desc.play_sample_freq,
                        channels: d.desc.play_nchannels,
                        passthrough: false,
                        passthrough_peer: d.passthrough_peer,
                        pt_in: ATime::ZERO,
                        pt_out: ATime::ZERO,
                    });
                }
                let worker = AudioWorker::new(
                    jrx,
                    wdevs,
                    self.update_interval,
                    Arc::clone(&wstats),
                    tx.clone(),
                    Arc::clone(&shared.pool),
                );
                let join = std::thread::Builder::new()
                    .name(format!("af-audio-{gi}"))
                    .spawn(move || worker.run())?;
                workers.push(WorkerHandle { tx: jtx, join });
            }
        }
        let core = ServerCore {
            vendor: self.vendor,
            devices,
            clients: HashMap::new(),
            atoms: AtomRegistry::new(),
            access,
            stats: Arc::clone(&stats),
            pool: Arc::clone(&shared.pool),
        };
        let dispatcher = Dispatcher::new(core, rx, self.update_interval)
            .with_idle_timeout(self.idle_timeout)
            .with_workers(workers);
        let join = std::thread::Builder::new()
            .name("af-dispatcher".into())
            .spawn(move || dispatcher.run())?;

        // `AF_REACTOR_FORCE=poll` pins the reactor onto its `poll(2)`
        // fallback for differential testing.
        let force_poll = std::env::var("AF_REACTOR_FORCE").as_deref() == Ok("poll");
        let mut reactor = None;
        let mut broadcast_addr = None;
        let tcp_addr;
        if use_reactor {
            let r = crate::reactor::Reactor::spawn_with_broadcast(
                Arc::clone(&shared),
                reactor_shards,
                force_poll,
                broadcast_bus.clone(),
            )?;
            for s in r.shard_stats() {
                stats.register_reactor_shard(Arc::clone(s));
            }
            tcp_addr = match self.tcp {
                Some(addr) => Some(r.add_tcp(addr)?),
                None => None,
            };
            if let Some(path) = &self.unix {
                r.add_unix(path)?;
            }
            if let Some((_, addr, _)) = &broadcast_req {
                broadcast_addr = Some(r.add_broadcast_tcp(*addr)?);
            }
            reactor = Some(r);
        } else {
            tcp_addr = match self.tcp {
                Some(addr) => Some(transport::spawn_tcp(Arc::clone(&shared), addr)?),
                None => None,
            };
            if let Some(path) = &self.unix {
                transport::spawn_unix(Arc::clone(&shared), path)?;
            }
            if let Some(bus) = broadcast_bus.clone() {
                // Classic transport carries dispatcher clients; listeners
                // still need readiness-driven fan-out, so a broadcast-only
                // reactor serves them (no dispatcher connections on it).
                let r = crate::reactor::Reactor::spawn_with_broadcast(
                    Arc::clone(&shared),
                    reactor_shards,
                    force_poll,
                    Some(bus),
                )?;
                for s in r.shard_stats() {
                    stats.register_reactor_shard(Arc::clone(s));
                }
                if let Some((_, addr, _)) = &broadcast_req {
                    broadcast_addr = Some(r.add_broadcast_tcp(*addr)?);
                }
                reactor = Some(r);
            }
        }
        Ok(RunningServer {
            handle: ServerHandle { events: tx },
            shared,
            stats,
            reactor,
            classic: !use_reactor,
            tcp_addr,
            broadcast_addr,
            unix_path: self.unix,
            join: Some(join),
        })
    }
}

impl Default for ServerBuilder {
    fn default() -> Self {
        ServerBuilder::new()
    }
}

/// A control handle into a running server's dispatcher.
#[derive(Clone)]
pub struct ServerHandle {
    events: Sender<ServerEvent>,
}

impl ServerHandle {
    /// Runs the update task immediately and waits for it to finish.
    ///
    /// Tests that drive a [`af_device::VirtualClock`] call this after
    /// advancing the clock, standing in for the periodic task firing.
    pub fn run_update(&self) {
        let (ack, done) = crossbeam_channel::bounded(1);
        if self
            .events
            .send(ServerEvent::Control(ControlMsg::RunUpdate { ack }))
            .is_ok()
        {
            let _ = done.recv_timeout(Duration::from_secs(10));
        }
    }

    /// Waits until all previously submitted events have been processed.
    pub fn barrier(&self) {
        let (ack, done) = crossbeam_channel::bounded(1);
        if self
            .events
            .send(ServerEvent::Control(ControlMsg::Barrier { ack }))
            .is_ok()
        {
            let _ = done.recv_timeout(Duration::from_secs(10));
        }
    }

    /// Requests shutdown (the dispatcher exits after current events).
    pub fn shutdown(&self) {
        let _ = self.events.send(ServerEvent::Control(ControlMsg::Shutdown));
    }
}

/// A running server: dispatcher thread, transports, and control handle.
pub struct RunningServer {
    handle: ServerHandle,
    shared: Arc<TransportShared>,
    stats: Arc<ServerStats>,
    reactor: Option<crate::reactor::Reactor>,
    /// Classic thread-per-connection transport in use (its accept threads
    /// need the shutdown poke even when a broadcast reactor also runs).
    classic: bool,
    tcp_addr: Option<SocketAddr>,
    broadcast_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl RunningServer {
    /// The bound TCP address, if a TCP listener was configured.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound broadcast (HTTP/ICY) address, if broadcast was configured.
    pub fn broadcast_addr(&self) -> Option<SocketAddr> {
        self.broadcast_addr
    }

    /// Failure counters (evictions, protocol errors, disconnects).
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// The Unix-domain socket path, if configured.
    pub fn unix_path(&self) -> Option<&PathBuf> {
        self.unix_path.as_ref()
    }

    /// The control handle.
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// Stops the server and joins the dispatcher thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.handle.shutdown();
        self.shared
            .stop
            .store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(mut reactor) = self.reactor.take() {
            // Wakes every shard; they observe the stop flag and exit.
            reactor.shutdown();
        }
        if self.classic {
            if let Some(addr) = self.tcp_addr {
                transport::poke_tcp(addr);
            }
            if let Some(path) = &self.unix_path {
                transport::poke_unix(path);
            }
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        if self.join.is_some() {
            self.stop();
        }
    }
}
