//! Per-device audio workers: the server's data plane.
//!
//! The paper's server is single-threaded (§7.3.1) because LoFi hung five
//! devices off one select() loop.  That remains true here for the *control
//! plane*: every request is still parsed, validated and sequenced by the
//! one dispatcher thread, so §7.1's ordering guarantees are untouched.
//! What moves out is the sample-touching work — byte-swapping, sample-type
//! conversion, gain scaling, ring mixing, the per-device update task —
//! which lands on a worker thread per device *group* (a buffer owner plus
//! its mono views and its pass-through peer), fed by a bounded SPSC queue
//! of [`AudioJob`]s.
//!
//! Invariants that keep the sharded path bit-exact with the classic path:
//!
//! * All sample ops for one device funnel through its single worker in the
//!   dispatcher's enqueue order, so ring writes (and therefore saturating
//!   mixes) happen in the same sequence either way.
//! * Gains and enable masks that the classic path read at request time are
//!   captured into the job at enqueue time; values the classic path read
//!   at *completion* time (a blocked record's input gain) are re-read from
//!   the [`DeviceControl`] atomics, which the dispatcher mirrors
//!   synchronously before any later job can be enqueued.
//! * Conversion state (ADPCM predictors) is per audio context in the
//!   classic path, so the worker caches one [`Converter`] pair per
//!   `(client, ac)` and drops it on `FreeAc`/disconnect.
//! * A client has at most one job in flight; its other requests wait in
//!   the dispatcher's per-client queue until the worker posts
//!   [`ServerEvent::WorkerDone`], so per-client reply order is preserved.
//!
//! Device time is published after every job and update through an
//! `AtomicU64` snapshot, so `GetTime` (and event stamping) on the
//! dispatcher never blocks on a worker — a seqlock-free read at the cost
//! of at most one update period of staleness.

use crate::buffer::DeviceBuffers;
use crate::pool::BufferPool;
use crate::state::{ClientId, ServerEvent};
use crate::transport::ReplySink;
use af_dsp::convert::Converter;
use af_dsp::Encoding;
use af_proto::{AcId, ErrorCode, Opcode, Reply};
use af_time::ATime;
use crossbeam_channel::{Receiver, RecvTimeoutError, Sender};
use std::collections::HashMap;
use std::sync::atomic::{AtomicI32, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bound on each worker's job queue.  A client never has more than one
/// job in flight, so depth is bounded by the client count in practice;
/// the cap only guards against pathological fan-in.
pub const WORKER_QUEUE_CAPACITY: usize = 256;

/// Dispatcher-owned mirror of a device's gain/enable state, read by the
/// worker when it needs *current* (not enqueue-time) values: the periodic
/// update and blocked-record completion, matching what the classic path
/// reads at those moments.
#[derive(Debug)]
pub struct DeviceControl {
    /// Output gain applied by the update task and ring writes.
    pub output_gain_db: AtomicI32,
    /// Input gain applied when a record completes.
    pub input_gain_db: AtomicI32,
    /// Nonzero = some input connector enabled.
    pub inputs_enabled: AtomicU32,
    /// Nonzero = some output connector enabled.
    pub outputs_enabled: AtomicU32,
}

impl DeviceControl {
    /// Mirrors the given initial device state.
    pub fn new(
        output_gain_db: i32,
        input_gain_db: i32,
        inputs_enabled: u32,
        outputs_enabled: u32,
    ) -> DeviceControl {
        DeviceControl {
            output_gain_db: AtomicI32::new(output_gain_db),
            input_gain_db: AtomicI32::new(input_gain_db),
            inputs_enabled: AtomicU32::new(inputs_enabled),
            outputs_enabled: AtomicU32::new(outputs_enabled),
        }
    }

    fn output_state(&self) -> (i32, bool) {
        (
            self.output_gain_db.load(Ordering::Acquire),
            self.outputs_enabled.load(Ordering::Acquire) != 0,
        )
    }
}

/// Per-worker counters, registered in [`crate::state::ServerStats`].
#[derive(Debug)]
pub struct WorkerStats {
    /// Thread label, e.g. `audio-worker-0`.
    pub label: String,
    /// High-water mark of the job queue depth (sampled at enqueue).
    pub queue_hwm: AtomicU64,
    /// Jobs the worker has drained.
    pub jobs_processed: AtomicU64,
    /// Periodic updates that started at least one full period late.
    pub update_overruns: AtomicU64,
    /// Cycles (or nanoseconds where the host has no cycle counter) spent
    /// in data-plane work: job handling plus periodic updates and retries.
    /// Divided by [`WorkerStats::bytes_processed`] this gives the
    /// per-plane cycles-per-byte metric the bench gate compares on.
    pub busy_cycles: AtomicU64,
    /// Sample bytes the drained jobs carried (play payloads as submitted,
    /// record replies as device bytes read).
    pub bytes_processed: AtomicU64,
}

impl WorkerStats {
    /// Fresh zeroed counters under `label`.
    pub fn new(label: String) -> WorkerStats {
        WorkerStats {
            label,
            queue_hwm: AtomicU64::new(0),
            jobs_processed: AtomicU64::new(0),
            update_overruns: AtomicU64::new(0),
            busy_cycles: AtomicU64::new(0),
            bytes_processed: AtomicU64::new(0),
        }
    }

    /// Records an observed queue depth.
    pub fn observe_depth(&self, depth: u64) {
        self.queue_hwm.fetch_max(depth, Ordering::Relaxed);
    }
}

/// A point-in-time copy of one worker's counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerStatsSnapshot {
    /// Thread label.
    pub label: String,
    /// Deepest the job queue has been.
    pub queue_hwm: u64,
    /// Jobs drained so far.
    pub jobs_processed: u64,
    /// Late periodic updates so far.
    pub update_overruns: u64,
    /// Data-plane cycles consumed so far.
    pub busy_cycles: u64,
    /// Sample bytes processed so far.
    pub bytes_processed: u64,
}

impl WorkerStats {
    /// Copies the counters out.
    pub fn snapshot(&self) -> WorkerStatsSnapshot {
        WorkerStatsSnapshot {
            label: self.label.clone(),
            queue_hwm: self.queue_hwm.load(Ordering::Relaxed),
            jobs_processed: self.jobs_processed.load(Ordering::Relaxed),
            update_overruns: self.update_overruns.load(Ordering::Relaxed),
            busy_cycles: self.busy_cycles.load(Ordering::Relaxed),
            bytes_processed: self.bytes_processed.load(Ordering::Relaxed),
        }
    }
}

/// The dispatcher's handle to the worker that owns a device's buffers.
/// Stored on buffer-owning [`crate::state::Device`]s in sharded mode.
pub struct WorkerLink {
    /// Identifies the worker (device groups can share one thread).
    pub worker_id: usize,
    /// Job queue into the worker.
    pub tx: Sender<AudioJob>,
    /// The device's published tick counter.
    pub snapshot: Arc<AtomicU64>,
    /// Mirrored gain/enable state.
    pub control: Arc<DeviceControl>,
    /// The worker's counters.
    pub stats: Arc<WorkerStats>,
    /// Cached native encoding (the buffers now live on the worker).
    pub enc: Encoding,
    /// Cached native frame size in bytes.
    pub frame_bytes: usize,
    /// Cached ring capacity in frames.
    pub frames: u32,
}

impl WorkerLink {
    /// The device's last published time.
    pub fn now(&self) -> ATime {
        ATime::new(self.snapshot.load(Ordering::Acquire) as u32)
    }
}

/// One unit of data-plane work, carrying everything the worker needs so
/// it never reads dispatcher-owned state.
pub enum AudioJob {
    /// A `PlaySamples` request (validated by the dispatcher).
    Play {
        /// Where replies/errors for this client go.
        sink: ReplySink,
        /// Originating client (for the completion event and converter key).
        client: ClientId,
        /// The audio context (converter cache key).
        ac: AcId,
        /// Request sequence number.
        seq: u16,
        /// Buffer-owning device index.
        device: usize,
        /// Mono-view channel lane, if any.
        lane: Option<u8>,
        /// Requested device time.
        start: ATime,
        /// Preemptive write (replace) instead of mixing.
        preempt: bool,
        /// Skip the completion reply.
        suppress_reply: bool,
        /// Client data is big-endian and needs swapping first.
        swap_bytes: bool,
        /// The AC's sample type (conversion source).
        src_enc: Encoding,
        /// The AC's play gain in dB.
        play_gain_db: i32,
        /// Output gain at enqueue time (what the classic path read).
        out_gain_db: i32,
        /// Output enablement at enqueue time.
        out_enabled: bool,
        /// The sample bytes, still in the client's sample type.
        data: Vec<u8>,
    },
    /// A `RecordSamples` request (validated by the dispatcher).
    Record {
        /// Where replies/errors for this client go.
        sink: ReplySink,
        /// Originating client.
        client: ClientId,
        /// The audio context (converter cache key).
        ac: AcId,
        /// Request sequence number.
        seq: u16,
        /// Buffer-owning device index.
        device: usize,
        /// Mono-view channel lane, if any.
        lane: Option<u8>,
        /// Requested device time.
        start: ATime,
        /// Frames requested (already derived from the AC's sample type).
        nframes: u32,
        /// Suspend until the whole region is recorded.
        block: bool,
        /// Swap the reply into big-endian order.
        big_endian: bool,
        /// The AC's sample type (conversion destination).
        dst_enc: Encoding,
        /// The AC's record gain in dB (device input gain is read live).
        record_gain_db: i32,
        /// First record under this AC: take a recorder reference.
        add_recorder: bool,
        /// Output gain at enqueue time, for the record-update.
        out_gain_db: i32,
        /// Output enablement at enqueue time, for the record-update.
        out_enabled: bool,
    },
    /// Release one recorder reference (FreeAc / disconnect of a
    /// recording AC).
    RemoveRecorder {
        /// Buffer-owning device index.
        device: usize,
    },
    /// Drop cached converters for a freed AC (`Some`) or a disconnected
    /// client (`None`) so a recreated AC starts with fresh codec state.
    ForgetAc {
        /// The client whose converters to drop.
        client: ClientId,
        /// The specific AC, or all of the client's.
        ac: Option<AcId>,
    },
    /// Enable or disable the pass-through pair (both endpoints are in
    /// this worker's group by construction).  Acked so the dispatcher can
    /// keep the classic path's synchronous cursor setup: the cursors must
    /// reflect device time *at the request*, not at some later drain.
    SetPassthrough {
        /// The requesting endpoint.
        device: usize,
        /// Its wired peer.
        peer: usize,
        /// Enable or disable.
        enable: bool,
        /// Ack channel.
        ack: Sender<()>,
    },
    /// Run the group's update task now and acknowledge (RunUpdate
    /// fan-out, keeping `ServerHandle::run_update` a full barrier).
    Update {
        /// Ack channel.
        ack: Sender<()>,
    },
    /// Exit the worker loop.
    Shutdown,
}

/// A device owned by a worker: its buffers plus the per-device state the
/// dispatcher's update task used to hold.
pub struct WorkerDevice {
    /// Index in the server's device table.
    pub index: usize,
    /// The buffering engine, moved out of the dispatcher.
    pub buffers: DeviceBuffers,
    /// Mirrored gain/enable state.
    pub control: Arc<DeviceControl>,
    /// Published tick counter.
    pub snapshot: Arc<AtomicU64>,
    /// Sample rate, for wake-up estimates.
    pub rate: u32,
    /// Owner channel count, for mono-lane frame math.
    pub channels: u8,
    /// Pass-through currently enabled.
    pub passthrough: bool,
    /// Pass-through peer device index.
    pub passthrough_peer: Option<usize>,
    /// Pass-through read cursor into the peer's record stream.
    pub pt_in: ATime,
    /// Pass-through write cursor into our play stream.
    pub pt_out: ATime,
}

/// A suspended sample request, retried on the worker's own schedule
/// (the classic path's `WakeBlocked` task, scoped to this worker).
struct PendingJob {
    sink: ReplySink,
    client: ClientId,
    ac: AcId,
    seq: u16,
    wake: Instant,
    op: PendingOp,
}

enum PendingOp {
    Play {
        device: usize,
        lane: Option<u8>,
        preempt: bool,
        start: ATime,
        /// Device-encoded frames with a consumed-bytes cursor: written
        /// exactly once across however many wake-ups it takes.
        frames: Vec<u8>,
        offset: usize,
        suppress_reply: bool,
    },
    Record {
        device: usize,
        lane: Option<u8>,
        start: ATime,
        nframes: u32,
        big_endian: bool,
        dst_enc: Encoding,
        record_gain_db: i32,
    },
}

/// The worker thread: drains jobs, runs the group's periodic update, and
/// retries suspended requests.
pub struct AudioWorker {
    rx: Receiver<AudioJob>,
    devices: Vec<WorkerDevice>,
    /// Device table index → position in `devices`.
    by_index: HashMap<usize, usize>,
    update_interval: Duration,
    stats: Arc<WorkerStats>,
    /// Completion notifications back into the dispatcher.
    events: Sender<ServerEvent>,
    /// Shared buffer pool: drained play payloads are recycled into it so
    /// a steady stream re-uses request storage across the thread boundary.
    pool: Arc<BufferPool>,
    pending: Vec<PendingJob>,
    /// Per-(client, AC) converters, keyed so stateful codecs (ADPCM)
    /// keep their predictor state exactly as the classic per-AC
    /// converters do.  The `(from, to)` pair detects AC retypes.
    play_convs: HashMap<(ClientId, AcId), Converter>,
    rec_convs: HashMap<(ClientId, AcId), Converter>,
    /// Reusable conversion scratch (the dispatcher's `conv_buf` idiom).
    conv_buf: Vec<u8>,
}

impl AudioWorker {
    /// Assembles a worker over `devices`, fed by `rx`.
    pub fn new(
        rx: Receiver<AudioJob>,
        devices: Vec<WorkerDevice>,
        update_interval: Duration,
        stats: Arc<WorkerStats>,
        events: Sender<ServerEvent>,
        pool: Arc<BufferPool>,
    ) -> AudioWorker {
        let by_index = devices
            .iter()
            .enumerate()
            .map(|(pos, d)| (d.index, pos))
            .collect();
        AudioWorker {
            rx,
            devices,
            by_index,
            update_interval,
            stats,
            events,
            pool,
            pending: Vec::new(),
            play_convs: HashMap::new(),
            rec_convs: HashMap::new(),
            conv_buf: Vec::new(),
        }
    }

    /// Runs until `Shutdown` or the dispatcher side hangs up.
    pub fn run(mut self) {
        self.publish_snapshots();
        let mut next_update = Instant::now() + self.update_interval;
        loop {
            let wake = self.pending.iter().map(|p| p.wake).min();
            let deadline = match wake {
                Some(w) => w.min(next_update),
                None => next_update,
            };
            let timeout = deadline.saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(timeout) {
                Ok(AudioJob::Shutdown) => break,
                Ok(job) => {
                    self.stats.jobs_processed.fetch_add(1, Ordering::Relaxed);
                    let t0 = af_dsp::kernels::cycles::timestamp();
                    let bytes = self.handle(job);
                    let spent = af_dsp::kernels::cycles::timestamp().wrapping_sub(t0);
                    self.stats.busy_cycles.fetch_add(spent, Ordering::Relaxed);
                    self.stats
                        .bytes_processed
                        .fetch_add(bytes as u64, Ordering::Relaxed);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            let now = Instant::now();
            if now >= next_update {
                // Count whole periods missed before this update started.
                let mut missed = 0u64;
                while next_update + self.update_interval <= now {
                    next_update += self.update_interval;
                    missed += 1;
                }
                next_update += self.update_interval;
                if missed > 0 {
                    self.stats
                        .update_overruns
                        .fetch_add(missed, Ordering::Relaxed);
                }
                let t0 = af_dsp::kernels::cycles::timestamp();
                self.run_group_update();
                // The classic update task retries every suspended request,
                // not just due ones (virtual clocks can advance device time
                // without wall time passing).
                self.retry_all();
                let spent = af_dsp::kernels::cycles::timestamp().wrapping_sub(t0);
                self.stats.busy_cycles.fetch_add(spent, Ordering::Relaxed);
            } else {
                self.retry_due(Instant::now());
            }
            self.publish_snapshots();
        }
    }

    /// Handles one job, returning the sample bytes it carried (play
    /// payloads as submitted, record requests as device bytes to read)
    /// for the worker's bytes-processed counter.
    fn handle(&mut self, job: AudioJob) -> usize {
        match job {
            AudioJob::Play {
                sink,
                client,
                ac,
                seq,
                device,
                lane,
                start,
                preempt,
                suppress_reply,
                swap_bytes,
                src_enc,
                play_gain_db,
                out_gain_db,
                out_enabled,
                data,
            } => {
                let bytes = data.len();
                self.handle_play(
                    sink,
                    client,
                    ac,
                    seq,
                    device,
                    lane,
                    start,
                    preempt,
                    suppress_reply,
                    swap_bytes,
                    src_enc,
                    play_gain_db,
                    out_gain_db,
                    out_enabled,
                    data,
                );
                bytes
            }
            AudioJob::Record {
                sink,
                client,
                ac,
                seq,
                device,
                lane,
                start,
                nframes,
                block,
                big_endian,
                dst_enc,
                record_gain_db,
                add_recorder,
                out_gain_db,
                out_enabled,
            } => {
                let bytes = self.by_index.get(&device).map_or(0, |&pos| {
                    self.devices[pos].buffers.frame_bytes() * nframes as usize
                });
                self.handle_record(
                    sink,
                    client,
                    ac,
                    seq,
                    device,
                    lane,
                    start,
                    nframes,
                    block,
                    big_endian,
                    dst_enc,
                    record_gain_db,
                    add_recorder,
                    out_gain_db,
                    out_enabled,
                );
                bytes
            }
            AudioJob::RemoveRecorder { device } => {
                if let Some(&pos) = self.by_index.get(&device) {
                    self.devices[pos].buffers.remove_recorder();
                }
                0
            }
            AudioJob::ForgetAc { client, ac } => {
                match ac {
                    Some(ac) => {
                        self.play_convs.remove(&(client, ac));
                        self.rec_convs.remove(&(client, ac));
                    }
                    None => {
                        self.play_convs.retain(|(c, _), _| *c != client);
                        self.rec_convs.retain(|(c, _), _| *c != client);
                    }
                }
                0
            }
            AudioJob::SetPassthrough {
                device,
                peer,
                enable,
                ack,
            } => {
                self.set_passthrough(device, peer, enable);
                // af-analyze: allow(blocking-in-reactor): completion ack on a rendezvous channel; the dispatcher is already waiting on it
                let _ = ack.send(());
                0
            }
            AudioJob::Update { ack } => {
                self.run_group_update();
                self.retry_all();
                self.publish_snapshots();
                // af-analyze: allow(blocking-in-reactor): completion ack on a rendezvous channel; the dispatcher is already waiting on it
                let _ = ack.send(());
                0
            }
            AudioJob::Shutdown => 0,
        }
    }

    /// Posts the per-client completion event so the dispatcher releases
    /// the client's request queue.
    fn done(&self, client: ClientId) {
        // af-analyze: allow(blocking-in-reactor): worker-done event; the queue is sized for the worker count and drained every dispatch turn
        let _ = self.events.send(ServerEvent::WorkerDone { id: client });
    }

    /// Fetches (or rebuilds, if the AC was retyped) the cached converter
    /// for `key`; `None` means the pair is an identity and conversion is
    /// skipped, exactly as the classic path skips identity ACs.
    fn converter(
        map: &mut HashMap<(ClientId, AcId), Converter>,
        key: (ClientId, AcId),
        from: Encoding,
        to: Encoding,
    ) -> Result<Option<&mut Converter>, ()> {
        if from == to {
            return Ok(None);
        }
        let stale = map
            .get(&key)
            .is_some_and(|c| c.from_encoding() != from || c.to_encoding() != to);
        if stale {
            map.remove(&key);
        }
        if let std::collections::hash_map::Entry::Vacant(e) = map.entry(key) {
            e.insert(Converter::new(from, to).map_err(|_| ())?);
        }
        Ok(map.get_mut(&key))
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_play(
        &mut self,
        sink: ReplySink,
        client: ClientId,
        ac: AcId,
        seq: u16,
        device: usize,
        lane: Option<u8>,
        start: ATime,
        preempt: bool,
        suppress_reply: bool,
        swap_bytes: bool,
        src_enc: Encoding,
        play_gain_db: i32,
        out_gain_db: i32,
        out_enabled: bool,
        mut data: Vec<u8>,
    ) {
        let Some(&pos) = self.by_index.get(&device) else {
            self.done(client);
            return;
        };
        if swap_bytes {
            crate::gain::swap_sample_bytes(src_enc, &mut data);
        }
        let dev_enc = self.devices[pos].buffers.encoding();
        match Self::converter(&mut self.play_convs, (client, ac), src_enc, dev_enc) {
            Ok(None) => {}
            Ok(Some(conv)) => {
                let mut converted = std::mem::take(&mut self.conv_buf);
                match conv.convert_into(&data, &mut converted) {
                    Ok(()) => {
                        std::mem::swap(&mut data, &mut converted);
                        self.conv_buf = converted;
                    }
                    Err(_) => {
                        self.conv_buf = converted;
                        sink.send_error(
                            seq,
                            ErrorCode::BadLength,
                            data.len() as u32,
                            Opcode::PlaySamples.to_wire(),
                        );
                        self.done(client);
                        return;
                    }
                }
            }
            Err(()) => {
                sink.send_error(seq, ErrorCode::BadMatch, 0, Opcode::PlaySamples.to_wire());
                self.done(client);
                return;
            }
        }
        crate::gain::apply_gain_bytes(dev_enc, &mut data, play_gain_db);
        let d = &mut self.devices[pos];
        let fb = match lane {
            Some(_) => d.buffers.frame_bytes() / d.channels.max(1) as usize,
            None => d.buffers.frame_bytes(),
        };
        if !data.len().is_multiple_of(fb) {
            sink.send_error(
                seq,
                ErrorCode::BadLength,
                data.len() as u32,
                Opcode::PlaySamples.to_wire(),
            );
            self.done(client);
            return;
        }
        let outcome = match lane {
            Some(ch) => d.buffers.write_play_channel(
                start,
                &data,
                ch,
                d.channels,
                preempt,
                out_gain_db,
                out_enabled,
            ),
            None => d
                .buffers
                .write_play(start, &data, preempt, out_gain_db, out_enabled),
        };
        if outcome.beyond_horizon > 0 {
            let consumed = (outcome.dropped_past + outcome.written) as usize * fb;
            let new_start = start + (outcome.dropped_past + outcome.written);
            let wake = wake_instant(d.rate, outcome.beyond_horizon);
            self.pending.push(PendingJob {
                sink,
                client,
                ac,
                seq,
                wake,
                op: PendingOp::Play {
                    device,
                    lane,
                    preempt,
                    start: new_start,
                    frames: data,
                    offset: consumed,
                    suppress_reply,
                },
            });
            return;
        }
        if !suppress_reply {
            let now = d.buffers.now();
            sink.send_reply(seq, &Reply::Time { time: now });
        }
        self.pool.recycle(data);
        self.done(client);
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_record(
        &mut self,
        sink: ReplySink,
        client: ClientId,
        ac: AcId,
        seq: u16,
        device: usize,
        lane: Option<u8>,
        start: ATime,
        nframes: u32,
        block: bool,
        big_endian: bool,
        dst_enc: Encoding,
        record_gain_db: i32,
        add_recorder: bool,
        out_gain_db: i32,
        out_enabled: bool,
    ) {
        let Some(&pos) = self.by_index.get(&device) else {
            self.done(client);
            return;
        };
        {
            let d = &mut self.devices[pos];
            if add_recorder {
                d.buffers.add_recorder();
            }
            let end = start + nframes;
            // Record update: make the buffer consistent if the request
            // touches the shaded region (§7.2).
            if end.is_after(d.buffers.recorded_until()) {
                d.buffers.update(out_gain_db, out_enabled);
            }
            if end.is_after(d.buffers.recorded_until()) {
                if block {
                    let remaining = (end - d.buffers.recorded_until()).max(1) as u32;
                    let wake = wake_instant(d.rate, remaining);
                    self.pending.push(PendingJob {
                        sink,
                        client,
                        ac,
                        seq,
                        wake,
                        op: PendingOp::Record {
                            device,
                            lane,
                            start,
                            nframes,
                            big_endian,
                            dst_enc,
                            record_gain_db,
                        },
                    });
                    return;
                }
                // Non-blocking: return whatever is available now.
                let available = (d.buffers.recorded_until() - start).max(0) as u32;
                let nframes = available.min(nframes);
                self.finish_record(
                    &sink,
                    client,
                    ac,
                    seq,
                    pos,
                    lane,
                    start,
                    nframes,
                    big_endian,
                    dst_enc,
                    record_gain_db,
                );
                self.done(client);
                return;
            }
        }
        self.finish_record(
            &sink,
            client,
            ac,
            seq,
            pos,
            lane,
            start,
            nframes,
            big_endian,
            dst_enc,
            record_gain_db,
        );
        self.done(client);
    }

    /// Reads, gains (or silences), converts and replies — the worker-side
    /// twin of the dispatcher's `finish_record`.  Input gain and
    /// enablement are read *now*, as the classic path does at completion.
    #[allow(clippy::too_many_arguments)]
    fn finish_record(
        &mut self,
        sink: &ReplySink,
        client: ClientId,
        ac: AcId,
        seq: u16,
        pos: usize,
        lane: Option<u8>,
        start: ATime,
        nframes: u32,
        big_endian: bool,
        dst_enc: Encoding,
        record_gain_db: i32,
    ) {
        let (mut raw, now, dev_enc) = {
            let d = &mut self.devices[pos];
            let raw = match lane {
                Some(ch) => d.buffers.read_rec_channel(start, nframes, ch, d.channels),
                None => d.buffers.read_rec(start, nframes),
            };
            let now = d.buffers.now();
            (raw, now, d.buffers.encoding())
        };
        let d = &self.devices[pos];
        let input_enabled = d.control.inputs_enabled.load(Ordering::Acquire) != 0;
        let input_gain = d.control.input_gain_db.load(Ordering::Acquire);
        if !input_enabled {
            af_dsp::silence::fill_silence(dev_enc, &mut raw);
        } else {
            crate::gain::apply_gain_bytes(dev_enc, &mut raw, input_gain + record_gain_db);
        }
        let mut out = std::mem::take(&mut self.conv_buf);
        match Self::converter(&mut self.rec_convs, (client, ac), dev_enc, dst_enc) {
            Ok(None) => {
                out.clear();
                out.extend_from_slice(&raw);
            }
            Ok(Some(conv)) => {
                if conv.convert_into(&raw, &mut out).is_err() {
                    out.clear();
                }
            }
            Err(()) => out.clear(),
        }
        if big_endian {
            crate::gain::swap_sample_bytes(dst_enc, &mut out);
        }
        let reply = Reply::Record {
            time: now,
            data: out,
        };
        sink.send_reply(seq, &reply);
        if let Reply::Record { data, .. } = reply {
            self.conv_buf = data;
        }
    }

    /// Retries every suspended request unconditionally (the update task's
    /// behavior), preserving suspension order.
    fn retry_all(&mut self) {
        let mut i = 0;
        while i < self.pending.len() {
            let p = self.pending.remove(i);
            if let Some(still) = self.retry_one(p) {
                self.pending.insert(i, still);
                i += 1;
            }
        }
    }

    /// Retries every suspended request whose wake-up has arrived,
    /// preserving suspension order.
    fn retry_due(&mut self, now: Instant) {
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].wake > now {
                i += 1;
                continue;
            }
            let p = self.pending.remove(i);
            if let Some(still) = self.retry_one(p) {
                self.pending.insert(i, still);
                i += 1;
            }
        }
    }

    /// One retry attempt; returns the job if it must stay suspended.
    fn retry_one(&mut self, p: PendingJob) -> Option<PendingJob> {
        let PendingJob {
            sink,
            client,
            ac,
            seq,
            wake: _,
            op,
        } = p;
        match op {
            PendingOp::Play {
                device,
                lane,
                preempt,
                start,
                frames,
                offset,
                suppress_reply,
            } => {
                let &pos = self.by_index.get(&device)?;
                let d = &mut self.devices[pos];
                let (out_gain_db, out_enabled) = d.control.output_state();
                let fb = match lane {
                    Some(_) => d.buffers.frame_bytes() / d.channels.max(1) as usize,
                    None => d.buffers.frame_bytes(),
                };
                let pending_bytes = &frames[offset..];
                let outcome = match lane {
                    Some(ch) => d.buffers.write_play_channel(
                        start,
                        pending_bytes,
                        ch,
                        d.channels,
                        preempt,
                        out_gain_db,
                        out_enabled,
                    ),
                    None => d.buffers.write_play(
                        start,
                        pending_bytes,
                        preempt,
                        out_gain_db,
                        out_enabled,
                    ),
                };
                let consumed = (outcome.dropped_past + outcome.written) as usize * fb;
                if outcome.beyond_horizon > 0 {
                    let new_start = start + (outcome.dropped_past + outcome.written);
                    let wake = wake_instant(d.rate, outcome.beyond_horizon);
                    return Some(PendingJob {
                        sink,
                        client,
                        ac,
                        seq,
                        wake,
                        op: PendingOp::Play {
                            device,
                            lane,
                            preempt,
                            start: new_start,
                            frames,
                            offset: offset + consumed,
                            suppress_reply,
                        },
                    });
                }
                if !suppress_reply {
                    let now = d.buffers.now();
                    sink.send_reply(seq, &Reply::Time { time: now });
                }
                self.pool.recycle(frames);
                self.done(client);
                None
            }
            PendingOp::Record {
                device,
                lane,
                start,
                nframes,
                big_endian,
                dst_enc,
                record_gain_db,
            } => {
                let &pos = self.by_index.get(&device)?;
                let end = start + nframes;
                let ready = {
                    let d = &mut self.devices[pos];
                    !end.is_after(d.buffers.recorded_until())
                };
                if ready {
                    self.finish_record(
                        &sink,
                        client,
                        ac,
                        seq,
                        pos,
                        lane,
                        start,
                        nframes,
                        big_endian,
                        dst_enc,
                        record_gain_db,
                    );
                    self.done(client);
                    None
                } else {
                    let d = &mut self.devices[pos];
                    let remaining = (end - d.buffers.recorded_until()).max(1) as u32;
                    let wake = wake_instant(d.rate, remaining);
                    Some(PendingJob {
                        sink,
                        client,
                        ac,
                        seq,
                        wake,
                        op: PendingOp::Record {
                            device,
                            lane,
                            start,
                            nframes,
                            big_endian,
                            dst_enc,
                            record_gain_db,
                        },
                    })
                }
            }
        }
    }

    /// The group's update task: per-device ring update with the mirrored
    /// gain state, then pass-through motion (§7.2, §7.4.1).
    fn run_group_update(&mut self) {
        for d in &mut self.devices {
            let (gain, enabled) = d.control.output_state();
            d.buffers.update(gain, enabled);
        }
        self.run_passthrough();
    }

    /// The dispatcher's `run_passthrough`, scoped to this group.
    fn run_passthrough(&mut self) {
        for i in 0..self.devices.len() {
            let (enabled, peer) = {
                let d = &self.devices[i];
                (d.passthrough, d.passthrough_peer)
            };
            let Some(peer) = peer else { continue };
            let Some(&j) = self.by_index.get(&peer) else {
                continue;
            };
            if !enabled || i == j {
                continue;
            }
            let (src, dst) = if i < j {
                let (a, b) = self.devices.split_at_mut(j);
                (&mut b[0], &mut a[i])
            } else {
                let (a, b) = self.devices.split_at_mut(i);
                (&mut a[j], &mut b[0])
            };
            let avail = src.buffers.recorded_until() - dst.pt_in;
            if avail <= 0 {
                continue;
            }
            let frames = (avail as u32).min(src.buffers.frames() / 2);
            let data = src.buffers.read_rec(dst.pt_in, frames);
            let (gain, out_enabled) = dst.control.output_state();
            dst.buffers
                .write_play(dst.pt_out, &data, false, gain, out_enabled);
            dst.pt_in += frames;
            dst.pt_out += frames;
        }
    }

    /// Mirrors the dispatcher's `h_passthrough` buffer work.
    fn set_passthrough(&mut self, device: usize, peer: usize, enable: bool) {
        let (Some(&pd), Some(&pp)) = (self.by_index.get(&device), self.by_index.get(&peer)) else {
            return;
        };
        for (a, b) in [(pd, pp), (pp, pd)] {
            if self.devices[a].passthrough == enable {
                continue;
            }
            let peer_rec = self.devices[b].buffers.recorded_until();
            let d = &mut self.devices[a];
            d.passthrough = enable;
            if enable {
                d.buffers.add_recorder();
                let lead = 800u32.min(d.buffers.frames() / 4);
                d.pt_out = d.buffers.now() + lead;
                d.pt_in = peer_rec;
            } else {
                d.buffers.remove_recorder();
            }
        }
        self.devices[pp].passthrough_peer = Some(device);
        self.devices[pd].passthrough_peer = Some(peer);
    }

    /// Publishes each device's current tick for lock-free `GetTime`.
    fn publish_snapshots(&mut self) {
        for d in &mut self.devices {
            let ticks = d.buffers.now().ticks();
            d.snapshot.store(u64::from(ticks), Ordering::Release);
        }
    }
}

/// Estimates when `frames` more frames will have elapsed at `rate`
/// (the dispatcher's `play_wake_instant`, using the worker's cached rate).
fn wake_instant(rate: u32, frames: u32) -> Instant {
    let secs = f64::from(frames) / f64::from(rate.max(1));
    Instant::now() + Duration::from_secs_f64(secs.max(0.001))
}

/// The dispatcher's handle for joining a worker at shutdown.
pub struct WorkerHandle {
    /// Job queue (for the final `Shutdown`).
    pub tx: Sender<AudioJob>,
    /// The worker thread.
    pub join: std::thread::JoinHandle<()>,
}
