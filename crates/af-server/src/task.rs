//! The task mechanism (§7.3.1).
//!
//! "Instead of using threads, we implemented a simple task mechanism which
//! allows procedures to be scheduled for execution at future times, outside
//! the main flow of control."  The dispatcher's main loop sleeps until the
//! earliest due task (its `select()` timeout) and then runs everything due:
//! the periodic update, and wake-ups for suspended clients.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

/// What a due task does.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TaskKind {
    /// Run the per-device update and reschedule (the `codecUpdateTask`
    /// analogue).
    Update,
    /// Re-check clients suspended on the given device (a blocked request
    /// may now complete).  Scoped per device so one device's wake-up does
    /// not re-walk every suspended client on every other device.
    WakeBlocked(af_proto::DeviceId),
}

/// A time-ordered queue of pending tasks.
#[derive(Default)]
pub struct TaskQueue {
    heap: BinaryHeap<Reverse<(Instant, u64, TaskKind)>>,
    counter: u64,
}

impl TaskQueue {
    /// Creates an empty queue.
    pub fn new() -> TaskQueue {
        TaskQueue::default()
    }

    /// Schedules `kind` to run at `at` (the `AddTask` analogue).
    pub fn schedule(&mut self, at: Instant, kind: TaskKind) {
        self.counter += 1;
        self.heap.push(Reverse((at, self.counter, kind)));
    }

    /// The earliest deadline, if any task is pending.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.heap.peek().map(|Reverse((at, _, _))| *at)
    }

    /// Pops every task due at or before `now`.
    pub fn pop_due(&mut self, now: Instant) -> Vec<TaskKind> {
        let mut due = Vec::new();
        while let Some(Reverse((at, _, _))) = self.heap.peek() {
            if *at > now {
                break;
            }
            if let Some(Reverse((_, _, kind))) = self.heap.pop() {
                due.push(kind);
            }
        }
        due
    }

    /// Number of pending tasks.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no tasks are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = TaskQueue::new();
        let t0 = Instant::now();
        q.schedule(t0 + Duration::from_millis(20), TaskKind::WakeBlocked(0));
        q.schedule(t0 + Duration::from_millis(10), TaskKind::Update);
        assert_eq!(q.next_deadline(), Some(t0 + Duration::from_millis(10)));

        // Nothing due yet.
        assert!(q.pop_due(t0).is_empty());
        assert_eq!(q.len(), 2);

        let due = q.pop_due(t0 + Duration::from_millis(15));
        assert_eq!(due, vec![TaskKind::Update]);

        let due = q.pop_due(t0 + Duration::from_millis(25));
        assert_eq!(due, vec![TaskKind::WakeBlocked(0)]);
        assert!(q.is_empty());
        assert_eq!(q.next_deadline(), None);
    }

    #[test]
    fn equal_deadlines_pop_in_insertion_order() {
        let mut q = TaskQueue::new();
        let t = Instant::now();
        q.schedule(t, TaskKind::WakeBlocked(3));
        q.schedule(t, TaskKind::Update);
        let due = q.pop_due(t);
        assert_eq!(due, vec![TaskKind::WakeBlocked(3), TaskKind::Update]);
    }

    #[test]
    fn wake_blocked_is_scoped_per_device() {
        let mut q = TaskQueue::new();
        let t = Instant::now();
        q.schedule(t, TaskKind::WakeBlocked(1));
        q.schedule(t, TaskKind::WakeBlocked(2));
        let due = q.pop_due(t);
        assert_eq!(due, vec![TaskKind::WakeBlocked(1), TaskKind::WakeBlocked(2)]);
    }
}
