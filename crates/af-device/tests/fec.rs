//! FEC recovery pinned bit-exact under *every* loss pattern.
//!
//! The parity code's contract is absolute: any combination of up to `m`
//! erased shards per group — data, parity, or a mix — reconstructs the
//! original payload stream byte for byte.  These tests enumerate the
//! complete loss-pattern space for a set of configurations, then fuzz
//! random configurations, payload shapes, and erasure masks on top.

use af_device::fec::{FecConfig, FecDecoder, FecEncoder, FecFrame};
use proptest::prelude::*;

/// Deterministic payload bytes so failures reproduce.
fn payload(seed: u64, group: usize, index: usize, len: usize) -> Vec<u8> {
    let mut state = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(group as u64)
        .wrapping_mul(0x2545_F491_4F6C_DD1D)
        .wrapping_add(index as u64);
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 24) as u8
        })
        .collect()
}

/// Encodes `groups` full groups, erases each group's shards named by its
/// mask (bit `i` of `masks[g]` = in-group shard index `i`), decodes what
/// survives, and returns the delivered payload stream.
fn run_with_losses(cfg: FecConfig, payloads: &[Vec<u8>], masks: &[u32]) -> Vec<Vec<u8>> {
    let mut enc = FecEncoder::new(cfg);
    let mut frames: Vec<Vec<u8>> = Vec::new();
    for p in payloads {
        frames.extend(enc.push(p));
    }
    frames.extend(enc.flush());

    let per_group = cfg.k + cfg.m;
    let mut dec = FecDecoder::new();
    let mut delivered = Vec::new();
    for (n, bytes) in frames.iter().enumerate() {
        let (group, slot) = (n / per_group, n % per_group);
        if masks.get(group).is_some_and(|mask| mask >> slot & 1 == 1) {
            continue; // Erased on the wire.
        }
        let frame = FecFrame::decode(bytes).expect("encoder output decodes");
        delivered.extend(dec.push(frame));
    }
    delivered
}

/// Sorts a payload stream for order-insensitive comparison.  The decoder
/// delivers in arrival-then-recovery order — payloads are self-describing
/// packets, so the contract is the exact *set* of bytes, not the order.
fn sorted(mut payloads: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
    payloads.sort();
    payloads
}

/// Every subset of up to `m` erasures out of `k + m` shards, as bitmasks.
fn all_loss_masks(cfg: FecConfig) -> Vec<u32> {
    let shards = cfg.k + cfg.m;
    (0u32..1 << shards)
        .filter(|mask| mask.count_ones() as usize <= cfg.m)
        .collect()
}

#[test]
fn every_loss_pattern_up_to_m_recovers_bit_exact() {
    for (k, m) in [(1, 1), (2, 1), (2, 2), (4, 2), (3, 3), (8, 2), (5, 4)] {
        let cfg = FecConfig::new(k, m);
        let payloads: Vec<Vec<u8>> = (0..k)
            .map(|i| payload(7, 0, i, 20 + 7 * i)) // Distinct lengths too.
            .collect();
        for mask in all_loss_masks(cfg) {
            let got = run_with_losses(cfg, &payloads, &[mask]);
            assert_eq!(
                sorted(got),
                sorted(payloads.clone()),
                "k={k} m={m} mask={mask:#b}: stream not recovered bit-exact"
            );
        }
    }
}

#[test]
fn one_pattern_beyond_m_is_not_silently_wrong() {
    // m+1 data erasures are unrecoverable: the survivors must still come
    // through exact, and nothing fabricated may appear in their place.
    let cfg = FecConfig::new(4, 2);
    let payloads: Vec<Vec<u8>> = (0..4).map(|i| payload(11, 0, i, 32)).collect();
    let got = run_with_losses(cfg, &payloads, &[0b000_0111]); // Data 0,1,2 gone.
    assert_eq!(got, vec![payloads[3].clone()]);
}

#[test]
fn independent_masks_across_consecutive_groups() {
    // Each group recovers on its own: rotate a burst-of-m mask through
    // three groups and require the whole stream back.
    let cfg = FecConfig::new(4, 2);
    let payloads: Vec<Vec<u8>> = (0..12)
        .map(|i| payload(23, i / 4, i % 4, 48))
        .collect();
    let masks = [0b00_0011u32, 0b00_1100, 0b11_0000];
    let got = run_with_losses(cfg, &payloads, &masks);
    assert_eq!(sorted(got), sorted(payloads));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Random config, payload shapes, and ≤ m erasure mask: bit-exact.
    #[test]
    fn random_config_and_mask_recovers(
        k in 1usize..9,
        m in 1usize..5,
        seed in any::<u64>(),
        mask_bits in any::<u32>(),
        base_len in 1usize..120,
    ) {
        let cfg = FecConfig::new(k, m);
        let payloads: Vec<Vec<u8>> = (0..k)
            .map(|i| payload(seed, 0, i, base_len + i))
            .collect();
        // Keep the first ≤ m set bits among the group's shard positions.
        let shards = (cfg.k + cfg.m) as u32;
        let mut mask = 0u32;
        let mut kept = 0;
        for bit in 0..shards {
            if kept < cfg.m && mask_bits >> bit & 1 == 1 {
                mask |= 1 << bit;
                kept += 1;
            }
        }
        let got = run_with_losses(cfg, &payloads, &[mask]);
        prop_assert_eq!(sorted(got), sorted(payloads));
    }

    /// Short tail groups closed by `flush` obey the same contract.
    #[test]
    fn random_tail_group_recovers(
        tail in 1usize..4,
        seed in any::<u64>(),
        drop_slot in 0usize..6,
    ) {
        let cfg = FecConfig::new(4, 2);
        let payloads: Vec<Vec<u8>> = (0..tail)
            .map(|i| payload(seed, 0, i, 40))
            .collect();
        let mut enc = FecEncoder::new(cfg);
        let mut frames: Vec<Vec<u8>> = Vec::new();
        for p in &payloads {
            frames.extend(enc.push(p));
        }
        frames.extend(enc.flush());
        // The tail group really is tail + m frames, and any single loss
        // (the parity declares the short k) still recovers.
        prop_assert_eq!(frames.len(), tail + cfg.m);
        let mut dec = FecDecoder::new();
        let mut got = Vec::new();
        for (n, bytes) in frames.iter().enumerate() {
            if n == drop_slot % (tail + cfg.m) {
                continue;
            }
            let frame = FecFrame::decode(bytes).expect("encoder output decodes");
            got.extend(dec.push(frame));
        }
        prop_assert_eq!(sorted(got), sorted(payloads));
    }
}
