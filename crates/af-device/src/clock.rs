//! Sample clocks.
//!
//! "The underlying implementation of the audio device clock is the
//! oscillator that controls the hardware sample rate" (§2.1).  Our
//! substitute oscillators come in two forms: a monotonic real-time clock
//! scaled by the sample rate, and a virtual clock advanced explicitly by
//! tests and deterministic benchmarks.  Both support a configurable rate
//! error in parts per million, because real crystals "have tolerances of
//! perhaps 100 parts per million" (§8.3) and that drift is behaviour the
//! system must handle.

use af_time::ATime;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A device sample clock: a 32-bit counter incrementing once per sample
/// period.
pub trait Clock: Send + Sync {
    /// The current device time.
    fn now(&self) -> ATime;

    /// The nominal sample rate in Hz.
    fn nominal_rate(&self) -> u32;

    /// The true rate in Hz, including any configured error.
    fn true_rate(&self) -> f64 {
        f64::from(self.nominal_rate())
    }
}

/// A shareable clock handle.
pub type SharedClock = Arc<dyn Clock>;

/// A real-time clock: device time follows the process monotonic clock.
///
/// This stands in for a free-running hardware oscillator when the server is
/// used interactively or benchmarked against wall-clock time.
#[derive(Debug)]
pub struct SystemClock {
    rate: u32,
    true_rate: f64,
    epoch: Instant,
}

impl SystemClock {
    /// Creates a clock at exactly `rate` Hz.
    pub fn new(rate: u32) -> SystemClock {
        Self::with_drift(rate, 0.0)
    }

    /// Creates a clock whose true rate deviates by `ppm` parts per million.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is zero.
    pub fn with_drift(rate: u32, ppm: f64) -> SystemClock {
        assert!(rate > 0, "sample rate must be positive");
        SystemClock {
            rate,
            true_rate: f64::from(rate) * (1.0 + ppm * 1e-6),
            epoch: Instant::now(),
        }
    }
}

impl Clock for SystemClock {
    fn now(&self) -> ATime {
        let secs = self.epoch.elapsed().as_secs_f64();
        ATime::new((secs * self.true_rate) as u64 as u32)
    }

    fn nominal_rate(&self) -> u32 {
        self.rate
    }

    fn true_rate(&self) -> f64 {
        self.true_rate
    }
}

/// A manually advanced clock for deterministic tests.
///
/// Time advances only when [`VirtualClock::advance`] is called.  A drift in
/// ppm scales advances, so two virtual clocks stepped by the same nominal
/// amount accumulate a controlled skew — exactly the scenario `apass`
/// resynchronizes against.
#[derive(Debug)]
pub struct VirtualClock {
    rate: u32,
    true_rate: f64,
    /// Accumulated true ticks, in fixed point with 32 fractional bits so
    /// fractional drift accumulates exactly.
    ticks_fp: AtomicU64,
    /// Drift multiplier in the same fixed point.
    scale_fp: u64,
}

impl VirtualClock {
    /// Creates a clock at exactly `rate` Hz, starting at time 0.
    pub fn new(rate: u32) -> VirtualClock {
        Self::with_drift(rate, 0.0)
    }

    /// Creates a clock whose advances are scaled by `1 + ppm·10⁻⁶`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is zero or the drift is not finite.
    pub fn with_drift(rate: u32, ppm: f64) -> VirtualClock {
        assert!(rate > 0, "sample rate must be positive");
        assert!(ppm.is_finite(), "drift must be finite");
        let scale = 1.0 + ppm * 1e-6;
        VirtualClock {
            rate,
            true_rate: f64::from(rate) * scale,
            ticks_fp: AtomicU64::new(0),
            scale_fp: (scale * 4_294_967_296.0) as u64,
        }
    }

    /// Advances the clock by `nominal_samples` nominal sample periods.
    ///
    /// With drift configured, the counter actually advances by the scaled
    /// amount (rounded down to whole ticks, with the fraction carried).
    pub fn advance(&self, nominal_samples: u32) {
        let delta = u64::from(nominal_samples).wrapping_mul(self.scale_fp);
        self.ticks_fp.fetch_add(delta, Ordering::SeqCst);
    }

    /// Advances by a duration at the nominal rate.
    pub fn advance_seconds(&self, seconds: f64) {
        self.advance((seconds * f64::from(self.rate)).round() as u32);
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> ATime {
        ATime::new((self.ticks_fp.load(Ordering::SeqCst) >> 32) as u32)
    }

    fn nominal_rate(&self) -> u32 {
        self.rate
    }

    fn true_rate(&self) -> f64 {
        self.true_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_advances_exactly() {
        let c = VirtualClock::new(8000);
        assert_eq!(c.now(), ATime::ZERO);
        c.advance(100);
        assert_eq!(c.now(), ATime::new(100));
        c.advance_seconds(1.0);
        assert_eq!(c.now(), ATime::new(8100));
    }

    #[test]
    fn virtual_clock_wraps() {
        let c = VirtualClock::new(8000);
        for _ in 0..17 {
            c.advance(0xFFFF_FFFF);
            c.advance(1); // Whole 2^32 per pair of calls.
        }
        assert_eq!(c.now(), ATime::ZERO);
        c.advance(5);
        assert_eq!(c.now(), ATime::new(5));
    }

    #[test]
    fn drift_accumulates() {
        // +100 ppm: after 1 million nominal samples, 100 extra ticks.
        let fast = VirtualClock::with_drift(8000, 100.0);
        let exact = VirtualClock::new(8000);
        for _ in 0..100 {
            fast.advance(10_000);
            exact.advance(10_000);
        }
        let skew = fast.now() - exact.now();
        assert!((99..=101).contains(&skew), "skew={skew}");
    }

    #[test]
    fn negative_drift() {
        let slow = VirtualClock::with_drift(8000, -100.0);
        slow.advance(1_000_000);
        let t = slow.now();
        assert!((999_899..=999_901).contains(&t.ticks()), "t={t}");
    }

    #[test]
    fn system_clock_monotone_and_ratelike() {
        let c = SystemClock::new(1_000_000); // 1 MHz for test speed.
        let a = c.now();
        std::thread::sleep(std::time::Duration::from_millis(20));
        let b = c.now();
        let d = b - a;
        assert!(d > 10_000, "advanced only {d} ticks");
        assert!(d < 1_000_000, "advanced too fast: {d}");
    }

    #[test]
    fn rates_reported() {
        let c = SystemClock::with_drift(8000, 125.0);
        assert_eq!(c.nominal_rate(), 8000);
        assert!((c.true_rate() - 8001.0).abs() < 1e-9);
    }
}
