//! The LineServer: a detached UDP audio peripheral (§4.4, §7.4.3).
//!
//! The real LineServer was a Motorola 68302 Ethernet box with an 8 kHz ISDN
//! CODEC; the AudioFile server for it (`Als`) ran on a nearby workstation
//! and drove the hardware with a private UDP protocol of six packet types.
//! Request and reply packets share one format — a header of sequence number,
//! audio time, function code, and parameter, followed by data bytes — and
//! the LineServer *only* sends packets as replies to requests.
//!
//! [`LineServerFirmware`] reproduces the firmware: small (2048-sample)
//! play/record buffers, interrupt-driven sample movement (simulated by
//! servicing a virtual codec on every poll), and a request loop over a real
//! UDP socket.  [`LineServerLink`] is the workstation side used by the
//! `Als`-style device backend.

use crate::clock::SharedClock;
use crate::hardware::{HwConfig, VirtualAudioHw};
use crate::io::{SampleSink, SampleSource};
use af_time::ATime;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// LineServer buffer size: 2048 samples, "1/4 second at 8 kHz".
pub const LS_BUFFER_SAMPLES: u32 = 2048;

/// Number of device registers (gains, config).
pub const LS_NUM_REGS: usize = 16;

/// Register index: output gain.
pub const LS_REG_OUTPUT_GAIN: u8 = 0;
/// Register index: input gain.
pub const LS_REG_INPUT_GAIN: u8 = 1;

/// The six packet function codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum LsFunction {
    /// Play samples (data = µ-law samples, `time` = start time).
    Play = 1,
    /// Record samples (`aux` = sample count; reply data = samples).
    Record = 2,
    /// Read a CODEC register (`param` = index; reply `aux` = value).
    ReadReg = 3,
    /// Write a CODEC register (`param` = index, `aux` = value).
    WriteReg = 4,
    /// Loopback, for testing: the reply echoes the request.
    Loopback = 5,
    /// Reset: clear buffers and registers.
    Reset = 6,
}

impl LsFunction {
    fn from_wire(v: u8) -> Option<LsFunction> {
        match v {
            1 => Some(LsFunction::Play),
            2 => Some(LsFunction::Record),
            3 => Some(LsFunction::ReadReg),
            4 => Some(LsFunction::WriteReg),
            5 => Some(LsFunction::Loopback),
            6 => Some(LsFunction::Reset),
            _ => None,
        }
    }
}

/// One LineServer packet; requests and replies share this format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LsPacket {
    /// Sequence number; replies echo it.
    pub seq: u32,
    /// Audio device time (request: start time; reply: current time).
    pub time: ATime,
    /// Function code.
    pub function: LsFunction,
    /// Small parameter (register index).
    pub param: u8,
    /// Auxiliary 16-bit parameter (lengths, register values).
    pub aux: u16,
    /// Data bytes.
    pub data: Vec<u8>,
}

impl LsPacket {
    /// Header size in bytes.
    pub const HEADER: usize = 12;

    /// Encodes the packet (fields little-endian; this private protocol has a
    /// fixed order, unlike the client protocol).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::HEADER + self.data.len());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.time.ticks().to_le_bytes());
        out.push(self.function as u8);
        out.push(self.param);
        out.extend_from_slice(&self.aux.to_le_bytes());
        out.extend_from_slice(&self.data);
        out
    }

    /// Decodes a packet, or `None` if malformed.
    pub fn decode(bytes: &[u8]) -> Option<LsPacket> {
        if bytes.len() < Self::HEADER {
            return None;
        }
        let seq = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
        let time = ATime::new(u32::from_le_bytes(bytes[4..8].try_into().ok()?));
        let function = LsFunction::from_wire(bytes[8])?;
        let param = bytes[9];
        let aux = u16::from_le_bytes(bytes[10..12].try_into().ok()?);
        Some(LsPacket {
            seq,
            time,
            function,
            param,
            aux,
            data: bytes[Self::HEADER..].to_vec(),
        })
    }
}

/// The simulated LineServer box.
pub struct LineServerFirmware {
    socket: UdpSocket,
    hw: VirtualAudioHw,
    regs: [u16; LS_NUM_REGS],
    stop: Arc<AtomicBool>,
}

impl LineServerFirmware {
    /// Boots a LineServer on an ephemeral localhost UDP port.
    ///
    /// The 8 kHz codec runs on `clock`; `sink`/`source` are its audio
    /// endpoints.  Returns the firmware and its address.
    pub fn boot(
        clock: SharedClock,
        sink: Box<dyn SampleSink>,
        source: Box<dyn SampleSource>,
    ) -> io::Result<(LineServerFirmware, SocketAddr)> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        socket.set_read_timeout(Some(Duration::from_millis(5)))?;
        let addr = socket.local_addr()?;
        let cfg = HwConfig {
            encoding: af_dsp::Encoding::Mu255,
            rate: 8000,
            channels: 1,
            ring_frames: LS_BUFFER_SAMPLES,
        };
        Ok((
            LineServerFirmware {
                socket,
                hw: VirtualAudioHw::new(cfg, clock, sink, source),
                regs: [0; LS_NUM_REGS],
                stop: Arc::new(AtomicBool::new(false)),
            },
            addr,
        ))
    }

    /// A handle that stops the firmware loop when set.
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Runs the firmware loop until stopped: the "network thread" of the
    /// real firmware, with the "update thread" folded into each iteration.
    pub fn run(mut self) {
        let mut buf = vec![0u8; 65_536];
        while !self.stop.load(Ordering::Relaxed) {
            // Interrupt-driven sample movement, batched.
            self.hw.service();
            match self.socket.recv_from(&mut buf) {
                Ok((n, peer)) => {
                    if let Some(req) = LsPacket::decode(&buf[..n]) {
                        let reply = self.process(req);
                        let _ = self.socket.send_to(&reply.encode(), peer);
                    }
                    // Malformed packets are dropped silently, as firmware
                    // would.
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(_) => break,
            }
        }
    }

    /// Processes one request into its reply.
    pub fn process(&mut self, req: LsPacket) -> LsPacket {
        let now = self.hw.service();
        let mut reply = LsPacket {
            seq: req.seq,
            time: now,
            function: req.function,
            param: req.param,
            aux: req.aux,
            data: Vec::new(),
        };
        match req.function {
            LsFunction::Play => {
                self.hw.write_play(req.time, &req.data);
            }
            LsFunction::Record => {
                let n = u32::from(req.aux).min(LS_BUFFER_SAMPLES);
                let mut data = vec![0u8; n as usize];
                self.hw.read_rec(req.time, &mut data);
                reply.data = data;
            }
            LsFunction::ReadReg => {
                reply.aux = self
                    .regs
                    .get(req.param as usize)
                    .copied()
                    .unwrap_or_default();
            }
            LsFunction::WriteReg => {
                if let Some(r) = self.regs.get_mut(req.param as usize) {
                    *r = req.aux;
                }
            }
            LsFunction::Loopback => {
                reply.data = req.data;
            }
            LsFunction::Reset => {
                self.regs = [0; LS_NUM_REGS];
            }
        }
        reply
    }
}

/// The workstation side of the private protocol, used by the `Als` backend.
pub struct LineServerLink {
    socket: UdpSocket,
    next_seq: u32,
    /// `(local instant, remote time)` of the last reply, for time estimates.
    last_observation: Option<(std::time::Instant, ATime)>,
}

impl LineServerLink {
    /// Connects to a LineServer at `addr`.
    pub fn connect(addr: SocketAddr) -> io::Result<LineServerLink> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        socket.connect(addr)?;
        socket.set_read_timeout(Some(Duration::from_millis(100)))?;
        Ok(LineServerLink {
            socket,
            next_seq: 1,
            last_observation: None,
        })
    }

    /// Sends one request and waits for its reply.
    ///
    /// Play and record are *not* retried ("by then, it is probably too late
    /// anyway"); pass `retries > 0` only for register operations.
    pub fn transact(&mut self, mut req: LsPacket, retries: u32) -> io::Result<LsPacket> {
        req.seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        let encoded = req.encode();
        let mut attempts = 0;
        loop {
            self.socket.send(&encoded)?;
            let mut buf = vec![0u8; 65_536];
            match self.socket.recv(&mut buf) {
                Ok(n) => {
                    if let Some(reply) = LsPacket::decode(&buf[..n]) {
                        if reply.seq == req.seq {
                            self.last_observation = Some((std::time::Instant::now(), reply.time));
                            return Ok(reply);
                        }
                        // Stale reply from a timed-out earlier exchange:
                        // keep waiting within this attempt.
                        continue;
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if attempts >= retries {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "LineServer did not reply",
                        ));
                    }
                    attempts += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Estimates the LineServer's current device time from the time stamp of
    /// the last reply and the local elapsed time (§7.4.3).
    pub fn estimate_time(&self, rate: u32) -> Option<ATime> {
        let (at, remote) = self.last_observation?;
        let elapsed = at.elapsed().as_secs_f64();
        Some(remote + (elapsed * f64::from(rate)) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::io::{CaptureSink, ToneSource};

    fn packet(function: LsFunction) -> LsPacket {
        LsPacket {
            seq: 7,
            time: ATime::new(100),
            function,
            param: 2,
            aux: 34,
            data: vec![1, 2, 3],
        }
    }

    #[test]
    fn packet_round_trip() {
        for f in [
            LsFunction::Play,
            LsFunction::Record,
            LsFunction::ReadReg,
            LsFunction::WriteReg,
            LsFunction::Loopback,
            LsFunction::Reset,
        ] {
            let p = packet(f);
            assert_eq!(LsPacket::decode(&p.encode()), Some(p));
        }
        assert_eq!(LsPacket::decode(&[0u8; 4]), None);
        let mut bad = packet(LsFunction::Play).encode();
        bad[8] = 99; // Unknown function.
        assert_eq!(LsPacket::decode(&bad), None);
    }

    #[test]
    fn firmware_processes_all_functions() {
        let clock = Arc::new(VirtualClock::new(8000));
        let (sink, capture) = CaptureSink::new(1 << 16);
        let (mut fw, _addr) = LineServerFirmware::boot(
            clock.clone(),
            Box::new(sink),
            Box::new(ToneSource::ulaw(440.0, 8000.0, 10_000.0)),
        )
        .unwrap();

        // Write and read back a register.
        let r = fw.process(LsPacket {
            seq: 1,
            time: ATime::ZERO,
            function: LsFunction::WriteReg,
            param: LS_REG_OUTPUT_GAIN,
            aux: 42,
            data: vec![],
        });
        assert_eq!(r.seq, 1);
        let r = fw.process(LsPacket {
            seq: 2,
            time: ATime::ZERO,
            function: LsFunction::ReadReg,
            param: LS_REG_OUTPUT_GAIN,
            aux: 0,
            data: vec![],
        });
        assert_eq!(r.aux, 42);

        // Loopback echoes data.
        let r = fw.process(LsPacket {
            seq: 3,
            time: ATime::ZERO,
            function: LsFunction::Loopback,
            param: 0,
            aux: 0,
            data: vec![9, 9, 9],
        });
        assert_eq!(r.data, vec![9, 9, 9]);

        // Play at t=10, advance, verify the sink heard it.
        fw.process(LsPacket {
            seq: 4,
            time: ATime::new(10),
            function: LsFunction::Play,
            param: 0,
            aux: 0,
            data: vec![0x21; 20],
        });
        clock.advance(100);
        fw.hw.service();
        let cap = capture.lock();
        assert_eq!(&cap[10..30], &[0x21; 20][..]);
        drop(cap);

        // Record from the tone source.
        clock.advance(100);
        let r = fw.process(LsPacket {
            seq: 5,
            time: ATime::new(120),
            function: LsFunction::Record,
            param: 0,
            aux: 64,
            data: vec![],
        });
        assert_eq!(r.data.len(), 64);
        assert!(r.data.iter().any(|&b| b != af_dsp::g711::ULAW_SILENCE));

        // Reset clears registers.
        fw.process(LsPacket {
            seq: 6,
            time: ATime::ZERO,
            function: LsFunction::Reset,
            param: 0,
            aux: 0,
            data: vec![],
        });
        let r = fw.process(LsPacket {
            seq: 7,
            time: ATime::ZERO,
            function: LsFunction::ReadReg,
            param: LS_REG_OUTPUT_GAIN,
            aux: 0,
            data: vec![],
        });
        assert_eq!(r.aux, 0);
    }

    #[test]
    fn link_transacts_over_udp() {
        let clock = Arc::new(VirtualClock::new(8000));
        let (fw, addr) = LineServerFirmware::boot(
            clock.clone(),
            Box::new(crate::io::NullSink),
            Box::new(crate::io::SilenceSource::new(0xFF)),
        )
        .unwrap();
        let stop = fw.stop_handle();
        let handle = std::thread::spawn(move || fw.run());

        let mut link = LineServerLink::connect(addr).unwrap();
        clock.advance(500);
        let reply = link
            .transact(
                LsPacket {
                    seq: 0,
                    time: ATime::ZERO,
                    function: LsFunction::Loopback,
                    param: 0,
                    aux: 0,
                    data: vec![1, 2, 3, 4],
                },
                3,
            )
            .unwrap();
        assert_eq!(reply.data, vec![1, 2, 3, 4]);
        assert!(reply.time.ticks() >= 500);
        assert!(link.estimate_time(8000).is_some());

        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }
}
