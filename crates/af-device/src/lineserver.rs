//! The LineServer: a detached UDP audio peripheral (§4.4, §7.4.3).
//!
//! The real LineServer was a Motorola 68302 Ethernet box with an 8 kHz ISDN
//! CODEC; the AudioFile server for it (`Als`) ran on a nearby workstation
//! and drove the hardware with a private UDP protocol of six packet types.
//! Request and reply packets share one format — a header of sequence number,
//! audio time, function code, and parameter, followed by data bytes — and
//! the LineServer *only* sends packets as replies to requests.
//!
//! [`LineServerFirmware`] reproduces the firmware: small (2048-sample)
//! play/record buffers, interrupt-driven sample movement (simulated by
//! servicing a virtual codec on every poll), and a request loop over a real
//! UDP socket.  [`LineServerLink`] is the workstation side used by the
//! `Als`-style device backend.

use crate::clock::SharedClock;
use crate::fec::{FecConfig, FecDecoder, FecDecoderStats, FecEncoder, FecFrame};
use crate::hardware::{HwConfig, VirtualAudioHw};
use crate::io::{SampleSink, SampleSource};
use af_time::ATime;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// LineServer buffer size: 2048 samples, "1/4 second at 8 kHz".
pub const LS_BUFFER_SAMPLES: u32 = 2048;

/// How many recent replies the firmware keeps for answering retransmitted
/// requests without re-executing them (at-most-once semantics).
pub const LS_REPLY_CACHE: usize = 32;

/// Number of device registers (gains, config).
pub const LS_NUM_REGS: usize = 16;

/// Register index: output gain.
pub const LS_REG_OUTPUT_GAIN: u8 = 0;
/// Register index: input gain.
pub const LS_REG_INPUT_GAIN: u8 = 1;
/// Register index: FEC group shape, `(k << 8) | m`; zero disables FEC.
/// Written by the workstation at link setup; while non-zero the firmware
/// wraps `Record` replies in FEC frames and accepts FEC-framed one-way
/// requests (`Play`) from the peer.
pub const LS_REG_FEC: u8 = 2;

/// How many distinct peers the firmware keeps FEC / sequence state for
/// before recycling (a real box served exactly one workstation).
const LS_MAX_PEERS: usize = 16;

/// How many out-of-band audio packets (stale or FEC-recovered `Record`
/// replies) a link queues for the backend before dropping the oldest.
const LINK_AUDIO_QUEUE: usize = 64;

/// Why a [`LineServerLink`] transaction failed.
#[derive(Debug)]
pub enum LinkError {
    /// The LineServer never replied: every attempt (original send plus
    /// retransmissions) timed out.  The link should be treated as down
    /// and the backend should free-run rather than keep blocking on it.
    Down {
        /// Total attempts made before giving up.
        attempts: u32,
    },
    /// The local socket failed outright (not a timeout).
    Io(io::Error),
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Down { attempts } => {
                write!(f, "LineServer link down: no reply after {attempts} attempts")
            }
            LinkError::Io(e) => write!(f, "LineServer link I/O error: {e}"),
        }
    }
}

impl std::error::Error for LinkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LinkError::Down { .. } => None,
            LinkError::Io(e) => Some(e),
        }
    }
}

impl From<io::Error> for LinkError {
    fn from(e: io::Error) -> LinkError {
        LinkError::Io(e)
    }
}

/// The six packet function codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum LsFunction {
    /// Play samples (data = µ-law samples, `time` = start time).
    Play = 1,
    /// Record samples (`aux` = sample count; reply data = samples).
    Record = 2,
    /// Read a CODEC register (`param` = index; reply `aux` = value).
    ReadReg = 3,
    /// Write a CODEC register (`param` = index, `aux` = value).
    WriteReg = 4,
    /// Loopback, for testing: the reply echoes the request.
    Loopback = 5,
    /// Reset: clear buffers and registers.
    Reset = 6,
}

impl LsFunction {
    fn from_wire(v: u8) -> Option<LsFunction> {
        match v {
            1 => Some(LsFunction::Play),
            2 => Some(LsFunction::Record),
            3 => Some(LsFunction::ReadReg),
            4 => Some(LsFunction::WriteReg),
            5 => Some(LsFunction::Loopback),
            6 => Some(LsFunction::Reset),
            _ => None,
        }
    }
}

/// One LineServer packet; requests and replies share this format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LsPacket {
    /// Sequence number; replies echo it.
    pub seq: u32,
    /// Audio device time (request: start time; reply: current time).
    pub time: ATime,
    /// Function code.
    pub function: LsFunction,
    /// Small parameter (register index).
    pub param: u8,
    /// Auxiliary 16-bit parameter (lengths, register values).
    pub aux: u16,
    /// Data bytes.
    pub data: Vec<u8>,
}

impl LsPacket {
    /// Header size in bytes.
    pub const HEADER: usize = 12;

    /// Encodes the packet (fields little-endian; this private protocol has a
    /// fixed order, unlike the client protocol).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::HEADER + self.data.len());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.time.ticks().to_le_bytes());
        out.push(self.function as u8);
        out.push(self.param);
        out.extend_from_slice(&self.aux.to_le_bytes());
        out.extend_from_slice(&self.data);
        out
    }

    /// Decodes a packet, or `None` if malformed.
    pub fn decode(bytes: &[u8]) -> Option<LsPacket> {
        if bytes.len() < Self::HEADER {
            return None;
        }
        let seq = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
        let time = ATime::new(u32::from_le_bytes(bytes[4..8].try_into().ok()?));
        let function = LsFunction::from_wire(bytes[8])?;
        let param = bytes[9];
        let aux = u16::from_le_bytes(bytes[10..12].try_into().ok()?);
        Some(LsPacket {
            seq,
            time,
            function,
            param,
            aux,
            data: bytes[Self::HEADER..].to_vec(),
        })
    }
}

/// The simulated LineServer box.
pub struct LineServerFirmware {
    socket: UdpSocket,
    hw: VirtualAudioHw,
    regs: [u16; LS_NUM_REGS],
    stop: Arc<AtomicBool>,
    /// Per-peer FEC encoders for outbound `Record` replies (active while
    /// the FEC register is non-zero).
    fec_tx: HashMap<SocketAddr, FecEncoder>,
    /// Per-peer FEC decoders for inbound one-way frames.
    fec_rx: HashMap<SocketAddr, FecDecoder>,
    /// Highest executed request sequence per peer, for the stale guard.
    last_seq: HashMap<SocketAddr, u32>,
}

impl LineServerFirmware {
    /// Boots a LineServer on an ephemeral localhost UDP port.
    ///
    /// The 8 kHz codec runs on `clock`; `sink`/`source` are its audio
    /// endpoints.  Returns the firmware and its address.
    pub fn boot(
        clock: SharedClock,
        sink: Box<dyn SampleSink>,
        source: Box<dyn SampleSource>,
    ) -> io::Result<(LineServerFirmware, SocketAddr)> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        socket.set_read_timeout(Some(Duration::from_millis(5)))?;
        let addr = socket.local_addr()?;
        let cfg = HwConfig {
            encoding: af_dsp::Encoding::Mu255,
            rate: 8000,
            channels: 1,
            ring_frames: LS_BUFFER_SAMPLES,
        };
        Ok((
            LineServerFirmware {
                socket,
                hw: VirtualAudioHw::new(cfg, clock, sink, source),
                regs: [0; LS_NUM_REGS],
                stop: Arc::new(AtomicBool::new(false)),
                fec_tx: HashMap::new(),
                fec_rx: HashMap::new(),
                last_seq: HashMap::new(),
            },
            addr,
        ))
    }

    /// A handle that stops the firmware loop when set.
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Runs the firmware loop until stopped: the "network thread" of the
    /// real firmware, with the "update thread" folded into each iteration.
    ///
    /// A small reply cache gives retransmissions at-most-once semantics: a
    /// request whose `(peer, seq)` matches a recent exchange is answered
    /// with the original reply bytes instead of being executed again, so a
    /// link that times out and resends cannot double-play samples or
    /// double-apply register writes.  A per-peer high-water sequence mark
    /// backs the cache up: a retransmission old enough to have been
    /// evicted is dropped silently rather than re-executed, preserving
    /// at-most-once past the cache horizon.
    pub fn run(mut self) {
        let mut buf = vec![0u8; 65_536];
        let mut cache: VecDeque<(SocketAddr, u32, Vec<u8>)> =
            VecDeque::with_capacity(LS_REPLY_CACHE);
        while !self.stop.load(Ordering::Relaxed) {
            // Interrupt-driven sample movement, batched.
            self.hw.service();
            match self.socket.recv_from(&mut buf) {
                Ok((n, peer)) => self.handle_datagram(&buf[..n], peer, &mut cache),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(_) => break,
            }
        }
    }

    /// Handles one inbound datagram: an FEC frame carrying one-way inner
    /// requests, or a plain request/reply exchange.
    fn handle_datagram(
        &mut self,
        bytes: &[u8],
        peer: SocketAddr,
        cache: &mut VecDeque<(SocketAddr, u32, Vec<u8>)>,
    ) {
        // FEC frames first: the magic + CRC check makes a false positive
        // against a plain packet practically impossible, while a plain
        // decode of an FEC frame could succeed by accident.
        if let Some(frame) = FecFrame::decode(bytes) {
            if !self.fec_rx.contains_key(&peer) && self.fec_rx.len() >= LS_MAX_PEERS {
                self.fec_rx.clear();
            }
            let payloads = self.fec_rx.entry(peer).or_default().push(frame);
            for payload in payloads {
                // One-way inner requests (play traffic): executed, reply
                // discarded; duplicates were already shed by the decoder
                // and replayed `Play` writes are idempotent.
                if let Some(req) = LsPacket::decode(&payload) {
                    let _ = self.process(req);
                }
            }
            return;
        }
        let Some(req) = LsPacket::decode(bytes) else {
            return; // Malformed packets dropped silently, as firmware would.
        };
        let seq = req.seq;
        if let Some((_, _, bytes)) = cache.iter().find(|(p, s, _)| *p == peer && *s == seq) {
            let _ = self.socket.send_to(bytes, peer);
            return;
        }
        // Not cached: drop it silently if it is older than the newest
        // executed request from this peer — a retransmission whose cache
        // entry was evicted must not re-execute.
        if let Some(&last) = self.last_seq.get(&peer) {
            if seq.wrapping_sub(last) as i32 <= 0 {
                return;
            }
        }
        if !self.last_seq.contains_key(&peer) && self.last_seq.len() >= LS_MAX_PEERS {
            self.last_seq.clear();
        }
        self.last_seq.insert(peer, seq);
        let reply = self.process(req);
        let encoded = reply.encode();
        // While FEC is enabled, Record replies — the loss-sensitive,
        // unretried audio path — go out wrapped in FEC frames; everything
        // else stays plain so the reliable transact path is untouched.
        let mut sent_fec = false;
        if reply.function == LsFunction::Record {
            if let Some(cfg) = FecConfig::from_reg(self.regs[usize::from(LS_REG_FEC)]) {
                if !self.fec_tx.contains_key(&peer) && self.fec_tx.len() >= LS_MAX_PEERS {
                    self.fec_tx.clear();
                }
                let enc = self
                    .fec_tx
                    .entry(peer)
                    .or_insert_with(|| FecEncoder::new(cfg));
                if enc.config() != cfg {
                    *enc = FecEncoder::new(cfg);
                }
                for frame in enc.push(&encoded) {
                    let _ = self.socket.send_to(&frame, peer);
                }
                sent_fec = true;
            }
        }
        if !sent_fec {
            let _ = self.socket.send_to(&encoded, peer);
        }
        if cache.len() == LS_REPLY_CACHE {
            cache.pop_front();
        }
        // The cache keeps the *plain* reply: a retransmitted request gets
        // a direct answer even if the FEC'd original was lost.
        cache.push_back((peer, seq, encoded));
    }

    /// Processes one request into its reply.
    pub fn process(&mut self, req: LsPacket) -> LsPacket {
        let now = self.hw.service();
        let mut reply = LsPacket {
            seq: req.seq,
            time: now,
            function: req.function,
            param: req.param,
            aux: req.aux,
            data: Vec::new(),
        };
        match req.function {
            LsFunction::Play => {
                self.hw.write_play(req.time, &req.data);
            }
            LsFunction::Record => {
                let n = u32::from(req.aux).min(LS_BUFFER_SAMPLES);
                let mut data = vec![0u8; n as usize];
                self.hw.read_rec(req.time, &mut data);
                reply.data = data;
                // A Record reply's time is the *sample start time* (the
                // request's), not "now": a late or FEC-recovered reply
                // must still say where its samples belong on the device
                // timeline so the jitter buffer can slot them in.
                reply.time = req.time;
            }
            LsFunction::ReadReg => {
                reply.aux = self
                    .regs
                    .get(req.param as usize)
                    .copied()
                    .unwrap_or_default();
            }
            LsFunction::WriteReg => {
                if let Some(r) = self.regs.get_mut(req.param as usize) {
                    *r = req.aux;
                }
            }
            LsFunction::Loopback => {
                reply.data = req.data;
            }
            LsFunction::Reset => {
                self.regs = [0; LS_NUM_REGS];
            }
        }
        reply
    }
}

/// The datagram transport under a [`LineServerLink`]: either a plain UDP
/// socket or a fault-injecting [`af_chaos::ChaosUdp`] wrapper for tests.
enum LinkSocket {
    Plain(UdpSocket),
    // Boxed: ChaosUdp carries its whole fault plan inline and would bloat
    // the common plain-socket case.
    Chaos(Box<af_chaos::ChaosUdp>),
}

impl LinkSocket {
    fn send(&self, buf: &[u8]) -> io::Result<usize> {
        match self {
            LinkSocket::Plain(s) => s.send(buf),
            LinkSocket::Chaos(s) => s.send(buf),
        }
    }

    fn recv(&self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            LinkSocket::Plain(s) => s.recv(buf),
            LinkSocket::Chaos(s) => s.recv(buf),
        }
    }

    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            LinkSocket::Plain(s) => s.set_read_timeout(dur),
            LinkSocket::Chaos(s) => s.set_read_timeout(dur),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            LinkSocket::Plain(s) => s.set_nonblocking(nb),
            LinkSocket::Chaos(s) => s.set_nonblocking(nb),
        }
    }
}

/// The workstation side of the private protocol, used by the `Als` backend.
pub struct LineServerLink {
    socket: LinkSocket,
    next_seq: u32,
    /// `(local instant, remote time)` of the last reply, for time estimates.
    last_observation: Option<(std::time::Instant, ATime)>,
    /// Encoder for outbound one-way FEC traffic, set by [`Self::enable_fec`].
    fec_tx: Option<FecEncoder>,
    /// Decoder for inbound FEC frames (Record replies), always live.
    fec_rx: FecDecoder,
    /// Audio-bearing packets that arrived outside their own transaction:
    /// stale (post-timeout) and FEC-recovered `Record` replies.  The
    /// backend drains these into its jitter buffer instead of losing them.
    pending_audio: VecDeque<LsPacket>,
    /// Retransmissions performed across all transactions.
    retransmits: u64,
    /// Inbound datagrams that decoded as neither FEC frame nor packet
    /// (truncated or corrupted; CRC rejections land here too).
    undecodable: u64,
}

impl LineServerLink {
    /// Connects to a LineServer at `addr`.
    pub fn connect(addr: SocketAddr) -> io::Result<LineServerLink> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        socket.connect(addr)?;
        socket.set_read_timeout(Some(Duration::from_millis(100)))?;
        Ok(LineServerLink::from_socket(LinkSocket::Plain(socket)))
    }

    /// Connects through a fault-injecting UDP wrapper: every datagram in
    /// both directions is subject to `plan`.  For exercising the
    /// retransmission and dedup paths in tests.
    pub fn connect_chaos(
        addr: SocketAddr,
        plan: af_chaos::UdpFaultPlan,
    ) -> io::Result<LineServerLink> {
        let socket = af_chaos::ChaosUdp::connect(addr, plan)?;
        socket.set_read_timeout(Some(Duration::from_millis(100)))?;
        Ok(LineServerLink::from_socket(LinkSocket::Chaos(Box::new(socket))))
    }

    fn from_socket(socket: LinkSocket) -> LineServerLink {
        LineServerLink {
            socket,
            next_seq: 1,
            last_observation: None,
            fec_tx: None,
            fec_rx: FecDecoder::new(),
            pending_audio: VecDeque::new(),
            retransmits: 0,
            undecodable: 0,
        }
    }

    /// Negotiates FEC with the LineServer: writes the group shape into
    /// [`LS_REG_FEC`] over the reliable transact path, then FEC-frames
    /// outbound one-way traffic.  Returns the shape actually in force.
    /// On failure the link simply stays in plain mode.
    pub fn enable_fec(&mut self, cfg: FecConfig, retries: u32) -> Result<FecConfig, LinkError> {
        self.transact(
            LsPacket {
                seq: 0,
                time: ATime::ZERO,
                function: LsFunction::WriteReg,
                param: LS_REG_FEC,
                aux: cfg.to_reg(),
                data: Vec::new(),
            },
            retries,
        )?;
        self.fec_tx = Some(FecEncoder::new(cfg));
        Ok(cfg)
    }

    /// Whether [`Self::enable_fec`] has succeeded on this link.
    pub fn fec_enabled(&self) -> bool {
        self.fec_tx.is_some()
    }

    /// Bounds how long one attempt waits for a reply before retransmitting.
    pub fn set_reply_timeout(&self, timeout: Duration) -> io::Result<()> {
        self.socket.set_read_timeout(Some(timeout))
    }

    /// `(dropped, duplicated, reordered, corrupted)` datagram counts when
    /// connected via [`LineServerLink::connect_chaos`], else `None`.
    pub fn fault_counts(&self) -> Option<(u64, u64, u64, u64)> {
        match &self.socket {
            LinkSocket::Plain(_) => None,
            LinkSocket::Chaos(s) => Some(s.fault_counts()),
        }
    }

    /// Sends one request and waits for its reply, retransmitting on reply
    /// timeout up to `retries` extra times.
    ///
    /// Retransmission is safe for every function — including `Play` and
    /// register writes — because the firmware answers a repeated sequence
    /// number from its reply cache instead of executing it again.  Replies
    /// to earlier, timed-out sequence numbers are not discarded: if they
    /// carry audio they are queued for [`Self::take_audio`], otherwise
    /// they are skipped.  When every attempt times out the link reports
    /// [`LinkError::Down`] so the caller can free-run immediately instead
    /// of blocking its next request on a dead peer.
    pub fn transact(&mut self, mut req: LsPacket, retries: u32) -> Result<LsPacket, LinkError> {
        req.seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        let encoded = req.encode();
        let mut attempts = 0;
        let mut buf = vec![0u8; 65_536];
        self.socket.send(&encoded)?;
        loop {
            match self.socket.recv(&mut buf) {
                Ok(n) => {
                    let bytes = buf[..n].to_vec();
                    if let Some(reply) = self.accept_datagram(&bytes, Some(req.seq)) {
                        // Record replies carry their sample start time, not
                        // the remote "now" — only the other functions are
                        // clock observations.
                        if reply.function != LsFunction::Record {
                            self.last_observation =
                                Some((std::time::Instant::now(), reply.time));
                        }
                        return Ok(reply);
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if attempts >= retries {
                        return Err(LinkError::Down {
                            attempts: attempts + 1,
                        });
                    }
                    attempts += 1;
                    self.retransmits += 1;
                    self.socket.send(&encoded)?;
                }
                Err(e) => return Err(LinkError::Io(e)),
            }
        }
    }

    /// Sends one request without waiting for any reply, FEC-framed when
    /// [`Self::enable_fec`] is active.  This is the WAN play path: loss is
    /// absorbed by parity (and by the play buffer's tolerance), never by
    /// a blocking retransmission.
    pub fn send_oneway(&mut self, mut req: LsPacket) -> Result<(), LinkError> {
        req.seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        let encoded = req.encode();
        match &mut self.fec_tx {
            Some(enc) => {
                for frame in enc.push(&encoded) {
                    self.socket.send(&frame)?;
                }
            }
            None => {
                self.socket.send(&encoded)?;
            }
        }
        Ok(())
    }

    /// Drains every datagram already queued on the socket without
    /// blocking, routing audio-bearing packets to [`Self::take_audio`].
    /// The backend calls this between transactions so FEC parity and
    /// late replies are folded in promptly.
    pub fn poll(&mut self) {
        if self.socket.set_nonblocking(true).is_err() {
            return;
        }
        let mut buf = vec![0u8; 65_536];
        while let Ok(n) = self.socket.recv(&mut buf) {
            let bytes = buf[..n].to_vec();
            let _ = self.accept_datagram(&bytes, None);
        }
        let _ = self.socket.set_nonblocking(false);
    }

    /// Takes the audio-bearing packets that arrived outside their own
    /// transaction (stale or FEC-recovered `Record` replies).
    pub fn take_audio(&mut self) -> Vec<LsPacket> {
        self.pending_audio.drain(..).collect()
    }

    /// FEC receive-side counters for this link.
    pub fn fec_stats(&self) -> FecDecoderStats {
        self.fec_rx.stats()
    }

    /// Total retransmissions performed by [`Self::transact`] so far.
    pub fn retransmit_count(&self) -> u64 {
        self.retransmits
    }

    /// Inbound datagrams rejected as undecodable (framing or CRC).
    pub fn undecodable_count(&self) -> u64 {
        self.undecodable
    }

    /// Classifies one inbound datagram.  Returns the packet matching
    /// `want_seq` if present; all other audio-bearing packets (from FEC
    /// recovery or stale replies) are queued for [`Self::take_audio`].
    fn accept_datagram(&mut self, bytes: &[u8], want_seq: Option<u32>) -> Option<LsPacket> {
        // FEC first: magic + CRC make misclassification of a plain packet
        // practically impossible, and one frame can release several inner
        // packets (the lost one plus the parity that repaired it).
        if let Some(frame) = FecFrame::decode(bytes) {
            let mut hit = None;
            for payload in self.fec_rx.push(frame) {
                if let Some(pkt) = LsPacket::decode(&payload) {
                    if hit.is_none() && want_seq == Some(pkt.seq) {
                        hit = Some(pkt);
                    } else {
                        self.queue_audio(pkt);
                    }
                }
            }
            return hit;
        }
        let Some(pkt) = LsPacket::decode(bytes) else {
            self.undecodable += 1;
            return None;
        };
        if want_seq == Some(pkt.seq) {
            return Some(pkt);
        }
        self.queue_audio(pkt);
        None
    }

    /// Queues an out-of-band packet if it carries recorded audio.
    fn queue_audio(&mut self, pkt: LsPacket) {
        if pkt.function != LsFunction::Record || pkt.data.is_empty() {
            return;
        }
        if self.pending_audio.len() >= LINK_AUDIO_QUEUE {
            self.pending_audio.pop_front();
        }
        self.pending_audio.push_back(pkt);
    }

    /// Estimates the LineServer's current device time from the time stamp of
    /// the last reply and the local elapsed time (§7.4.3).
    pub fn estimate_time(&self, rate: u32) -> Option<ATime> {
        let (at, remote) = self.last_observation?;
        let elapsed = at.elapsed().as_secs_f64();
        Some(remote + (elapsed * f64::from(rate)) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::io::{CaptureSink, ToneSource};

    fn packet(function: LsFunction) -> LsPacket {
        LsPacket {
            seq: 7,
            time: ATime::new(100),
            function,
            param: 2,
            aux: 34,
            data: vec![1, 2, 3],
        }
    }

    #[test]
    fn packet_round_trip() {
        for f in [
            LsFunction::Play,
            LsFunction::Record,
            LsFunction::ReadReg,
            LsFunction::WriteReg,
            LsFunction::Loopback,
            LsFunction::Reset,
        ] {
            let p = packet(f);
            assert_eq!(LsPacket::decode(&p.encode()), Some(p));
        }
        assert_eq!(LsPacket::decode(&[0u8; 4]), None);
        let mut bad = packet(LsFunction::Play).encode();
        bad[8] = 99; // Unknown function.
        assert_eq!(LsPacket::decode(&bad), None);
    }

    #[test]
    fn firmware_processes_all_functions() {
        let clock = Arc::new(VirtualClock::new(8000));
        let (sink, capture) = CaptureSink::new(1 << 16);
        let (mut fw, _addr) = LineServerFirmware::boot(
            clock.clone(),
            Box::new(sink),
            Box::new(ToneSource::ulaw(440.0, 8000.0, 10_000.0)),
        )
        .unwrap();

        // Write and read back a register.
        let r = fw.process(LsPacket {
            seq: 1,
            time: ATime::ZERO,
            function: LsFunction::WriteReg,
            param: LS_REG_OUTPUT_GAIN,
            aux: 42,
            data: vec![],
        });
        assert_eq!(r.seq, 1);
        let r = fw.process(LsPacket {
            seq: 2,
            time: ATime::ZERO,
            function: LsFunction::ReadReg,
            param: LS_REG_OUTPUT_GAIN,
            aux: 0,
            data: vec![],
        });
        assert_eq!(r.aux, 42);

        // Loopback echoes data.
        let r = fw.process(LsPacket {
            seq: 3,
            time: ATime::ZERO,
            function: LsFunction::Loopback,
            param: 0,
            aux: 0,
            data: vec![9, 9, 9],
        });
        assert_eq!(r.data, vec![9, 9, 9]);

        // Play at t=10, advance, verify the sink heard it.
        fw.process(LsPacket {
            seq: 4,
            time: ATime::new(10),
            function: LsFunction::Play,
            param: 0,
            aux: 0,
            data: vec![0x21; 20],
        });
        clock.advance(100);
        fw.hw.service();
        let cap = capture.lock();
        assert_eq!(&cap[10..30], &[0x21; 20][..]);
        drop(cap);

        // Record from the tone source.
        clock.advance(100);
        let r = fw.process(LsPacket {
            seq: 5,
            time: ATime::new(120),
            function: LsFunction::Record,
            param: 0,
            aux: 64,
            data: vec![],
        });
        assert_eq!(r.data.len(), 64);
        assert!(r.data.iter().any(|&b| b != af_dsp::g711::ULAW_SILENCE));

        // Reset clears registers.
        fw.process(LsPacket {
            seq: 6,
            time: ATime::ZERO,
            function: LsFunction::Reset,
            param: 0,
            aux: 0,
            data: vec![],
        });
        let r = fw.process(LsPacket {
            seq: 7,
            time: ATime::ZERO,
            function: LsFunction::ReadReg,
            param: LS_REG_OUTPUT_GAIN,
            aux: 0,
            data: vec![],
        });
        assert_eq!(r.aux, 0);
    }

    #[test]
    fn link_transacts_over_udp() {
        let clock = Arc::new(VirtualClock::new(8000));
        let (fw, addr) = LineServerFirmware::boot(
            clock.clone(),
            Box::new(crate::io::NullSink),
            Box::new(crate::io::SilenceSource::new(0xFF)),
        )
        .unwrap();
        let stop = fw.stop_handle();
        let handle = std::thread::spawn(move || fw.run());

        let mut link = LineServerLink::connect(addr).unwrap();
        clock.advance(500);
        let reply = link
            .transact(
                LsPacket {
                    seq: 0,
                    time: ATime::ZERO,
                    function: LsFunction::Loopback,
                    param: 0,
                    aux: 0,
                    data: vec![1, 2, 3, 4],
                },
                3,
            )
            .unwrap();
        assert_eq!(reply.data, vec![1, 2, 3, 4]);
        assert!(reply.time.ticks() >= 500);
        assert!(link.estimate_time(8000).is_some());

        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }

    /// Boots a firmware with null/silence endpoints and runs it on a thread.
    fn booted(
        clock: SharedClock,
    ) -> (
        SocketAddr,
        Arc<AtomicBool>,
        std::thread::JoinHandle<()>,
    ) {
        let (fw, addr) = LineServerFirmware::boot(
            clock,
            Box::new(crate::io::NullSink),
            Box::new(crate::io::SilenceSource::new(0xFF)),
        )
        .unwrap();
        let stop = fw.stop_handle();
        let handle = std::thread::spawn(move || fw.run());
        (addr, stop, handle)
    }

    #[test]
    fn retransmitted_request_is_answered_from_cache_not_reexecuted() {
        let clock = Arc::new(VirtualClock::new(8000));
        let (addr, stop, handle) = booted(clock.clone());

        // Talk to the firmware with a raw socket so the same encoded bytes
        // (same seq) can be sent twice, as a timed-out link would.
        let sock = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        sock.connect(addr).unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        clock.advance(100);
        let req = LsPacket {
            seq: 42,
            time: ATime::ZERO,
            function: LsFunction::Loopback,
            param: 0,
            aux: 0,
            data: vec![5, 6, 7],
        }
        .encode();

        let mut buf = vec![0u8; 65_536];
        sock.send(&req).unwrap();
        let n = sock.recv(&mut buf).unwrap();
        let first = LsPacket::decode(&buf[..n]).unwrap();

        // Advance device time, then retransmit.  A re-executed request
        // would stamp its reply with the later time; a cache hit returns
        // the original reply verbatim.
        clock.advance(500);
        sock.send(&req).unwrap();
        let n = sock.recv(&mut buf).unwrap();
        let second = LsPacket::decode(&buf[..n]).unwrap();
        assert_eq!(first, second, "duplicate seq must be served from cache");

        // A fresh sequence number executes normally and sees the new time.
        let mut fresh = LsPacket::decode(&req).unwrap();
        fresh.seq = 43;
        sock.send(&fresh.encode()).unwrap();
        let n = sock.recv(&mut buf).unwrap();
        let third = LsPacket::decode(&buf[..n]).unwrap();
        assert!(
            third.time.ticks() > first.time.ticks(),
            "new seq must be re-executed"
        );

        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }

    #[test]
    fn stale_retransmit_past_cache_horizon_is_not_reexecuted() {
        // The eviction edge: a retransmission old enough to have fallen
        // out of the 32-entry reply cache must be dropped silently by the
        // stale-sequence guard — not executed a second time.
        let clock = Arc::new(VirtualClock::new(8000));
        let (addr, stop, handle) = booted(clock.clone());

        let sock = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        sock.connect(addr).unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = vec![0u8; 65_536];

        // seq 1: set the output gain to 1.
        let stale = LsPacket {
            seq: 1,
            time: ATime::ZERO,
            function: LsFunction::WriteReg,
            param: LS_REG_OUTPUT_GAIN,
            aux: 1,
            data: vec![],
        }
        .encode();
        sock.send(&stale).unwrap();
        sock.recv(&mut buf).unwrap();

        // Overwrite the gain, then push the cache well past seq 1 with a
        // full window of newer exchanges.
        for seq in 2..2 + LS_REPLY_CACHE as u32 + 4 {
            let function = if seq == 2 {
                LsFunction::WriteReg
            } else {
                LsFunction::Loopback
            };
            let req = LsPacket {
                seq,
                time: ATime::ZERO,
                function,
                param: LS_REG_OUTPUT_GAIN,
                aux: 9,
                data: vec![],
            };
            sock.send(&req.encode()).unwrap();
            sock.recv(&mut buf).unwrap();
        }

        // Retransmit the evicted seq-1 write.  Re-execution would reset
        // the gain to 1; a cache hit would produce a reply.  At-most-once
        // past the horizon demands neither: silence.
        sock.send(&stale).unwrap();
        sock.set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        assert!(
            sock.recv(&mut buf).is_err(),
            "stale retransmit must be dropped silently"
        );

        // The register still holds the newer value.
        sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let read = LsPacket {
            seq: 100,
            time: ATime::ZERO,
            function: LsFunction::ReadReg,
            param: LS_REG_OUTPUT_GAIN,
            aux: 0,
            data: vec![],
        };
        sock.send(&read.encode()).unwrap();
        let n = sock.recv(&mut buf).unwrap();
        let reply = LsPacket::decode(&buf[..n]).unwrap();
        assert_eq!(reply.aux, 9, "stale retransmit must not re-execute");

        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }

    #[test]
    fn link_recovers_over_lossy_reordering_path() {
        let clock = Arc::new(VirtualClock::new(8000));
        let (addr, stop, handle) = booted(clock.clone());

        // A deterministic 35%-loss, reordering path in both directions.
        let plan = af_chaos::UdpFaultPlan::new(0xA51F)
            .drop_send(0.35)
            .drop_recv(0.2)
            .reorder(0.25)
            .duplicate(0.2);
        let mut link = LineServerLink::connect_chaos(addr, plan).unwrap();
        link.set_reply_timeout(Duration::from_millis(25)).unwrap();

        // Register writes followed by read-backs: every transact must
        // eventually succeed, and dedup must keep the state consistent
        // despite duplicated and retransmitted writes.
        for i in 0..10u16 {
            clock.advance(50);
            link.transact(
                LsPacket {
                    seq: 0,
                    time: ATime::ZERO,
                    function: LsFunction::WriteReg,
                    param: LS_REG_OUTPUT_GAIN,
                    aux: 100 + i,
                    data: vec![],
                },
                20,
            )
            .expect("write survives lossy link");
            let reply = link
                .transact(
                    LsPacket {
                        seq: 0,
                        time: ATime::ZERO,
                        function: LsFunction::ReadReg,
                        param: LS_REG_OUTPUT_GAIN,
                        aux: 0,
                        data: vec![],
                    },
                    20,
                )
                .expect("read survives lossy link");
            assert_eq!(reply.aux, 100 + i);
        }

        let (dropped, duplicated, reordered, _) = link.fault_counts().unwrap();
        assert!(
            dropped > 0 && duplicated + reordered > 0,
            "plan must actually have injected faults: {:?}",
            link.fault_counts()
        );

        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }
}
