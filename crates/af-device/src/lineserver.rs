//! The LineServer: a detached UDP audio peripheral (§4.4, §7.4.3).
//!
//! The real LineServer was a Motorola 68302 Ethernet box with an 8 kHz ISDN
//! CODEC; the AudioFile server for it (`Als`) ran on a nearby workstation
//! and drove the hardware with a private UDP protocol of six packet types.
//! Request and reply packets share one format — a header of sequence number,
//! audio time, function code, and parameter, followed by data bytes — and
//! the LineServer *only* sends packets as replies to requests.
//!
//! [`LineServerFirmware`] reproduces the firmware: small (2048-sample)
//! play/record buffers, interrupt-driven sample movement (simulated by
//! servicing a virtual codec on every poll), and a request loop over a real
//! UDP socket.  [`LineServerLink`] is the workstation side used by the
//! `Als`-style device backend.

use crate::clock::SharedClock;
use crate::hardware::{HwConfig, VirtualAudioHw};
use crate::io::{SampleSink, SampleSource};
use af_time::ATime;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// LineServer buffer size: 2048 samples, "1/4 second at 8 kHz".
pub const LS_BUFFER_SAMPLES: u32 = 2048;

/// How many recent replies the firmware keeps for answering retransmitted
/// requests without re-executing them (at-most-once semantics).
pub const LS_REPLY_CACHE: usize = 32;

/// Number of device registers (gains, config).
pub const LS_NUM_REGS: usize = 16;

/// Register index: output gain.
pub const LS_REG_OUTPUT_GAIN: u8 = 0;
/// Register index: input gain.
pub const LS_REG_INPUT_GAIN: u8 = 1;

/// The six packet function codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum LsFunction {
    /// Play samples (data = µ-law samples, `time` = start time).
    Play = 1,
    /// Record samples (`aux` = sample count; reply data = samples).
    Record = 2,
    /// Read a CODEC register (`param` = index; reply `aux` = value).
    ReadReg = 3,
    /// Write a CODEC register (`param` = index, `aux` = value).
    WriteReg = 4,
    /// Loopback, for testing: the reply echoes the request.
    Loopback = 5,
    /// Reset: clear buffers and registers.
    Reset = 6,
}

impl LsFunction {
    fn from_wire(v: u8) -> Option<LsFunction> {
        match v {
            1 => Some(LsFunction::Play),
            2 => Some(LsFunction::Record),
            3 => Some(LsFunction::ReadReg),
            4 => Some(LsFunction::WriteReg),
            5 => Some(LsFunction::Loopback),
            6 => Some(LsFunction::Reset),
            _ => None,
        }
    }
}

/// One LineServer packet; requests and replies share this format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LsPacket {
    /// Sequence number; replies echo it.
    pub seq: u32,
    /// Audio device time (request: start time; reply: current time).
    pub time: ATime,
    /// Function code.
    pub function: LsFunction,
    /// Small parameter (register index).
    pub param: u8,
    /// Auxiliary 16-bit parameter (lengths, register values).
    pub aux: u16,
    /// Data bytes.
    pub data: Vec<u8>,
}

impl LsPacket {
    /// Header size in bytes.
    pub const HEADER: usize = 12;

    /// Encodes the packet (fields little-endian; this private protocol has a
    /// fixed order, unlike the client protocol).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::HEADER + self.data.len());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.time.ticks().to_le_bytes());
        out.push(self.function as u8);
        out.push(self.param);
        out.extend_from_slice(&self.aux.to_le_bytes());
        out.extend_from_slice(&self.data);
        out
    }

    /// Decodes a packet, or `None` if malformed.
    pub fn decode(bytes: &[u8]) -> Option<LsPacket> {
        if bytes.len() < Self::HEADER {
            return None;
        }
        let seq = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
        let time = ATime::new(u32::from_le_bytes(bytes[4..8].try_into().ok()?));
        let function = LsFunction::from_wire(bytes[8])?;
        let param = bytes[9];
        let aux = u16::from_le_bytes(bytes[10..12].try_into().ok()?);
        Some(LsPacket {
            seq,
            time,
            function,
            param,
            aux,
            data: bytes[Self::HEADER..].to_vec(),
        })
    }
}

/// The simulated LineServer box.
pub struct LineServerFirmware {
    socket: UdpSocket,
    hw: VirtualAudioHw,
    regs: [u16; LS_NUM_REGS],
    stop: Arc<AtomicBool>,
}

impl LineServerFirmware {
    /// Boots a LineServer on an ephemeral localhost UDP port.
    ///
    /// The 8 kHz codec runs on `clock`; `sink`/`source` are its audio
    /// endpoints.  Returns the firmware and its address.
    pub fn boot(
        clock: SharedClock,
        sink: Box<dyn SampleSink>,
        source: Box<dyn SampleSource>,
    ) -> io::Result<(LineServerFirmware, SocketAddr)> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        socket.set_read_timeout(Some(Duration::from_millis(5)))?;
        let addr = socket.local_addr()?;
        let cfg = HwConfig {
            encoding: af_dsp::Encoding::Mu255,
            rate: 8000,
            channels: 1,
            ring_frames: LS_BUFFER_SAMPLES,
        };
        Ok((
            LineServerFirmware {
                socket,
                hw: VirtualAudioHw::new(cfg, clock, sink, source),
                regs: [0; LS_NUM_REGS],
                stop: Arc::new(AtomicBool::new(false)),
            },
            addr,
        ))
    }

    /// A handle that stops the firmware loop when set.
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Runs the firmware loop until stopped: the "network thread" of the
    /// real firmware, with the "update thread" folded into each iteration.
    ///
    /// A small reply cache gives retransmissions at-most-once semantics: a
    /// request whose `(peer, seq)` matches a recent exchange is answered
    /// with the original reply bytes instead of being executed again, so a
    /// link that times out and resends cannot double-play samples or
    /// double-apply register writes.
    pub fn run(mut self) {
        let mut buf = vec![0u8; 65_536];
        let mut cache: std::collections::VecDeque<(SocketAddr, u32, Vec<u8>)> =
            std::collections::VecDeque::with_capacity(LS_REPLY_CACHE);
        while !self.stop.load(Ordering::Relaxed) {
            // Interrupt-driven sample movement, batched.
            self.hw.service();
            match self.socket.recv_from(&mut buf) {
                Ok((n, peer)) => {
                    if let Some(req) = LsPacket::decode(&buf[..n]) {
                        let seq = req.seq;
                        if let Some((_, _, bytes)) =
                            cache.iter().find(|(p, s, _)| *p == peer && *s == seq)
                        {
                            let _ = self.socket.send_to(bytes, peer);
                        } else {
                            let encoded = self.process(req).encode();
                            let _ = self.socket.send_to(&encoded, peer);
                            if cache.len() == LS_REPLY_CACHE {
                                cache.pop_front();
                            }
                            cache.push_back((peer, seq, encoded));
                        }
                    }
                    // Malformed packets are dropped silently, as firmware
                    // would.
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(_) => break,
            }
        }
    }

    /// Processes one request into its reply.
    pub fn process(&mut self, req: LsPacket) -> LsPacket {
        let now = self.hw.service();
        let mut reply = LsPacket {
            seq: req.seq,
            time: now,
            function: req.function,
            param: req.param,
            aux: req.aux,
            data: Vec::new(),
        };
        match req.function {
            LsFunction::Play => {
                self.hw.write_play(req.time, &req.data);
            }
            LsFunction::Record => {
                let n = u32::from(req.aux).min(LS_BUFFER_SAMPLES);
                let mut data = vec![0u8; n as usize];
                self.hw.read_rec(req.time, &mut data);
                reply.data = data;
            }
            LsFunction::ReadReg => {
                reply.aux = self
                    .regs
                    .get(req.param as usize)
                    .copied()
                    .unwrap_or_default();
            }
            LsFunction::WriteReg => {
                if let Some(r) = self.regs.get_mut(req.param as usize) {
                    *r = req.aux;
                }
            }
            LsFunction::Loopback => {
                reply.data = req.data;
            }
            LsFunction::Reset => {
                self.regs = [0; LS_NUM_REGS];
            }
        }
        reply
    }
}

/// The datagram transport under a [`LineServerLink`]: either a plain UDP
/// socket or a fault-injecting [`af_chaos::ChaosUdp`] wrapper for tests.
enum LinkSocket {
    Plain(UdpSocket),
    Chaos(af_chaos::ChaosUdp),
}

impl LinkSocket {
    fn send(&self, buf: &[u8]) -> io::Result<usize> {
        match self {
            LinkSocket::Plain(s) => s.send(buf),
            LinkSocket::Chaos(s) => s.send(buf),
        }
    }

    fn recv(&self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            LinkSocket::Plain(s) => s.recv(buf),
            LinkSocket::Chaos(s) => s.recv(buf),
        }
    }

    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            LinkSocket::Plain(s) => s.set_read_timeout(dur),
            LinkSocket::Chaos(s) => s.set_read_timeout(dur),
        }
    }
}

/// The workstation side of the private protocol, used by the `Als` backend.
pub struct LineServerLink {
    socket: LinkSocket,
    next_seq: u32,
    /// `(local instant, remote time)` of the last reply, for time estimates.
    last_observation: Option<(std::time::Instant, ATime)>,
}

impl LineServerLink {
    /// Connects to a LineServer at `addr`.
    pub fn connect(addr: SocketAddr) -> io::Result<LineServerLink> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        socket.connect(addr)?;
        socket.set_read_timeout(Some(Duration::from_millis(100)))?;
        Ok(LineServerLink {
            socket: LinkSocket::Plain(socket),
            next_seq: 1,
            last_observation: None,
        })
    }

    /// Connects through a fault-injecting UDP wrapper: every datagram in
    /// both directions is subject to `plan`.  For exercising the
    /// retransmission and dedup paths in tests.
    pub fn connect_chaos(
        addr: SocketAddr,
        plan: af_chaos::UdpFaultPlan,
    ) -> io::Result<LineServerLink> {
        let socket = af_chaos::ChaosUdp::connect(addr, plan)?;
        socket.set_read_timeout(Some(Duration::from_millis(100)))?;
        Ok(LineServerLink {
            socket: LinkSocket::Chaos(socket),
            next_seq: 1,
            last_observation: None,
        })
    }

    /// Bounds how long one attempt waits for a reply before retransmitting.
    pub fn set_reply_timeout(&self, timeout: Duration) -> io::Result<()> {
        self.socket.set_read_timeout(Some(timeout))
    }

    /// `(dropped, duplicated, reordered, corrupted)` datagram counts when
    /// connected via [`LineServerLink::connect_chaos`], else `None`.
    pub fn fault_counts(&self) -> Option<(u64, u64, u64, u64)> {
        match &self.socket {
            LinkSocket::Plain(_) => None,
            LinkSocket::Chaos(s) => Some(s.fault_counts()),
        }
    }

    /// Sends one request and waits for its reply, retransmitting on reply
    /// timeout up to `retries` extra times.
    ///
    /// Retransmission is safe for every function — including `Play` and
    /// register writes — because the firmware answers a repeated sequence
    /// number from its reply cache instead of executing it again.  Replies
    /// to earlier, timed-out sequence numbers are recognized as stale and
    /// skipped.  Callers on the real-time path should still keep `retries`
    /// small: a retried play is late by at least one reply timeout.
    pub fn transact(&mut self, mut req: LsPacket, retries: u32) -> io::Result<LsPacket> {
        req.seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        let encoded = req.encode();
        let mut attempts = 0;
        let mut buf = vec![0u8; 65_536];
        self.socket.send(&encoded)?;
        loop {
            match self.socket.recv(&mut buf) {
                Ok(n) => {
                    if let Some(reply) = LsPacket::decode(&buf[..n]) {
                        if reply.seq == req.seq {
                            self.last_observation = Some((std::time::Instant::now(), reply.time));
                            return Ok(reply);
                        }
                        // Stale reply from a timed-out earlier exchange:
                        // keep waiting within this attempt.
                    }
                    // Undecodable (truncated or corrupted) datagrams are
                    // ignored the same way.
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if attempts >= retries {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "LineServer did not reply",
                        ));
                    }
                    attempts += 1;
                    self.socket.send(&encoded)?;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Estimates the LineServer's current device time from the time stamp of
    /// the last reply and the local elapsed time (§7.4.3).
    pub fn estimate_time(&self, rate: u32) -> Option<ATime> {
        let (at, remote) = self.last_observation?;
        let elapsed = at.elapsed().as_secs_f64();
        Some(remote + (elapsed * f64::from(rate)) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::io::{CaptureSink, ToneSource};

    fn packet(function: LsFunction) -> LsPacket {
        LsPacket {
            seq: 7,
            time: ATime::new(100),
            function,
            param: 2,
            aux: 34,
            data: vec![1, 2, 3],
        }
    }

    #[test]
    fn packet_round_trip() {
        for f in [
            LsFunction::Play,
            LsFunction::Record,
            LsFunction::ReadReg,
            LsFunction::WriteReg,
            LsFunction::Loopback,
            LsFunction::Reset,
        ] {
            let p = packet(f);
            assert_eq!(LsPacket::decode(&p.encode()), Some(p));
        }
        assert_eq!(LsPacket::decode(&[0u8; 4]), None);
        let mut bad = packet(LsFunction::Play).encode();
        bad[8] = 99; // Unknown function.
        assert_eq!(LsPacket::decode(&bad), None);
    }

    #[test]
    fn firmware_processes_all_functions() {
        let clock = Arc::new(VirtualClock::new(8000));
        let (sink, capture) = CaptureSink::new(1 << 16);
        let (mut fw, _addr) = LineServerFirmware::boot(
            clock.clone(),
            Box::new(sink),
            Box::new(ToneSource::ulaw(440.0, 8000.0, 10_000.0)),
        )
        .unwrap();

        // Write and read back a register.
        let r = fw.process(LsPacket {
            seq: 1,
            time: ATime::ZERO,
            function: LsFunction::WriteReg,
            param: LS_REG_OUTPUT_GAIN,
            aux: 42,
            data: vec![],
        });
        assert_eq!(r.seq, 1);
        let r = fw.process(LsPacket {
            seq: 2,
            time: ATime::ZERO,
            function: LsFunction::ReadReg,
            param: LS_REG_OUTPUT_GAIN,
            aux: 0,
            data: vec![],
        });
        assert_eq!(r.aux, 42);

        // Loopback echoes data.
        let r = fw.process(LsPacket {
            seq: 3,
            time: ATime::ZERO,
            function: LsFunction::Loopback,
            param: 0,
            aux: 0,
            data: vec![9, 9, 9],
        });
        assert_eq!(r.data, vec![9, 9, 9]);

        // Play at t=10, advance, verify the sink heard it.
        fw.process(LsPacket {
            seq: 4,
            time: ATime::new(10),
            function: LsFunction::Play,
            param: 0,
            aux: 0,
            data: vec![0x21; 20],
        });
        clock.advance(100);
        fw.hw.service();
        let cap = capture.lock();
        assert_eq!(&cap[10..30], &[0x21; 20][..]);
        drop(cap);

        // Record from the tone source.
        clock.advance(100);
        let r = fw.process(LsPacket {
            seq: 5,
            time: ATime::new(120),
            function: LsFunction::Record,
            param: 0,
            aux: 64,
            data: vec![],
        });
        assert_eq!(r.data.len(), 64);
        assert!(r.data.iter().any(|&b| b != af_dsp::g711::ULAW_SILENCE));

        // Reset clears registers.
        fw.process(LsPacket {
            seq: 6,
            time: ATime::ZERO,
            function: LsFunction::Reset,
            param: 0,
            aux: 0,
            data: vec![],
        });
        let r = fw.process(LsPacket {
            seq: 7,
            time: ATime::ZERO,
            function: LsFunction::ReadReg,
            param: LS_REG_OUTPUT_GAIN,
            aux: 0,
            data: vec![],
        });
        assert_eq!(r.aux, 0);
    }

    #[test]
    fn link_transacts_over_udp() {
        let clock = Arc::new(VirtualClock::new(8000));
        let (fw, addr) = LineServerFirmware::boot(
            clock.clone(),
            Box::new(crate::io::NullSink),
            Box::new(crate::io::SilenceSource::new(0xFF)),
        )
        .unwrap();
        let stop = fw.stop_handle();
        let handle = std::thread::spawn(move || fw.run());

        let mut link = LineServerLink::connect(addr).unwrap();
        clock.advance(500);
        let reply = link
            .transact(
                LsPacket {
                    seq: 0,
                    time: ATime::ZERO,
                    function: LsFunction::Loopback,
                    param: 0,
                    aux: 0,
                    data: vec![1, 2, 3, 4],
                },
                3,
            )
            .unwrap();
        assert_eq!(reply.data, vec![1, 2, 3, 4]);
        assert!(reply.time.ticks() >= 500);
        assert!(link.estimate_time(8000).is_some());

        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }

    /// Boots a firmware with null/silence endpoints and runs it on a thread.
    fn booted(
        clock: SharedClock,
    ) -> (
        SocketAddr,
        Arc<AtomicBool>,
        std::thread::JoinHandle<()>,
    ) {
        let (fw, addr) = LineServerFirmware::boot(
            clock,
            Box::new(crate::io::NullSink),
            Box::new(crate::io::SilenceSource::new(0xFF)),
        )
        .unwrap();
        let stop = fw.stop_handle();
        let handle = std::thread::spawn(move || fw.run());
        (addr, stop, handle)
    }

    #[test]
    fn retransmitted_request_is_answered_from_cache_not_reexecuted() {
        let clock = Arc::new(VirtualClock::new(8000));
        let (addr, stop, handle) = booted(clock.clone());

        // Talk to the firmware with a raw socket so the same encoded bytes
        // (same seq) can be sent twice, as a timed-out link would.
        let sock = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        sock.connect(addr).unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        clock.advance(100);
        let req = LsPacket {
            seq: 42,
            time: ATime::ZERO,
            function: LsFunction::Loopback,
            param: 0,
            aux: 0,
            data: vec![5, 6, 7],
        }
        .encode();

        let mut buf = vec![0u8; 65_536];
        sock.send(&req).unwrap();
        let n = sock.recv(&mut buf).unwrap();
        let first = LsPacket::decode(&buf[..n]).unwrap();

        // Advance device time, then retransmit.  A re-executed request
        // would stamp its reply with the later time; a cache hit returns
        // the original reply verbatim.
        clock.advance(500);
        sock.send(&req).unwrap();
        let n = sock.recv(&mut buf).unwrap();
        let second = LsPacket::decode(&buf[..n]).unwrap();
        assert_eq!(first, second, "duplicate seq must be served from cache");

        // A fresh sequence number executes normally and sees the new time.
        let mut fresh = LsPacket::decode(&req).unwrap();
        fresh.seq = 43;
        sock.send(&fresh.encode()).unwrap();
        let n = sock.recv(&mut buf).unwrap();
        let third = LsPacket::decode(&buf[..n]).unwrap();
        assert!(
            third.time.ticks() > first.time.ticks(),
            "new seq must be re-executed"
        );

        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }

    #[test]
    fn link_recovers_over_lossy_reordering_path() {
        let clock = Arc::new(VirtualClock::new(8000));
        let (addr, stop, handle) = booted(clock.clone());

        // A deterministic 35%-loss, reordering path in both directions.
        let plan = af_chaos::UdpFaultPlan::new(0xA51F)
            .drop_send(0.35)
            .drop_recv(0.2)
            .reorder(0.25)
            .duplicate(0.2);
        let mut link = LineServerLink::connect_chaos(addr, plan).unwrap();
        link.set_reply_timeout(Duration::from_millis(25)).unwrap();

        // Register writes followed by read-backs: every transact must
        // eventually succeed, and dedup must keep the state consistent
        // despite duplicated and retransmitted writes.
        for i in 0..10u16 {
            clock.advance(50);
            link.transact(
                LsPacket {
                    seq: 0,
                    time: ATime::ZERO,
                    function: LsFunction::WriteReg,
                    param: LS_REG_OUTPUT_GAIN,
                    aux: 100 + i,
                    data: vec![],
                },
                20,
            )
            .expect("write survives lossy link");
            let reply = link
                .transact(
                    LsPacket {
                        seq: 0,
                        time: ATime::ZERO,
                        function: LsFunction::ReadReg,
                        param: LS_REG_OUTPUT_GAIN,
                        aux: 0,
                        data: vec![],
                    },
                    20,
                )
                .expect("read survives lossy link");
            assert_eq!(reply.aux, 100 + i);
        }

        let (dropped, duplicated, reordered, _) = link.fault_counts().unwrap();
        assert!(
            dropped > 0 && duplicated + reordered > 0,
            "plan must actually have injected faults: {:?}",
            link.fault_counts()
        );

        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }
}
