//! Forward error correction for the LineServer UDP audio path.
//!
//! The link groups consecutive audio datagrams into *FEC groups* of `k`
//! data shards and appends `m` parity shards, so a receiver holding any
//! `k` of the `k + m` shards reconstructs the group without a round trip —
//! loss becomes latency-free erasure recovery instead of a retransmission
//! (or a gap).  Frames are sequence-numbered by `(group, index)` and
//! CRC-framed, turning corruption into erasure, which is the only failure
//! mode the code handles (see `af_proto::link` for the wire layout).
//!
//! Parity shard 0 is the plain XOR of the group's data shards — the
//! classic single-erasure parity.  Shards 1..m generalize it with
//! GF(256) coefficients drawn from a column-normalized Cauchy matrix,
//! whose every square submatrix is nonsingular, so *any* combination of
//! up to `m` erasures per group — bursts included — solves exactly.
//! Recovery is a tiny (≤ `m` × `m`) Gaussian elimination over GF(256),
//! then one pass over the shard bytes.
//!
//! Data shards carry variable-length payloads; parity is computed over
//! each payload prefixed with its 16-bit length and zero-padded to the
//! group's longest, so reconstruction recovers exact original bytes
//! (pinned bit-exact by `tests/fec.rs` property tests).

use af_proto::link::{
    FEC_CRC_BYTES, FEC_GROUP_WINDOW, FEC_HEADER_BYTES, FEC_MAGIC, FEC_MAX_K, FEC_MAX_M,
    FEC_VERSION,
};
use std::collections::VecDeque;

// --- GF(256) arithmetic --------------------------------------------------

/// Exp/log tables for GF(2^8) with the AES-adjacent polynomial 0x11D,
/// generator 2.  Built at compile time; `EXP` is doubled so products of
/// logs index without a modulo.
const GF_TABLES: ([u8; 510], [u8; 256]) = build_gf_tables();

const fn build_gf_tables() -> ([u8; 510], [u8; 256]) {
    let mut exp = [0u8; 510];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        exp[i + 255] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= 0x11D;
        }
        i += 1;
    }
    (exp, log)
}

#[inline]
fn gf_mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let (exp, log) = (&GF_TABLES.0, &GF_TABLES.1);
    exp[log[a as usize] as usize + log[b as usize] as usize]
}

#[inline]
fn gf_inv(a: u8) -> u8 {
    // a^-1 = exp(255 - log a); a must be nonzero (callers guarantee it:
    // Cauchy entries and pivots are nonzero by construction).
    let (exp, log) = (&GF_TABLES.0, &GF_TABLES.1);
    exp[255 - log[a as usize] as usize]
}

/// `out[i] ^= coeff * data[i]` over GF(256) — the erasure-code kernel.
fn gf_mul_acc(out: &mut [u8], data: &[u8], coeff: u8) {
    if coeff == 0 {
        return;
    }
    if coeff == 1 {
        for (o, d) in out.iter_mut().zip(data) {
            *o ^= *d;
        }
        return;
    }
    let (exp, log) = (&GF_TABLES.0, &GF_TABLES.1);
    let lc = log[coeff as usize] as usize;
    for (o, d) in out.iter_mut().zip(data) {
        if *d != 0 {
            *o ^= exp[lc + log[*d as usize] as usize];
        }
    }
}

/// Parity coefficient for parity row `j` (0..m) applied to data column `i`
/// (0..k): a Cauchy matrix `1 / (x_j ^ y_i)` with `x_j = j`,
/// `y_i = FEC_MAX_M + i`, column-scaled so row 0 is all ones (plain XOR).
/// Column scaling preserves the all-submatrices-nonsingular property.
fn cauchy_coeff(j: usize, i: usize) -> u8 {
    let x = j as u8;
    let y = (FEC_MAX_M + i) as u8;
    let c = gf_inv(x ^ y); // x != y because j < FEC_MAX_M <= y.
    let c0 = gf_inv(y); // Row-0 entry for this column (x = 0).
    gf_mul(c, gf_inv(c0))
}

// --- CRC-32 --------------------------------------------------------------

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// --- Configuration and framing -------------------------------------------

/// FEC group shape: `k` data shards protected by `m` parity shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FecConfig {
    /// Data shards per group (1..=[`FEC_MAX_K`]).
    pub k: usize,
    /// Parity shards per group (0..=[`FEC_MAX_M`]); 0 disables parity.
    pub m: usize,
}

impl Default for FecConfig {
    fn default() -> Self {
        FecConfig {
            k: af_proto::link::FEC_DEFAULT_K,
            m: af_proto::link::FEC_DEFAULT_M,
        }
    }
}

impl FecConfig {
    /// A validated config, clamping out-of-range shapes into bounds.
    pub fn new(k: usize, m: usize) -> FecConfig {
        FecConfig {
            k: k.clamp(1, FEC_MAX_K),
            m: m.min(FEC_MAX_M),
        }
    }

    /// Packs the shape into a register value (`k` high byte, `m` low).
    pub fn to_reg(self) -> u16 {
        ((self.k as u16) << 8) | self.m as u16
    }

    /// Unpacks a register value; `None` when zero (FEC disabled).
    pub fn from_reg(v: u16) -> Option<FecConfig> {
        if v == 0 {
            return None;
        }
        Some(FecConfig::new((v >> 8) as usize, (v & 0xFF) as usize))
    }
}

/// One parsed FEC frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FecFrame {
    /// Group sequence number.
    pub group: u32,
    /// Shard index: `0..k` data, `k..k+m` parity.
    pub index: u8,
    /// Data shards in this frame's group.
    pub k: u8,
    /// Parity shards in this frame's group.
    pub m: u8,
    /// Shard payload bytes.
    pub payload: Vec<u8>,
}

impl FecFrame {
    /// Encodes the frame with header and trailing CRC.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FEC_HEADER_BYTES + self.payload.len() + FEC_CRC_BYTES);
        out.extend_from_slice(&FEC_MAGIC.to_le_bytes());
        out.push(FEC_VERSION);
        out.extend_from_slice(&self.group.to_le_bytes());
        out.push(self.index);
        out.push(self.k);
        out.push(self.m);
        out.extend_from_slice(&(self.payload.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.payload);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes a datagram as an FEC frame.
    ///
    /// `None` for anything that is not a well-formed frame: wrong magic or
    /// version, truncation, length mismatch, shape out of bounds, or CRC
    /// failure.  Corruption is therefore indistinguishable from loss,
    /// which is the erasure model the parity math assumes.
    pub fn decode(bytes: &[u8]) -> Option<FecFrame> {
        if bytes.len() < FEC_HEADER_BYTES + FEC_CRC_BYTES {
            return None;
        }
        if u16::from_le_bytes([bytes[0], bytes[1]]) != FEC_MAGIC || bytes[2] != FEC_VERSION {
            return None;
        }
        let len = usize::from(u16::from_le_bytes([bytes[10], bytes[11]]));
        if bytes.len() != FEC_HEADER_BYTES + len + FEC_CRC_BYTES {
            return None;
        }
        let body = &bytes[..FEC_HEADER_BYTES + len];
        let wire_crc = u32::from_le_bytes([
            bytes[FEC_HEADER_BYTES + len],
            bytes[FEC_HEADER_BYTES + len + 1],
            bytes[FEC_HEADER_BYTES + len + 2],
            bytes[FEC_HEADER_BYTES + len + 3],
        ]);
        if crc32(body) != wire_crc {
            return None;
        }
        let (k, m) = (usize::from(bytes[8]), usize::from(bytes[9]));
        if k == 0 || k > FEC_MAX_K || m > FEC_MAX_M || usize::from(bytes[7]) >= k + m {
            return None;
        }
        Some(FecFrame {
            group: u32::from_le_bytes([bytes[3], bytes[4], bytes[5], bytes[6]]),
            index: bytes[7],
            k: bytes[8],
            m: bytes[9],
            // af-analyze: allow(alloc): a parsed frame owns its payload; the receive datagram buffer is transient
            payload: bytes[FEC_HEADER_BYTES..FEC_HEADER_BYTES + len].to_vec(),
        })
    }
}

// --- Encoder -------------------------------------------------------------

/// Streams payloads into FEC frames: each payload becomes one data frame
/// (emitted immediately), and every `k`-th payload closes the group and
/// emits its `m` parity frames.
pub struct FecEncoder {
    cfg: FecConfig,
    group: u32,
    /// Length-prefixed shard buffers of the open group.
    shards: Vec<Vec<u8>>,
}

impl FecEncoder {
    /// Creates an encoder with the given group shape.
    pub fn new(cfg: FecConfig) -> FecEncoder {
        FecEncoder {
            cfg,
            group: 0,
            shards: Vec::with_capacity(cfg.k),
        }
    }

    /// The configured group shape.
    pub fn config(&self) -> FecConfig {
        self.cfg
    }

    /// Encodes one payload, returning the wire frames to send in order.
    ///
    /// Returns one data frame, plus `m` parity frames when this payload
    /// completes a group.
    pub fn push(&mut self, payload: &[u8]) -> Vec<Vec<u8>> {
        let index = self.shards.len() as u8;
        let mut out = Vec::with_capacity(1 + self.cfg.m);
        out.push(
            FecFrame {
                group: self.group,
                index,
                k: self.cfg.k as u8,
                m: self.cfg.m as u8,
                // af-analyze: allow(alloc): the outbound frame owns its payload; the caller buffer is reused per tick
                payload: payload.to_vec(),
            }
            .encode(),
        );
        // Stash the length-prefixed shard for parity.
        let capped = payload.len().min(usize::from(u16::MAX));
        let mut shard = Vec::with_capacity(2 + capped);
        shard.extend_from_slice(&(capped as u16).to_le_bytes());
        shard.extend_from_slice(&payload[..capped]);
        self.shards.push(shard);
        if self.shards.len() == self.cfg.k {
            out.extend(self.close_group());
        }
        out
    }

    /// Closes the open group early (fewer than `k` data shards), emitting
    /// parity over what it holds.  Used at end-of-stream so tail packets
    /// are not left unprotected.
    pub fn flush(&mut self) -> Vec<Vec<u8>> {
        if self.shards.is_empty() {
            return Vec::new();
        }
        // Parity frames declare the short group's true k so the decoder
        // solves the right system.
        self.close_group()
    }

    fn close_group(&mut self) -> Vec<Vec<u8>> {
        let k = self.shards.len();
        let width = self.shards.iter().map(Vec::len).max().unwrap_or(0);
        for shard in &mut self.shards {
            shard.resize(width, 0);
        }
        let mut out = Vec::with_capacity(self.cfg.m);
        for j in 0..self.cfg.m {
            let mut parity = vec![0u8; width];
            for (i, shard) in self.shards.iter().enumerate() {
                gf_mul_acc(&mut parity, shard, cauchy_coeff(j, i));
            }
            out.push(
                FecFrame {
                    group: self.group,
                    index: (k + j) as u8,
                    k: k as u8,
                    m: self.cfg.m as u8,
                    payload: parity,
                }
                .encode(),
            );
        }
        self.shards.clear();
        self.group = self.group.wrapping_add(1);
        out
    }
}

// --- Decoder -------------------------------------------------------------

/// Monotonic counters a [`FecDecoder`] keeps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FecDecoderStats {
    /// Data payloads delivered straight from received data shards.
    pub direct: u64,
    /// Data payloads reconstructed from parity.
    pub recovered: u64,
    /// Data shards lost beyond recovery (group evicted incomplete).
    pub unrecoverable: u64,
    /// Frames discarded as duplicates of an already-seen `(group, index)`.
    pub duplicates: u64,
}

/// Per-group reassembly state.
struct GroupState {
    group: u32,
    k: usize,
    /// Received data shards, length-prefixed form, by index.
    data: Vec<Option<Vec<u8>>>,
    /// Received parity shards by parity row.
    parity: Vec<Option<Vec<u8>>>,
    /// Which data indices were already delivered to the caller.
    delivered: Vec<bool>,
    /// Whether reconstruction already ran (or became unnecessary).
    done: bool,
}

/// Reassembles FEC frames into payloads, reconstructing missing data
/// shards as soon as any `k` of a group's shards are on hand.
///
/// Duplicated frames are dropped, reordered frames slot into place by
/// `(group, index)`, and at most [`FEC_GROUP_WINDOW`] incomplete groups
/// are retained (oldest evicted first), so memory is bounded no matter
/// what the network does.
pub struct FecDecoder {
    groups: VecDeque<GroupState>,
    stats: FecDecoderStats,
}

impl Default for FecDecoder {
    fn default() -> Self {
        FecDecoder::new()
    }
}

impl FecDecoder {
    /// Creates an empty decoder.
    pub fn new() -> FecDecoder {
        FecDecoder {
            groups: VecDeque::new(),
            stats: FecDecoderStats::default(),
        }
    }

    /// The decoder's counters.
    pub fn stats(&self) -> FecDecoderStats {
        self.stats
    }

    /// Feeds one parsed frame; returns newly available data payloads.
    ///
    /// A data frame's own payload is always delivered immediately (unless
    /// it is a duplicate); reconstruction of *other* shards may add more.
    pub fn push(&mut self, frame: FecFrame) -> Vec<Vec<u8>> {
        let k = usize::from(frame.k);
        let m = usize::from(frame.m);
        let group = frame.group;
        let slot = match self.groups.iter().position(|g| g.group == group) {
            Some(i) => i,
            None => {
                if self.groups.len() >= FEC_GROUP_WINDOW {
                    self.evict_oldest();
                }
                self.groups.push_back(GroupState {
                    group,
                    k,
                    data: vec![None; k],
                    parity: vec![None; m],
                    delivered: vec![false; k],
                    done: false,
                });
                self.groups.len() - 1
            }
        };
        // af-analyze: allow(alloc): empty Vec::new is allocation-free; only the loss-recovery path pushes into it
        let mut out = Vec::new();
        {
            let st = &mut self.groups[slot];
            // Classify by the *frame's own* k: data frames of a tail group
            // optimistically declare the configured k (they go out before
            // the group closes short), while parity frames always declare
            // the group's true k.
            let idx = usize::from(frame.index);
            if idx < k {
                // Data shard.  An index at or past the group's (possibly
                // already corrected) shape cannot exist; drop it.
                if idx >= st.k {
                    return out;
                }
                if st.data[idx].is_some() {
                    self.stats.duplicates += 1;
                    return out;
                }
                // Deliver the direct payload now; keep the length-prefixed
                // form for parity math.
                let mut shard = Vec::with_capacity(2 + frame.payload.len());
                let capped = frame.payload.len().min(usize::from(u16::MAX));
                shard.extend_from_slice(&(capped as u16).to_le_bytes());
                shard.extend_from_slice(&frame.payload[..capped]);
                st.data[idx] = Some(shard);
                if !st.delivered[idx] {
                    st.delivered[idx] = true;
                    self.stats.direct += 1;
                    out.push(frame.payload);
                }
            } else {
                // Parity shard: its declared k is authoritative, so a
                // shape recorded from data frames shrinks to the true one
                // (the excess slots never had shards on the wire).
                if k < st.k {
                    st.data.truncate(k);
                    st.delivered.truncate(k);
                    st.k = k;
                }
                let row = idx - k;
                if row >= st.parity.len() {
                    return out; // Index beyond this group's recorded shape.
                }
                if st.parity[row].is_some() {
                    self.stats.duplicates += 1;
                    return out;
                }
                st.parity[row] = Some(frame.payload);
            }
        }
        out.extend(self.try_reconstruct(slot));
        // Completed groups stay in the window (until evicted) so late
        // duplicates of their shards are still recognized as duplicates.
        out
    }

    /// Attempts reconstruction of group `slot`; returns recovered payloads.
    fn try_reconstruct(&mut self, slot: usize) -> Vec<Vec<u8>> {
        let st = &mut self.groups[slot];
        if st.done {
            return Vec::new();
        }
        let have_data = st.data.iter().filter(|d| d.is_some()).count();
        if have_data == st.k {
            st.done = true;
            return Vec::new();
        }
        let missing: Vec<usize> = (0..st.k).filter(|&i| st.data[i].is_none()).collect();
        let parity_rows: Vec<usize> = (0..st.parity.len())
            .filter(|&j| st.parity[j].is_some())
            .collect();
        if parity_rows.len() < missing.len() {
            return Vec::new(); // Not yet solvable; wait for more shards.
        }
        let width = st
            .parity
            .iter()
            .flatten()
            .map(Vec::len)
            .max()
            .unwrap_or(0);
        let e = missing.len();
        let rows = &parity_rows[..e];
        // b_r = parity_r XOR sum(coeff * present data shards).
        let mut rhs: Vec<Vec<u8>> = rows
            .iter()
            .map(|&j| {
                let mut b = vec![0u8; width];
                if let Some(p) = &st.parity[j] {
                    b[..p.len()].copy_from_slice(p);
                }
                for (i, shard) in st.data.iter().enumerate() {
                    if let Some(s) = shard {
                        // Present shards are <= width; pad implicitly.
                        let mut padded = vec![0u8; width];
                        padded[..s.len().min(width)]
                            .copy_from_slice(&s[..s.len().min(width)]);
                        gf_mul_acc(&mut b, &padded, cauchy_coeff(j, i));
                    }
                }
                b
            })
            .collect();
        // Solve M x = rhs where M[r][c] = coeff(rows[r], missing[c]).
        let mut mat: Vec<Vec<u8>> = rows
            .iter()
            .map(|&j| missing.iter().map(|&i| cauchy_coeff(j, i)).collect())
            .collect();
        // Gaussian elimination with partial pivot over GF(256).
        for col in 0..e {
            let Some(pivot) = (col..e).find(|&r| mat[r][col] != 0) else {
                return Vec::new(); // Singular (cannot happen with Cauchy).
            };
            mat.swap(col, pivot);
            rhs.swap(col, pivot);
            let inv = gf_inv(mat[col][col]);
            for v in &mut mat[col][col..e] {
                *v = gf_mul(*v, inv);
            }
            let scaled: Vec<u8> = rhs[col].iter().map(|&b| gf_mul(b, inv)).collect();
            rhs[col] = scaled;
            let pivot_row: Vec<u8> = mat[col][col..e].to_vec();
            for r in 0..e {
                if r != col && mat[r][col] != 0 {
                    let f = mat[r][col];
                    for (v, &p) in mat[r][col..e].iter_mut().zip(&pivot_row) {
                        *v ^= gf_mul(f, p);
                    }
                    let (head, tail) = if r < col {
                        let (h, t) = rhs.split_at_mut(col);
                        (&mut h[r], &t[0])
                    } else {
                        let (h, t) = rhs.split_at_mut(r);
                        (&mut t[0], &h[col])
                    };
                    gf_mul_acc(head, tail, f);
                }
            }
        }
        let mut out = Vec::with_capacity(e);
        for (c, &idx) in missing.iter().enumerate() {
            let shard = std::mem::take(&mut rhs[c]);
            // Strip the length prefix back off.
            let payload = if shard.len() >= 2 {
                let len = usize::from(u16::from_le_bytes([shard[0], shard[1]]));
                shard[2..shard.len().min(2 + len).max(2)].to_vec()
            } else {
                Vec::new()
            };
            st.data[idx] = Some(shard);
            if !st.delivered[idx] {
                st.delivered[idx] = true;
                self.stats.recovered += 1;
                out.push(payload);
            }
        }
        st.done = true;
        out
    }

    fn evict_oldest(&mut self) {
        if let Some(st) = self.groups.pop_front() {
            let lost = st.delivered.iter().filter(|&&d| !d).count();
            self.stats.unrecoverable += lost as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(cfg: FecConfig, payloads: &[&[u8]], drop: &[usize]) -> Vec<Vec<u8>> {
        let mut enc = FecEncoder::new(cfg);
        let mut frames = Vec::new();
        for p in payloads {
            frames.extend(enc.push(p));
        }
        frames.extend(enc.flush());
        let mut dec = FecDecoder::new();
        let mut got = Vec::new();
        for (i, f) in frames.iter().enumerate() {
            if drop.contains(&i) {
                continue;
            }
            let frame = FecFrame::decode(f).expect("frame decodes");
            got.extend(dec.push(frame));
        }
        got
    }

    #[test]
    fn lossless_stream_is_delivered_in_order() {
        let payloads: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 10 + usize::from(i)]).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        let got = round_trip(FecConfig::new(4, 2), &refs, &[]);
        assert_eq!(got, payloads);
    }

    #[test]
    fn single_loss_recovers_from_xor_parity() {
        // Frames: d0 d1 d2 d3 p0 p1 — drop d1.
        let payloads: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i * 3; 16]).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        let got = round_trip(FecConfig::new(4, 2), &refs, &[1]);
        assert_eq!(got.len(), 4);
        // d1 arrives last (recovered), others direct.
        assert!(got.contains(&payloads[1]));
    }

    #[test]
    fn burst_of_m_losses_recovers() {
        let payloads: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i + 1; 32]).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        // Drop d1 and d2 — a burst of m = 2 inside one group.
        let got = round_trip(FecConfig::new(4, 2), &refs, &[1, 2]);
        let mut sorted = got.clone();
        sorted.sort();
        let mut want = payloads.clone();
        want.sort();
        assert_eq!(sorted, want);
    }

    #[test]
    fn mixed_data_and_parity_loss_recovers() {
        let payloads: Vec<Vec<u8>> = (0..4u8).map(|i| vec![0xA0 ^ i; 24]).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        // Drop d0 and p0: the solver must use the Cauchy row, not plain XOR.
        let got = round_trip(FecConfig::new(4, 2), &refs, &[0, 4]);
        let mut sorted = got.clone();
        sorted.sort();
        let mut want = payloads;
        want.sort();
        assert_eq!(sorted, want);
    }

    #[test]
    fn variable_lengths_reconstruct_exactly() {
        let payloads: Vec<Vec<u8>> = vec![vec![7; 3], vec![8; 100], vec![9; 1], vec![10; 57]];
        let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        for dropped in 0..4 {
            let got = round_trip(FecConfig::new(4, 2), &refs, &[dropped]);
            let mut sorted = got.clone();
            sorted.sort();
            let mut want = payloads.clone();
            want.sort();
            assert_eq!(sorted, want, "dropping frame {dropped}");
        }
    }

    #[test]
    fn duplicates_and_reorder_do_not_double_deliver() {
        let payloads: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 8]).collect();
        let mut enc = FecEncoder::new(FecConfig::new(4, 2));
        let mut frames = Vec::new();
        for p in &payloads {
            frames.extend(enc.push(p));
        }
        frames.reverse(); // Fully reversed arrival order.
        let doubled: Vec<Vec<u8>> = frames.iter().cloned().chain(frames.clone()).collect();
        let mut dec = FecDecoder::new();
        let mut got = Vec::new();
        for f in &doubled {
            got.extend(dec.push(FecFrame::decode(f).expect("decodes")));
        }
        assert_eq!(got.len(), 4);
        assert!(dec.stats().duplicates > 0);
    }

    #[test]
    fn corrupted_frame_is_rejected_by_crc() {
        let mut enc = FecEncoder::new(FecConfig::new(2, 1));
        let frames = enc.push(&[1, 2, 3]);
        let mut bad = frames[0].clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x10;
        assert_eq!(FecFrame::decode(&bad), None);
        assert!(FecFrame::decode(&frames[0]).is_some());
    }

    #[test]
    fn flush_protects_short_tail_group() {
        let mut enc = FecEncoder::new(FecConfig::new(4, 2));
        let mut frames = enc.push(&[42; 20]);
        frames.extend(enc.push(&[43; 20]));
        frames.extend(enc.flush()); // Group closed at k = 2.
        assert_eq!(frames.len(), 4); // 2 data + 2 parity.
        let mut dec = FecDecoder::new();
        // Drop both data frames; parity alone must rebuild them.
        let mut got = Vec::new();
        for f in &frames[2..] {
            got.extend(dec.push(FecFrame::decode(f).expect("decodes")));
        }
        let mut sorted = got;
        sorted.sort();
        assert_eq!(sorted, vec![vec![42; 20], vec![43; 20]]);
    }

    #[test]
    fn group_window_is_bounded() {
        let mut dec = FecDecoder::new();
        // Feed one lone data shard from many distinct groups.
        for g in 0..(FEC_GROUP_WINDOW as u32 + 8) {
            let f = FecFrame {
                group: g,
                index: 0,
                k: 4,
                m: 2,
                payload: vec![1],
            };
            dec.push(f);
        }
        assert!(dec.groups.len() <= FEC_GROUP_WINDOW);
    }

    #[test]
    fn gf_field_sanity() {
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "a = {a}");
        }
        assert_eq!(gf_mul(0, 7), 0);
        // Row 0 of the normalized Cauchy matrix is all ones.
        for i in 0..FEC_MAX_K {
            assert_eq!(cauchy_coeff(0, i), 1);
        }
    }

    #[test]
    fn crc_known_value() {
        // CRC-32 ("123456789") = 0xCBF43926, the standard check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
