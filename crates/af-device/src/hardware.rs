//! The virtual audio device: rings + clock + endpoints.
//!
//! On LoFi, interrupt routines ran once per sample: write the play sample
//! from the ring to the CODEC, backfill the ring with silence, read the
//! CODEC into the record ring, increment the time counter (§7.4.1).  A
//! software simulation cannot take an interrupt per sample, so
//! [`VirtualAudioHw::service`] performs the same work in batches: each call
//! catches the rings up to the current clock reading.  The server's periodic
//! update task calls it, exactly as its update task kept the DSP buffers
//! consistent.

use crate::clock::SharedClock;
use crate::io::{SampleSink, SampleSource};
use crate::ring::HwRing;
use af_dsp::{silence, Encoding};
use af_time::ATime;

/// Static description of a virtual device's format.
#[derive(Clone, Copy, Debug)]
pub struct HwConfig {
    /// Native sample encoding of the rings.
    pub encoding: Encoding,
    /// Nominal sample rate in Hz.
    pub rate: u32,
    /// Interleaved channels per frame.
    pub channels: u8,
    /// Ring capacity in frames; must be a power of two.
    pub ring_frames: u32,
}

impl HwConfig {
    /// The LoFi CODEC configuration: 8 kHz µ-law mono, 1024-sample rings.
    pub fn codec() -> HwConfig {
        HwConfig {
            encoding: Encoding::Mu255,
            rate: 8000,
            channels: 1,
            ring_frames: 1024,
        }
    }

    /// The LoFi HiFi configuration: 44.1 kHz 16-bit stereo, 4096-sample
    /// rings.
    pub fn hifi() -> HwConfig {
        HwConfig {
            encoding: Encoding::Lin16,
            rate: 44_100,
            channels: 2,
            ring_frames: 4096,
        }
    }

    /// Bytes per frame (one sample across all channels).
    pub fn frame_bytes(&self) -> usize {
        self.encoding.bytes_for_samples(1) * self.channels as usize
    }

    /// The byte representing silence in the native encoding.
    pub fn silence_byte(&self) -> u8 {
        silence::silence_byte(self.encoding).unwrap_or(0)
    }
}

/// A simulated audio device: hardware rings serviced against a clock.
pub struct VirtualAudioHw {
    cfg: HwConfig,
    clock: SharedClock,
    play_ring: HwRing,
    rec_ring: HwRing,
    played_until: ATime,
    recorded_until: ATime,
    sink: Box<dyn SampleSink>,
    source: Box<dyn SampleSource>,
    /// Frames skipped because `service` ran later than one ring length.
    pub xrun_frames: u64,
}

impl VirtualAudioHw {
    /// Creates a device over `clock` with the given endpoints.
    pub fn new(
        cfg: HwConfig,
        clock: SharedClock,
        sink: Box<dyn SampleSink>,
        source: Box<dyn SampleSource>,
    ) -> VirtualAudioHw {
        let fill = cfg.silence_byte();
        let now = clock.now();
        VirtualAudioHw {
            play_ring: HwRing::new(cfg.ring_frames, cfg.frame_bytes(), fill),
            rec_ring: HwRing::new(cfg.ring_frames, cfg.frame_bytes(), fill),
            cfg,
            clock,
            played_until: now,
            recorded_until: now,
            sink,
            source,
            xrun_frames: 0,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &HwConfig {
        &self.cfg
    }

    /// The current device time (the hardware time counter).
    pub fn now(&self) -> ATime {
        self.clock.now()
    }

    /// The device clock.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// Replaces the output endpoint, returning the old one.
    pub fn set_sink(&mut self, sink: Box<dyn SampleSink>) -> Box<dyn SampleSink> {
        std::mem::replace(&mut self.sink, sink)
    }

    /// Replaces the input endpoint, returning the old one.
    pub fn set_source(&mut self, source: Box<dyn SampleSource>) -> Box<dyn SampleSource> {
        std::mem::replace(&mut self.source, source)
    }

    /// Catches the hardware up to the current clock reading.
    ///
    /// Consumes play-ring frames into the sink (backfilling silence, as the
    /// firmware does), fills record-ring frames from the source, and returns
    /// the device time the hardware is now consistent through.
    pub fn service(&mut self) -> ATime {
        let now = self.clock.now();
        self.service_play(now);
        self.service_record(now);
        now
    }

    fn service_play(&mut self, now: ATime) {
        let mut span = now - self.played_until;
        if span <= 0 {
            return;
        }
        if span as u32 > self.cfg.ring_frames {
            // Ran too late: the ring was lapped.  Skip ahead; the skipped
            // interval is unrecoverable, as on real hardware.
            let skipped = span as u32 - self.cfg.ring_frames;
            self.xrun_frames += u64::from(skipped);
            self.played_until += skipped;
            span = self.cfg.ring_frames as i32;
        }
        let nbytes = span as usize * self.cfg.frame_bytes();
        let mut buf = vec![0u8; nbytes];
        self.play_ring.read_at(self.played_until, &mut buf);
        self.sink.consume(self.played_until, &buf);
        // Backfill with silence so stale data never replays.
        self.play_ring
            .fill_at(self.played_until, span as u32, self.cfg.silence_byte());
        self.played_until = now;
    }

    fn service_record(&mut self, now: ATime) {
        let mut span = now - self.recorded_until;
        if span <= 0 {
            return;
        }
        if span as u32 > self.cfg.ring_frames {
            let skipped = span as u32 - self.cfg.ring_frames;
            self.xrun_frames += u64::from(skipped);
            self.recorded_until += skipped;
            span = self.cfg.ring_frames as i32;
        }
        let nbytes = span as usize * self.cfg.frame_bytes();
        let mut buf = vec![0u8; nbytes];
        self.source.fill(self.recorded_until, &mut buf);
        self.rec_ring.write_at(self.recorded_until, &buf);
        self.recorded_until = now;
    }

    /// Device time through which recorded data is available.
    pub fn recorded_until(&self) -> ATime {
        self.recorded_until
    }

    /// Device time through which play data has been consumed; writes at or
    /// before this time are lost.
    pub fn played_until(&self) -> ATime {
        self.played_until
    }

    /// Writes play data into the hardware ring at `time` (whole frames).
    ///
    /// The caller (the server's update task or write-through path) is
    /// responsible for writing only within the ring's future window; writes
    /// wholly in the consumed past are dropped here as a safety net.
    pub fn write_play(&mut self, time: ATime, data: &[u8]) {
        let fb = self.cfg.frame_bytes();
        debug_assert_eq!(data.len() % fb, 0);
        let nframes = (data.len() / fb) as i32;
        let behind = self.played_until - time;
        if behind >= nframes {
            return; // Entirely consumed already.
        }
        if behind > 0 {
            // Clip the already-consumed prefix.
            let skip = behind as usize * fb;
            self.play_ring.write_at(self.played_until, &data[skip..]);
        } else {
            self.play_ring.write_at(time, data);
        }
    }

    /// Reads recorded data from the hardware ring at `time` (whole frames).
    pub fn read_rec(&self, time: ATime, out: &mut [u8]) {
        debug_assert_eq!(out.len() % self.cfg.frame_bytes(), 0);
        self.rec_ring.read_at(time, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, VirtualClock};
    use crate::io::{CaptureSink, SilenceSource, ToneSource};
    use std::sync::Arc;

    fn virtual_codec() -> (VirtualAudioHw, Arc<VirtualClock>, crate::io::CaptureBuffer) {
        let clock = Arc::new(VirtualClock::new(8000));
        let (sink, capture) = CaptureSink::new(1 << 20);
        let hw = VirtualAudioHw::new(
            HwConfig::codec(),
            clock.clone(),
            Box::new(sink),
            Box::new(SilenceSource::new(0xFF)),
        );
        (hw, clock, capture)
    }

    #[test]
    fn unwritten_playback_is_silence() {
        let (mut hw, clock, capture) = virtual_codec();
        clock.advance(100);
        hw.service();
        assert_eq!(*capture.lock(), vec![0xFF; 100]);
    }

    #[test]
    fn written_playback_reaches_sink_at_right_time() {
        let (mut hw, clock, capture) = virtual_codec();
        // Schedule 10 marked frames at t=50.
        hw.write_play(ATime::new(50), &[0x11; 10]);
        clock.advance(200);
        hw.service();
        let cap = capture.lock();
        assert_eq!(cap.len(), 200);
        assert_eq!(&cap[..50], &vec![0xFF; 50][..]);
        assert_eq!(&cap[50..60], &[0x11; 10][..]);
        assert_eq!(&cap[60..], &vec![0xFF; 140][..]);
    }

    #[test]
    fn silence_backfill_prevents_replay() {
        let (mut hw, clock, capture) = virtual_codec();
        hw.write_play(ATime::new(0), &[0x22; 64]);
        clock.advance(64);
        hw.service();
        // One full ring later the same ring slots come around again.
        clock.advance(1024);
        hw.service();
        let cap = capture.lock();
        assert_eq!(&cap[..64], &[0x22; 64][..]);
        assert!(cap[64..].iter().all(|&b| b == 0xFF), "stale data replayed");
    }

    #[test]
    fn record_captures_source() {
        let clock = Arc::new(VirtualClock::new(8000));
        let mut hw = VirtualAudioHw::new(
            HwConfig::codec(),
            clock.clone(),
            Box::new(crate::io::NullSink),
            Box::new(ToneSource::ulaw(440.0, 8000.0, 10_000.0)),
        );
        clock.advance(512);
        hw.service();
        let mut buf = vec![0u8; 512];
        hw.read_rec(ATime::ZERO, &mut buf);
        assert!(buf.iter().any(|&b| b != 0xFF));
        // The recorded tone should measure a sane power.
        let dbm = af_dsp::power::power_dbm_ulaw(&buf);
        assert!(dbm > -20.0, "tone power {dbm}");
    }

    #[test]
    fn late_service_counts_xruns() {
        let (mut hw, clock, capture) = virtual_codec();
        clock.advance(1024 + 500); // Beyond one ring length.
        hw.service();
        // Both the play and the record side skipped 500 frames.
        assert_eq!(hw.xrun_frames, 1000);
        // Only one ring worth of frames was emitted.
        assert_eq!(capture.lock().len(), 1024);
        assert_eq!(hw.played_until(), clock.now());
    }

    #[test]
    fn write_play_clips_consumed_prefix() {
        let (mut hw, clock, capture) = virtual_codec();
        clock.advance(100);
        hw.service();
        // Write 20 frames starting in the consumed past at t=90.
        hw.write_play(ATime::new(90), &[0x33; 20]);
        clock.advance(20);
        hw.service();
        let cap = capture.lock();
        // Frames 100..110 carry the surviving tail of the write.
        assert_eq!(&cap[100..110], &[0x33; 10][..]);
    }

    #[test]
    fn service_is_idempotent_when_time_is_still() {
        let (mut hw, clock, capture) = virtual_codec();
        clock.advance(10);
        hw.service();
        hw.service();
        hw.service();
        assert_eq!(capture.lock().len(), 10);
    }

    #[test]
    fn hifi_frame_bytes() {
        assert_eq!(HwConfig::hifi().frame_bytes(), 4);
        assert_eq!(HwConfig::codec().frame_bytes(), 1);
        assert_eq!(HwConfig::hifi().silence_byte(), 0);
    }
}
