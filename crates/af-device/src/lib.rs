//! Simulated audio hardware for the AudioFile server.
//!
//! The paper's servers drove real devices: the LoFi TURBOchannel module
//! (whose DSP56001 firmware kept small circular play/record buffers and a
//! per-device sample counter in shared memory, §7.4.1), base-board CODECs
//! behind kernel drivers (§7.4.2), and the detached LineServer Ethernet
//! peripheral (§7.4.3).  None of that hardware exists here, so this crate
//! provides faithful software stand-ins that expose the *same abstraction
//! the firmware exported*: circular hardware buffers indexed by a sample
//! clock.
//!
//! * [`clock`] — the sample clock: real-time ([`SystemClock`]) or manually
//!   advanced ([`VirtualClock`]), both with configurable ppm rate error so
//!   clock-drift behaviour (which `apass` must handle, §8.3) is reproducible.
//! * [`ring`] — time-indexed circular sample buffers (the DSP's 1024-sample
//!   CODEC and 4096-sample HiFi rings).
//! * [`hardware`] — [`VirtualAudioHw`]: the "firmware interrupt routine" as
//!   a catch-up task, moving samples between rings and pluggable
//!   sources/sinks.
//! * [`io`] — sample sources and sinks: silence, tones, captures, and
//!   cross-device wires for loopback and teleconferencing experiments.
//! * [`file_io`] — file-backed endpoints: capture the speaker to a file,
//!   feed the microphone from one.
//! * [`phone`] — a simulated analog telephone line with ring cadence, loop
//!   current, hookswitch, and an in-line DTMF decoder.
//! * [`lineserver`] — the LineServer's UDP wire protocol and a firmware
//!   task speaking it over a real socket.
//! * [`fec`] — forward error correction for the LineServer's UDP audio
//!   path: GF(256) parity groups (shard 0 is plain XOR) with CRC framing.
//! * [`jitter`] — the adaptive jitter buffer the Als backend plays
//!   recorded audio through when the link crosses a lossy WAN.

#![forbid(unsafe_code)]
pub mod clock;
pub mod fec;
pub mod file_io;
pub mod hardware;
pub mod io;
pub mod jitter;
pub mod lineserver;
pub mod phone;
pub mod ring;

pub use clock::{Clock, SharedClock, SystemClock, VirtualClock};
pub use fec::{FecConfig, FecDecoder, FecEncoder, FecFrame};
pub use file_io::{FileSink, FileSource};
pub use jitter::{JitterBuffer, LinkStats};
pub use hardware::VirtualAudioHw;
pub use io::{CaptureSink, NullSink, SampleSink, SampleSource, SilenceSource, ToneSource, Wire};
pub use phone::{PhoneLine, PhoneSignal};
pub use ring::HwRing;
