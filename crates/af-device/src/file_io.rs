//! File-backed device endpoints.
//!
//! A [`FileSink`] writes everything a device "plays" to a file (a tape
//! recorder on the speaker jack); a [`FileSource`] feeds a device's
//! microphone from a file, looping, with silence when the file is empty or
//! missing.  Together they let a simulated `afd` consume and produce real
//! audio files without any client in the loop.

use crate::io::{SampleSink, SampleSource};
use af_time::ATime;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Writes played samples to a file, in order, as raw bytes.
pub struct FileSink {
    out: BufWriter<File>,
}

impl FileSink {
    /// Creates (truncating) the capture file.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<FileSink> {
        Ok(FileSink {
            out: BufWriter::new(File::create(path)?),
        })
    }
}

impl SampleSink for FileSink {
    fn consume(&mut self, _time: ATime, data: &[u8]) {
        // Best-effort: a full disk should not take the server down.
        let _ = self.out.write_all(data);
        let _ = self.out.flush();
    }
}

/// Feeds recorded samples from a raw file, looping at EOF.
pub struct FileSource {
    input: Option<BufReader<File>>,
    silence: u8,
    looping: bool,
    exhausted: bool,
}

impl FileSource {
    /// Opens the file; `silence` pads after EOF when not looping.
    pub fn open<P: AsRef<Path>>(
        path: P,
        silence: u8,
        looping: bool,
    ) -> std::io::Result<FileSource> {
        Ok(FileSource {
            input: Some(BufReader::new(File::open(path)?)),
            silence,
            looping,
            exhausted: false,
        })
    }
}

impl SampleSource for FileSource {
    fn fill(&mut self, _time: ATime, out: &mut [u8]) {
        let mut filled = 0;
        while filled < out.len() && !self.exhausted {
            let Some(input) = self.input.as_mut() else {
                break;
            };
            match input.read(&mut out[filled..]) {
                Ok(0) => {
                    if self.looping {
                        if input.seek(SeekFrom::Start(0)).is_err() {
                            self.exhausted = true;
                        }
                        // An empty file would loop forever: probe once.
                        let mut probe = [0u8; 1];
                        match input.read(&mut probe) {
                            Ok(1) => {
                                out[filled] = probe[0];
                                filled += 1;
                            }
                            _ => self.exhausted = true,
                        }
                    } else {
                        self.exhausted = true;
                    }
                }
                Ok(n) => filled += n,
                Err(_) => self.exhausted = true,
            }
        }
        for b in &mut out[filled..] {
            *b = self.silence;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("af-fileio-{}-{name}", std::process::id()))
    }

    #[test]
    fn sink_writes_in_order() {
        let path = tmp("sink.ul");
        {
            let mut sink = FileSink::create(&path).unwrap();
            sink.consume(ATime::ZERO, &[1, 2, 3]);
            sink.consume(ATime::new(3), &[4, 5]);
        }
        assert_eq!(std::fs::read(&path).unwrap(), vec![1, 2, 3, 4, 5]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn source_loops_and_pads() {
        let path = tmp("src.ul");
        std::fs::write(&path, [10u8, 20, 30]).unwrap();
        let mut looping = FileSource::open(&path, 0xFF, true).unwrap();
        let mut out = [0u8; 8];
        looping.fill(ATime::ZERO, &mut out);
        assert_eq!(out, [10, 20, 30, 10, 20, 30, 10, 20]);

        let mut oneshot = FileSource::open(&path, 0xFF, false).unwrap();
        let mut out = [0u8; 5];
        oneshot.fill(ATime::ZERO, &mut out);
        assert_eq!(out, [10, 20, 30, 0xFF, 0xFF]);
        // Further fills are all silence.
        oneshot.fill(ATime::ZERO, &mut out);
        assert_eq!(out, [0xFF; 5]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_file_yields_silence_not_hang() {
        let path = tmp("empty.ul");
        std::fs::write(&path, []).unwrap();
        let mut src = FileSource::open(&path, 0x7F, true).unwrap();
        let mut out = [0u8; 4];
        src.fill(ATime::ZERO, &mut out);
        assert_eq!(out, [0x7F; 4]);
        let _ = std::fs::remove_file(&path);
    }
}
