//! Sample sources and sinks — where device audio comes from and goes to.
//!
//! Real hardware converts between samples and sound; the simulation
//! converts between samples and pluggable endpoints.  Sinks receive what
//! the device "plays" (a loudspeaker stand-in), sources supply what it
//! "records" (a microphone stand-in).  [`Wire`] connects a sink to a source
//! so that audio played on one device is recorded by another — the shape of
//! the LoFi pass-through path and of every loopback experiment in §10.

use af_time::ATime;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// Consumes samples the device plays.
pub trait SampleSink: Send {
    /// Receives `data` played starting at device time `time`.
    fn consume(&mut self, time: ATime, data: &[u8]);
}

/// Supplies samples the device records.
pub trait SampleSource: Send {
    /// Fills `out` with input starting at device time `time`.
    fn fill(&mut self, time: ATime, out: &mut [u8]);
}

/// A sink that discards everything (an unplugged speaker).
#[derive(Debug, Default)]
pub struct NullSink;

impl SampleSink for NullSink {
    fn consume(&mut self, _time: ATime, _data: &[u8]) {}
}

/// A source that produces constant silence (an unplugged microphone).
#[derive(Debug)]
pub struct SilenceSource {
    silence: u8,
}

impl SilenceSource {
    /// Creates a source emitting the given silence byte.
    pub fn new(silence: u8) -> SilenceSource {
        SilenceSource { silence }
    }
}

impl SampleSource for SilenceSource {
    fn fill(&mut self, _time: ATime, out: &mut [u8]) {
        out.fill(self.silence);
    }
}

/// Shared capture storage written by a [`CaptureSink`].
pub type CaptureBuffer = Arc<Mutex<Vec<u8>>>;

/// A sink that appends everything played to a shared buffer, up to a cap.
///
/// Tests and examples read the buffer to assert on what "came out of the
/// loudspeaker".
pub struct CaptureSink {
    buffer: CaptureBuffer,
    max_bytes: usize,
    first_time: Option<ATime>,
}

impl CaptureSink {
    /// Creates a capture sink and returns it with its shared buffer.
    pub fn new(max_bytes: usize) -> (CaptureSink, CaptureBuffer) {
        let buffer: CaptureBuffer = Arc::default();
        (
            CaptureSink {
                buffer: Arc::clone(&buffer),
                max_bytes,
                first_time: None,
            },
            buffer,
        )
    }

    /// Device time of the first captured byte, if any.
    pub fn first_time(&self) -> Option<ATime> {
        self.first_time
    }
}

impl SampleSink for CaptureSink {
    fn consume(&mut self, time: ATime, data: &[u8]) {
        if self.first_time.is_none() && !data.is_empty() {
            self.first_time = Some(time);
        }
        let mut buf = self.buffer.lock();
        let room = self.max_bytes.saturating_sub(buf.len());
        buf.extend_from_slice(&data[..data.len().min(room)]);
    }
}

/// A source that synthesizes a sine tone in µ-law or 16-bit linear.
pub struct ToneSource {
    osc: af_dsp::tone::Oscillator,
    ulaw: bool,
}

impl ToneSource {
    /// A µ-law tone source (one byte per sample).
    pub fn ulaw(freq: f64, sample_rate: f64, peak: f32) -> ToneSource {
        ToneSource {
            osc: af_dsp::tone::Oscillator::new(freq, sample_rate, peak),
            ulaw: true,
        }
    }

    /// A 16-bit linear little-endian tone source (two bytes per sample).
    pub fn lin16(freq: f64, sample_rate: f64, peak: f32) -> ToneSource {
        ToneSource {
            osc: af_dsp::tone::Oscillator::new(freq, sample_rate, peak),
            ulaw: false,
        }
    }
}

impl SampleSource for ToneSource {
    fn fill(&mut self, _time: ATime, out: &mut [u8]) {
        if self.ulaw {
            for b in out.iter_mut() {
                let v = self.osc.next_sample().clamp(-32_768.0, 32_767.0) as i16;
                *b = af_dsp::g711::linear_to_ulaw(v);
            }
        } else {
            for pair in out.chunks_exact_mut(2) {
                let v = self.osc.next_sample().clamp(-32_768.0, 32_767.0) as i16;
                pair.copy_from_slice(&v.to_le_bytes());
            }
        }
    }
}

/// A byte FIFO connecting one device's output to another device's input.
///
/// The playing side's sink end pushes; the recording side's source end pops,
/// padding with the silence byte when the queue runs dry (as a real analog
/// link is silent when nobody talks).  Clone the wire to hand one end to
/// each device.
#[derive(Clone)]
pub struct Wire {
    inner: Arc<Mutex<WireInner>>,
}

struct WireInner {
    queue: VecDeque<u8>,
    silence: u8,
    max_bytes: usize,
    /// Total bytes ever dropped because the queue was full.
    overruns: u64,
    /// Total bytes padded because the queue was empty.
    underruns: u64,
}

impl Wire {
    /// Creates a wire buffering at most `max_bytes`, padding with `silence`.
    pub fn new(max_bytes: usize, silence: u8) -> Wire {
        Wire {
            inner: Arc::new(Mutex::new(WireInner {
                queue: VecDeque::new(),
                silence,
                max_bytes,
                overruns: 0,
                underruns: 0,
            })),
        }
    }

    /// A sink that feeds this wire.
    pub fn sink(&self) -> WireSink {
        WireSink { wire: self.clone() }
    }

    /// A source that drains this wire.
    pub fn source(&self) -> WireSource {
        WireSource { wire: self.clone() }
    }

    /// Queued bytes.
    pub fn queued(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// `(overrun_bytes, underrun_bytes)` counters.
    pub fn stats(&self) -> (u64, u64) {
        let g = self.inner.lock();
        (g.overruns, g.underruns)
    }

    /// Pushes bytes directly (for tests and phone-line injection).
    pub fn push(&self, data: &[u8]) {
        let mut g = self.inner.lock();
        let room = g.max_bytes.saturating_sub(g.queue.len());
        let take = data.len().min(room);
        g.queue.extend(&data[..take]);
        g.overruns += (data.len() - take) as u64;
    }

    /// Pops bytes directly, padding with silence.
    pub fn pop(&self, out: &mut [u8]) {
        let mut g = self.inner.lock();
        for b in out.iter_mut() {
            match g.queue.pop_front() {
                Some(v) => *b = v,
                None => {
                    *b = g.silence;
                    g.underruns += 1;
                }
            }
        }
    }
}

/// The feeding end of a [`Wire`].
pub struct WireSink {
    wire: Wire,
}

impl SampleSink for WireSink {
    fn consume(&mut self, _time: ATime, data: &[u8]) {
        self.wire.push(data);
    }
}

/// The draining end of a [`Wire`].
pub struct WireSource {
    wire: Wire,
}

impl SampleSource for WireSource {
    fn fill(&mut self, _time: ATime, out: &mut [u8]) {
        self.wire.pop(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_sink_records_and_caps() {
        let (mut sink, buf) = CaptureSink::new(8);
        sink.consume(ATime::new(5), &[1, 2, 3, 4, 5, 6]);
        sink.consume(ATime::new(11), &[7, 8, 9, 10]);
        assert_eq!(*buf.lock(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(sink.first_time(), Some(ATime::new(5)));
    }

    #[test]
    fn silence_source_fills() {
        let mut s = SilenceSource::new(0xFF);
        let mut out = [0u8; 4];
        s.fill(ATime::ZERO, &mut out);
        assert_eq!(out, [0xFF; 4]);
    }

    #[test]
    fn tone_source_ulaw_nonsilent() {
        let mut s = ToneSource::ulaw(440.0, 8000.0, 10_000.0);
        let mut out = [0u8; 256];
        s.fill(ATime::ZERO, &mut out);
        assert!(out.iter().any(|&b| b != af_dsp::g711::ULAW_SILENCE));
    }

    #[test]
    fn wire_passes_bytes_in_order() {
        let w = Wire::new(64, 0xFF);
        let mut sink = w.sink();
        let mut source = w.source();
        sink.consume(ATime::ZERO, &[1, 2, 3]);
        let mut out = [0u8; 5];
        source.fill(ATime::ZERO, &mut out);
        // Underruns padded with silence.
        assert_eq!(out, [1, 2, 3, 0xFF, 0xFF]);
        assert_eq!(w.stats(), (0, 2));
    }

    #[test]
    fn wire_overrun_drops_and_counts() {
        let w = Wire::new(4, 0);
        w.push(&[1, 2, 3, 4, 5, 6]);
        assert_eq!(w.queued(), 4);
        assert_eq!(w.stats().0, 2);
        let mut out = [0u8; 4];
        w.pop(&mut out);
        assert_eq!(out, [1, 2, 3, 4]);
    }
}
