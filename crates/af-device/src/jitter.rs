//! Adaptive jitter buffer for the LineServer record path.
//!
//! Over a clean LAN the Als backend can fetch recorded samples
//! request/reply and hand them straight to the mixer.  Over a lossy,
//! jittery WAN the replies arrive late, early, out of order, or not at
//! all; this buffer sits between the link and the mixer and turns that
//! mess back into a continuous sample stream by *playing out behind
//! real time*:
//!
//! * Recorded samples are inserted at their device-time position as they
//!   arrive (in any order, including FEC-recovered ones).
//! * Reads for device time `t` are served from recorded time
//!   `t − depth`, where `depth` is the current playout delay in ticks —
//!   the whole recorded timeline is shifted by `depth`, trading latency
//!   for completeness.
//! * `depth` adapts: an RFC 3550-style EWMA of inter-arrival jitter plus
//!   a 95th-percentile window pick the target, clamped to
//!   [[`JITTER_MIN_DEPTH`], [`JITTER_MAX_DEPTH`]] and slewed at most
//!   [`DEPTH_SLEW_TICKS`] per read so the playout point never jumps far.
//! * Samples that still aren't there when their playout time comes are
//!   *concealed*: the last good audio is repeated with a linear fade for
//!   up to [`JITTER_FADE_TICKS`] ticks, then µ-law silence.
//!
//! The buffer never reads a clock — callers pass device times and
//! transit observations in — so it stays deterministic under test and
//! clean under the `wallclock` lint.

use af_proto::link::{JITTER_FADE_TICKS, JITTER_MAX_DEPTH, JITTER_MIN_DEPTH};
use af_time::ATime;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Ring capacity in samples; must exceed [`JITTER_MAX_DEPTH`] so the
/// deepest playout delay still fits with room for early arrivals.
const RING: usize = 8192;

/// Maximum change of the playout depth per read call, in ticks (8 ms at
/// 8 kHz) — bounds the audible discontinuity when the target moves.
pub const DEPTH_SLEW_TICKS: u32 = 64;

/// How many of the most recent good samples are kept for concealment.
const TAIL_SAMPLES: usize = 160;

/// Inter-arrival delay window size for the percentile estimate.
const DELAY_WINDOW: usize = 64;

// --- Per-link statistics -------------------------------------------------

/// Health counters for one LineServer link, shared between the backend
/// (which writes them) and [`ServerStats`](https://docs.rs) consumers.
/// All fields are monotonic counters except the two `*_depth` gauges.
#[derive(Debug, Default)]
pub struct LinkStats {
    /// Samples concealed (repeated/faded or silenced) at playout time.
    pub conceals: AtomicU64,
    /// Inserts that arrived out of order and were slotted into place.
    pub reorders: AtomicU64,
    /// Samples that arrived after their playout time had already passed.
    pub late_drops: AtomicU64,
    /// Data packets reconstructed from FEC parity.
    pub fec_recovered: AtomicU64,
    /// Data packets lost beyond FEC recovery.
    pub fec_unrecoverable: AtomicU64,
    /// Datagrams dropped by CRC / frame validation.
    pub crc_drops: AtomicU64,
    /// Control-path retransmissions performed by the link.
    pub retransmits: AtomicU64,
    /// Times the link was declared down after retry exhaustion.
    pub link_downs: AtomicU64,
    /// Current playout depth in ticks (gauge).
    pub depth: AtomicU64,
    /// Adaptive target depth in ticks (gauge).
    pub target_depth: AtomicU64,
}

/// Point-in-time copy of [`LinkStats`] with plain integers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStatsSnapshot {
    /// See [`LinkStats::conceals`].
    pub conceals: u64,
    /// See [`LinkStats::reorders`].
    pub reorders: u64,
    /// See [`LinkStats::late_drops`].
    pub late_drops: u64,
    /// See [`LinkStats::fec_recovered`].
    pub fec_recovered: u64,
    /// See [`LinkStats::fec_unrecoverable`].
    pub fec_unrecoverable: u64,
    /// See [`LinkStats::crc_drops`].
    pub crc_drops: u64,
    /// See [`LinkStats::retransmits`].
    pub retransmits: u64,
    /// See [`LinkStats::link_downs`].
    pub link_downs: u64,
    /// See [`LinkStats::depth`].
    pub depth: u64,
    /// See [`LinkStats::target_depth`].
    pub target_depth: u64,
}

impl LinkStats {
    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Sets a gauge.
    pub fn set(gauge: &AtomicU64, v: u64) {
        gauge.store(v, Ordering::Relaxed);
    }

    /// Copies every field.
    pub fn snapshot(&self) -> LinkStatsSnapshot {
        LinkStatsSnapshot {
            conceals: self.conceals.load(Ordering::Relaxed),
            reorders: self.reorders.load(Ordering::Relaxed),
            late_drops: self.late_drops.load(Ordering::Relaxed),
            fec_recovered: self.fec_recovered.load(Ordering::Relaxed),
            fec_unrecoverable: self.fec_unrecoverable.load(Ordering::Relaxed),
            crc_drops: self.crc_drops.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            link_downs: self.link_downs.load(Ordering::Relaxed),
            depth: self.depth.load(Ordering::Relaxed),
            target_depth: self.target_depth.load(Ordering::Relaxed),
        }
    }
}

// --- Jitter buffer -------------------------------------------------------

/// The adaptive playout buffer described in the module docs.
pub struct JitterBuffer {
    /// Sample ring indexed by recorded tick modulo [`RING`].
    ring: Vec<u8>,
    /// Full tick value each slot was written for; a slot is valid for
    /// recorded time `t` iff `tag[slot] == t.ticks()`.  This makes stale
    /// data from a previous ring lap self-invalidating without a
    /// consume pass.
    tag: Vec<u32>,
    /// One slot is written before any read establishes tags; `false`
    /// until the first insert so an all-zero tag ring can't alias
    /// recorded tick 0.
    any_inserted: bool,
    /// Current playout delay in ticks.
    depth: u32,
    /// RFC 3550 jitter EWMA, in ticks.
    jitter_ewma: f64,
    /// Previous packet's transit observation.
    last_transit: Option<i64>,
    /// Recent |inter-arrival delay delta| values for the percentile.
    delays: VecDeque<u32>,
    /// End (exclusive) of the most recent insert, for reorder detection.
    insert_frontier: Option<ATime>,
    /// Highest recorded time served so far (exclusive), for late drops.
    served_until: Option<ATime>,
    /// Last good served samples, for concealment.
    tail: Vec<u8>,
    /// Next position in `tail` to replay while concealing.
    tail_pos: usize,
    /// Consecutive concealed ticks (resets on any good sample).
    conceal_run: u32,
    /// Silence byte for the link's encoding (µ-law by default).
    silence: u8,
}

impl Default for JitterBuffer {
    fn default() -> Self {
        JitterBuffer::new()
    }
}

impl JitterBuffer {
    /// Creates an empty buffer at the minimum playout depth.
    pub fn new() -> JitterBuffer {
        JitterBuffer {
            ring: vec![0; RING],
            tag: vec![0; RING],
            any_inserted: false,
            depth: JITTER_MIN_DEPTH,
            jitter_ewma: 0.0,
            last_transit: None,
            delays: VecDeque::with_capacity(DELAY_WINDOW),
            insert_frontier: None,
            served_until: None,
            tail: Vec::with_capacity(TAIL_SAMPLES),
            tail_pos: 0,
            conceal_run: 0,
            silence: af_dsp::g711::ULAW_SILENCE,
        }
    }

    /// Current playout depth in ticks.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Feeds one transit observation (arrival minus record time, in
    /// ticks, any fixed offset is fine) into the jitter estimate.
    /// Callers compute it from their own clock so this type never does.
    pub fn observe_transit(&mut self, transit: i64) {
        if let Some(prev) = self.last_transit {
            let d = (transit - prev).unsigned_abs().min(u64::from(u32::MAX)) as u32;
            // RFC 3550 §6.4.1: J += (|D| − J) / 16.
            self.jitter_ewma += (f64::from(d) - self.jitter_ewma) / 16.0;
            if self.delays.len() == DELAY_WINDOW {
                self.delays.pop_front();
            }
            self.delays.push_back(d);
        }
        self.last_transit = Some(transit);
    }

    /// The depth the buffer is currently steering toward.
    pub fn target_depth(&self) -> u32 {
        let p95 = if self.delays.is_empty() {
            0
        } else {
            let mut sorted: Vec<u32> = self.delays.iter().copied().collect();
            sorted.sort_unstable();
            sorted[(sorted.len() * 95) / 100 % sorted.len()]
        };
        // Four EWMAs (the classic RTP playout rule) or twice the p95
        // spike level, whichever is more conservative.
        let est = ((self.jitter_ewma * 4.0) as u32).max(p95.saturating_mul(2));
        est.clamp(JITTER_MIN_DEPTH, JITTER_MAX_DEPTH)
    }

    /// Inserts recorded samples starting at device time `time`,
    /// reporting reorders and late arrivals into `stats`.
    pub fn insert(&mut self, time: ATime, data: &[u8], stats: &LinkStats) {
        if data.is_empty() {
            return;
        }
        if let Some(frontier) = self.insert_frontier {
            if time.is_before(frontier) {
                LinkStats::add(&stats.reorders, 1);
            }
        }
        let end = time.offset(data.len().min(RING) as i32);
        self.insert_frontier = Some(match self.insert_frontier {
            Some(f) => f.max_circular(end),
            None => end,
        });
        let mut late = 0u64;
        for (i, &b) in data.iter().take(RING).enumerate() {
            let rt = time.offset(i as i32);
            if let Some(served) = self.served_until {
                if rt.is_before(served) {
                    late += 1;
                    continue; // Playout already passed this tick.
                }
            }
            let slot = Self::slot(rt);
            self.ring[slot] = b;
            self.tag[slot] = rt.ticks();
        }
        self.any_inserted = true;
        if late > 0 {
            LinkStats::add(&stats.late_drops, late);
        }
    }

    /// Serves `out.len()` playout samples for device time `time`,
    /// reading recorded time `time − depth` onward and concealing
    /// whatever is missing.  Updates the depth gauges in `stats`.
    pub fn read(&mut self, time: ATime, out: &mut [u8], stats: &LinkStats) {
        // Slew the playout depth toward its adaptive target.
        let target = self.target_depth();
        let step = target
            .abs_diff(self.depth)
            .min(DEPTH_SLEW_TICKS);
        if target > self.depth {
            self.depth += step;
        } else {
            self.depth -= step;
        }
        LinkStats::set(&stats.depth, u64::from(self.depth));
        LinkStats::set(&stats.target_depth, u64::from(target));

        let depth = self.depth as i32;
        let mut concealed = 0u64;
        for (i, o) in out.iter_mut().enumerate() {
            let rt = time.offset(i as i32).offset(-depth);
            let slot = Self::slot(rt);
            if self.any_inserted && self.tag[slot] == rt.ticks() {
                let b = self.ring[slot];
                *o = b;
                self.conceal_run = 0;
                if self.tail.len() < TAIL_SAMPLES {
                    self.tail.push(b);
                } else {
                    self.tail[self.tail_pos] = b;
                }
                self.tail_pos = (self.tail_pos + 1) % TAIL_SAMPLES;
            } else {
                *o = self.conceal_sample();
                concealed += 1;
            }
        }
        if concealed > 0 {
            LinkStats::add(&stats.conceals, concealed);
        }
        let end = time.offset(out.len() as i32).offset(-depth);
        self.served_until = Some(match self.served_until {
            Some(s) => s.max_circular(end),
            None => end,
        });
    }

    /// One concealment sample: replay the tail with a linear fade for up
    /// to [`JITTER_FADE_TICKS`], then silence.
    fn conceal_sample(&mut self) -> u8 {
        let run = self.conceal_run;
        self.conceal_run = self.conceal_run.saturating_add(1);
        if self.tail.is_empty() || run >= JITTER_FADE_TICKS {
            return self.silence;
        }
        let b = self.tail[self.tail_pos % self.tail.len()];
        self.tail_pos = (self.tail_pos + 1) % self.tail.len();
        let lin = i64::from(af_dsp::g711::ulaw_to_linear(b));
        let gain = i64::from(JITTER_FADE_TICKS - run); // Linear fade-out.
        let faded = (lin * gain / i64::from(JITTER_FADE_TICKS)) as i16;
        af_dsp::g711::linear_to_ulaw(faded)
    }

    #[inline]
    fn slot(t: ATime) -> usize {
        (u64::from(t.ticks()) % RING as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> LinkStats {
        LinkStats::default()
    }

    #[test]
    fn in_order_stream_plays_back_exactly() {
        let mut jb = JitterBuffer::new();
        let st = stats();
        let t0 = ATime::new(10_000);
        // Fill well past one depth's worth.
        let data: Vec<u8> = (0..2048u32).map(|i| (i % 251) as u8).collect();
        jb.insert(t0, &data, &st);
        // Read at t0 + depth: playout maps back to exactly t0.
        let depth = jb.depth();
        let mut out = vec![0u8; 1024];
        jb.read(t0.offset(depth as i32), &mut out, &st);
        assert_eq!(&out[..], &data[..1024]);
        assert_eq!(st.snapshot().conceals, 0);
    }

    #[test]
    fn gap_is_concealed_then_silence() {
        let mut jb = JitterBuffer::new();
        let st = stats();
        let t0 = ATime::new(500);
        // 200 good loud samples, then nothing.
        let loud = vec![af_dsp::g711::linear_to_ulaw(8000); 200];
        jb.insert(t0, &loud, &st);
        let depth = jb.depth();
        let span = 200 + JITTER_FADE_TICKS as usize + 400;
        let mut out = vec![0u8; span];
        jb.read(t0.offset(depth as i32), &mut out, &st);
        // Good part passes through.
        assert_eq!(&out[..200], &loud[..]);
        // Concealment starts loud-ish (repeat with fade), ends silent.
        assert_ne!(out[200], af_dsp::g711::ULAW_SILENCE);
        assert_eq!(out[span - 1], af_dsp::g711::ULAW_SILENCE);
        assert_eq!(st.snapshot().conceals, (span - 200) as u64);
    }

    #[test]
    fn out_of_order_insert_is_reordered_not_lost() {
        let mut jb = JitterBuffer::new();
        let st = stats();
        let t0 = ATime::new(40_000);
        jb.insert(t0.offset(100), &[2u8; 100], &st); // Second chunk first.
        jb.insert(t0, &[1u8; 100], &st); // First chunk late.
        assert_eq!(st.snapshot().reorders, 1);
        let depth = jb.depth();
        let mut out = vec![0u8; 200];
        jb.read(t0.offset(depth as i32), &mut out, &st);
        assert_eq!(&out[..100], &[1u8; 100][..]);
        assert_eq!(&out[100..], &[2u8; 100][..]);
    }

    #[test]
    fn arrival_after_playout_counts_late_drop() {
        let mut jb = JitterBuffer::new();
        let st = stats();
        let t0 = ATime::new(9_000);
        let depth = jb.depth();
        let mut out = vec![0u8; 64];
        jb.read(t0.offset(depth as i32), &mut out, &st); // Serves t0..t0+64.
        jb.insert(t0, &[5u8; 32], &st); // Entirely in the served past.
        assert_eq!(st.snapshot().late_drops, 32);
    }

    #[test]
    fn depth_adapts_to_jitter_and_slews_gradually() {
        let mut jb = JitterBuffer::new();
        let st = stats();
        assert_eq!(jb.target_depth(), JITTER_MIN_DEPTH);
        // Alternating transit times 2 000 ticks apart: heavy jitter.
        for i in 0..DELAY_WINDOW as i64 {
            jb.observe_transit(if i % 2 == 0 { 0 } else { 2_000 });
        }
        let target = jb.target_depth();
        assert!(target > JITTER_MIN_DEPTH);
        assert!(target <= JITTER_MAX_DEPTH);
        // One read only moves depth by the slew bound.
        let before = jb.depth();
        let mut out = vec![0u8; 16];
        jb.read(ATime::new(100_000), &mut out, &st);
        assert!(jb.depth() <= before + DEPTH_SLEW_TICKS);
    }

    #[test]
    fn steady_arrivals_keep_minimum_depth() {
        let mut jb = JitterBuffer::new();
        for i in 0..DELAY_WINDOW as i64 {
            jb.observe_transit(100 + i % 2); // ~zero jitter.
        }
        assert_eq!(jb.target_depth(), JITTER_MIN_DEPTH);
    }

    #[test]
    fn ring_wrap_does_not_alias_old_laps() {
        let mut jb = JitterBuffer::new();
        let st = stats();
        let t0 = ATime::new(1_000);
        jb.insert(t0, &[9u8; 64], &st);
        // Same ring slots, one lap later, never inserted.
        let lap = t0.offset(RING as i32);
        let depth = jb.depth();
        let mut out = vec![0u8; 64];
        jb.read(lap.offset(depth as i32), &mut out, &st);
        assert_eq!(st.snapshot().conceals, 64, "stale lap must not replay");
    }

    #[test]
    fn wrapping_device_time_is_handled() {
        let mut jb = JitterBuffer::new();
        let st = stats();
        // Insert across the 2^32 tick wrap.
        let t0 = ATime::new(u32::MAX - 50);
        jb.insert(t0, &[3u8; 200], &st);
        let depth = jb.depth();
        let mut out = vec![0u8; 200];
        jb.read(t0.offset(depth as i32), &mut out, &st);
        assert_eq!(&out[..], &[3u8; 200][..]);
    }
}
