//! A simulated analog telephone line.
//!
//! LoFi's telephone interface had a line jack, hookswitch relay, ring
//! detection, loop-current detection, and Touch-Tone decoding circuitry
//! (§5.5).  This module simulates the line itself plus that circuitry:
//!
//! * the **server side** controls the hookswitch and reads line state,
//! * the **device side** exposes a [`SampleSink`]/[`SampleSource`] pair the
//!   codec device plugs into when its phone connector is selected,
//! * the **office side** is the test-harness/remote-party view: place a
//!   ringing call, lift the extension phone (loop current), send caller
//!   audio, and hear what the workstation plays.
//!
//! DTMF decoders run on both directions of line audio, so digits dialed by
//! the local client (synthesized tones, §5.5) and digits sent by the remote
//! caller both produce signals — which the server turns into protocol
//! events.

use crate::io::{SampleSink, SampleSource, Wire};
use af_dsp::goertzel::{DtmfDetector, DtmfEvent};
use af_dsp::tables;
use af_time::ATime;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// Telephone line sample rate: 8 kHz, µ-law.
pub const PHONE_RATE: u32 = 8000;

/// An asynchronous state change on the line, later mapped to a protocol
/// event by the server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhoneSignal {
    /// Ring voltage appeared (`true`) or stopped (`false`).
    Ring(bool),
    /// A DTMF key transition was decoded from line audio.
    Dtmf {
        /// The digit character.
        digit: char,
        /// `true` on key-down.
        down: bool,
    },
    /// Loop current started (`true`) or stopped (`false`).
    Loop(bool),
    /// The local hookswitch changed: `true` when off-hook.
    Hook(bool),
}

struct LineState {
    off_hook: bool,
    extension_off_hook: bool,
    ringing: bool,
    signals: VecDeque<PhoneSignal>,
    outgoing_dtmf: DtmfDetector,
    incoming_dtmf: DtmfDetector,
}

impl LineState {
    fn push_dtmf(signals: &mut VecDeque<PhoneSignal>, events: Vec<DtmfEvent>) {
        for e in events {
            let signal = match e {
                DtmfEvent::KeyDown(d) => PhoneSignal::Dtmf {
                    digit: d,
                    down: true,
                },
                DtmfEvent::KeyUp(d) => PhoneSignal::Dtmf {
                    digit: d,
                    down: false,
                },
            };
            signals.push_back(signal);
        }
    }
}

/// A shared simulated telephone line.
///
/// Clone handles freely; all state is shared.
#[derive(Clone)]
pub struct PhoneLine {
    state: Arc<Mutex<LineState>>,
    /// Caller → workstation audio.
    incoming: Wire,
    /// Workstation → caller audio.
    outgoing: Wire,
}

impl Default for PhoneLine {
    fn default() -> Self {
        PhoneLine::new()
    }
}

impl PhoneLine {
    /// Creates an idle line (on-hook, no call).
    pub fn new() -> PhoneLine {
        PhoneLine {
            state: Arc::new(Mutex::new(LineState {
                off_hook: false,
                extension_off_hook: false,
                ringing: false,
                signals: VecDeque::new(),
                outgoing_dtmf: DtmfDetector::new(f64::from(PHONE_RATE)),
                incoming_dtmf: DtmfDetector::new(f64::from(PHONE_RATE)),
            })),
            // One second of line buffering each way.
            incoming: Wire::new(PHONE_RATE as usize, af_dsp::g711::ULAW_SILENCE),
            outgoing: Wire::new(PHONE_RATE as usize, af_dsp::g711::ULAW_SILENCE),
        }
    }

    // ---- Server-side control (maps to protocol requests). ----

    /// Sets the hookswitch (`HookSwitch` request).  Going off-hook answers a
    /// ringing call.
    pub fn set_hook(&self, off_hook: bool) {
        let mut s = self.state.lock();
        if s.off_hook == off_hook {
            return;
        }
        s.off_hook = off_hook;
        s.signals.push_back(PhoneSignal::Hook(off_hook));
        if off_hook && s.ringing {
            s.ringing = false;
            s.signals.push_back(PhoneSignal::Ring(false));
        }
    }

    /// Flashes the hookswitch (`FlashHook` request): a momentary on-hook.
    pub fn flash_hook(&self) {
        let mut s = self.state.lock();
        if s.off_hook {
            s.signals.push_back(PhoneSignal::Hook(false));
            s.signals.push_back(PhoneSignal::Hook(true));
        }
    }

    /// Line state for `QueryPhone`: `(off_hook, loop_current, ringing)`.
    pub fn query(&self) -> (bool, bool, bool) {
        let s = self.state.lock();
        (s.off_hook, s.extension_off_hook, s.ringing)
    }

    /// Drains pending signals (the DDA's `ProcessInputEvents`).
    pub fn poll_signals(&self) -> Vec<PhoneSignal> {
        self.state.lock().signals.drain(..).collect()
    }

    // ---- Device-side endpoints. ----

    /// The sink the codec plugs its phone output connector into.
    pub fn line_sink(&self) -> PhoneLineSink {
        PhoneLineSink { line: self.clone() }
    }

    /// The source the codec plugs its phone input connector into.
    pub fn line_source(&self) -> PhoneLineSource {
        PhoneLineSource { line: self.clone() }
    }

    // ---- Office / remote-party side (test harness & examples). ----

    /// Starts or stops ring voltage (an incoming call).  Ringing while
    /// off-hook is ignored, as a real CO would not ring a busy line.
    pub fn office_ring(&self, ringing: bool) {
        let mut s = self.state.lock();
        if s.off_hook && ringing {
            return;
        }
        if s.ringing != ringing {
            s.ringing = ringing;
            s.signals.push_back(PhoneSignal::Ring(ringing));
        }
    }

    /// Lifts or replaces the extension phone sharing the line (loop
    /// current).
    pub fn extension_hook(&self, off_hook: bool) {
        let mut s = self.state.lock();
        if s.extension_off_hook != off_hook {
            s.extension_off_hook = off_hook;
            s.signals.push_back(PhoneSignal::Loop(off_hook));
        }
    }

    /// Injects caller audio (µ-law bytes) toward the workstation, running
    /// the incoming DTMF decoder over it.
    pub fn office_send(&self, ulaw: &[u8]) {
        self.incoming.push(ulaw);
        let pcm: Vec<i16> = ulaw.iter().map(|&b| tables::exp_u()[b as usize]).collect();
        let mut s = self.state.lock();
        let events = s.incoming_dtmf.feed(&pcm);
        LineState::push_dtmf(&mut s.signals, events);
    }

    /// Reads up to `n` bytes of audio the workstation played to the line.
    pub fn office_recv(&self, n: usize) -> Vec<u8> {
        let mut out = vec![0u8; n];
        self.outgoing.pop(&mut out);
        out
    }

    /// Bytes of workstation audio waiting on the line.
    pub fn office_pending(&self) -> usize {
        self.outgoing.queued()
    }
}

/// The workstation→line endpoint: what the codec "plays into the phone".
pub struct PhoneLineSink {
    line: PhoneLine,
}

impl SampleSink for PhoneLineSink {
    fn consume(&mut self, _time: ATime, data: &[u8]) {
        let mut s = self.line.state.lock();
        if !s.off_hook {
            // On-hook: the relay is open; nothing reaches the line.
            return;
        }
        let pcm: Vec<i16> = data.iter().map(|&b| tables::exp_u()[b as usize]).collect();
        let events = s.outgoing_dtmf.feed(&pcm);
        LineState::push_dtmf(&mut s.signals, events);
        drop(s);
        self.line.outgoing.push(data);
    }
}

/// The line→workstation endpoint: what the codec "records from the phone".
pub struct PhoneLineSource {
    line: PhoneLine,
}

impl SampleSource for PhoneLineSource {
    fn fill(&mut self, _time: ATime, out: &mut [u8]) {
        let off_hook = self.line.state.lock().off_hook;
        if off_hook {
            self.line.incoming.pop(out);
        } else {
            out.fill(af_dsp::g711::ULAW_SILENCE);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_dsp::telephony::dtmf_for_digit;
    use af_dsp::tone::tone_pair;

    fn dtmf_ulaw(digit: char, ms: u32) -> Vec<u8> {
        let def = dtmf_for_digit(digit).unwrap();
        tone_pair(def.spec, 8000.0, (8 * ms) as usize, 16)
    }

    #[test]
    fn ring_answer_sequence() {
        let line = PhoneLine::new();
        line.office_ring(true);
        assert_eq!(line.poll_signals(), vec![PhoneSignal::Ring(true)]);
        assert_eq!(line.query(), (false, false, true));

        line.set_hook(true); // Answer.
        assert_eq!(
            line.poll_signals(),
            vec![PhoneSignal::Hook(true), PhoneSignal::Ring(false)]
        );
        assert_eq!(line.query(), (true, false, false));

        line.set_hook(false); // Hang up.
        assert_eq!(line.poll_signals(), vec![PhoneSignal::Hook(false)]);
    }

    #[test]
    fn ringing_ignored_while_off_hook() {
        let line = PhoneLine::new();
        line.set_hook(true);
        line.poll_signals();
        line.office_ring(true);
        assert!(line.poll_signals().is_empty());
        assert!(!line.query().2);
    }

    #[test]
    fn loop_current_tracks_extension() {
        let line = PhoneLine::new();
        line.extension_hook(true);
        line.extension_hook(true); // No duplicate signal.
        assert_eq!(line.poll_signals(), vec![PhoneSignal::Loop(true)]);
        line.extension_hook(false);
        assert_eq!(line.poll_signals(), vec![PhoneSignal::Loop(false)]);
    }

    #[test]
    fn audio_flows_only_off_hook() {
        let line = PhoneLine::new();
        let mut sink = line.line_sink();
        let mut source = line.line_source();

        // On-hook: nothing passes either way.
        sink.consume(ATime::ZERO, &[0x11; 16]);
        assert_eq!(line.office_pending(), 0);
        line.office_send(&[0x22; 16]);
        let mut buf = [0u8; 16];
        source.fill(ATime::ZERO, &mut buf);
        assert_eq!(buf, [af_dsp::g711::ULAW_SILENCE; 16]);

        // Off-hook: both directions pass.
        line.set_hook(true);
        sink.consume(ATime::ZERO, &[0x11; 16]);
        assert_eq!(line.office_recv(16), vec![0x11; 16]);
        line.office_send(&[0x33; 8]);
        let mut buf2 = [0u8; 8];
        source.fill(ATime::ZERO, &mut buf2);
        // The earlier on-hook office_send bytes were queued on the wire;
        // the line buffers while we were on-hook (voice mail would hear
        // them), so the first 8 are the 0x22 bytes.
        assert_eq!(buf2, [0x22; 8]);
    }

    #[test]
    fn outgoing_dtmf_detected() {
        // A client dialing "42" by playing tones to the line produces
        // decoded digit signals.
        let line = PhoneLine::new();
        line.set_hook(true);
        line.poll_signals();
        let mut sink = line.line_sink();
        for d in ['4', '2'] {
            sink.consume(ATime::ZERO, &dtmf_ulaw(d, 60));
            sink.consume(ATime::ZERO, &vec![af_dsp::g711::ULAW_SILENCE; 480]);
        }
        let digits: Vec<char> = line
            .poll_signals()
            .into_iter()
            .filter_map(|s| match s {
                PhoneSignal::Dtmf { digit, down: true } => Some(digit),
                _ => None,
            })
            .collect();
        assert_eq!(digits, vec!['4', '2']);
    }

    #[test]
    fn incoming_dtmf_detected() {
        // A remote caller pressing '7' is decoded even before we answer
        // (the detector watches the line, like LoFi's hardware decoder).
        let line = PhoneLine::new();
        line.office_send(&dtmf_ulaw('7', 60));
        line.office_send(&vec![af_dsp::g711::ULAW_SILENCE; 480]);
        let signals = line.poll_signals();
        assert!(signals.contains(&PhoneSignal::Dtmf {
            digit: '7',
            down: true
        }));
    }

    #[test]
    fn flash_hook_pulses() {
        let line = PhoneLine::new();
        line.flash_hook(); // On-hook: no effect.
        assert!(line.poll_signals().is_empty());
        line.set_hook(true);
        line.poll_signals();
        line.flash_hook();
        assert_eq!(
            line.poll_signals(),
            vec![PhoneSignal::Hook(false), PhoneSignal::Hook(true)]
        );
    }
}
