//! Time-indexed circular sample buffers.
//!
//! The DSP firmware kept circular play and record buffers in shared memory,
//! addressed by the low bits of the device time counter (§7.4.1: 1024
//! samples per CODEC buffer, 4096 per HiFi channel).  [`HwRing`] is that
//! structure: a byte buffer holding `frames` frames of `frame_bytes` each,
//! where frame *f* of device time *t* lives at `(t mod frames) *
//! frame_bytes`.
//!
//! The ring does no validity tracking — like real hardware memory, reading
//! a region that was never written returns whatever is there (initially
//! silence).  Consistency windows are the *server's* job (§7.2).

use af_time::ATime;

/// A circular buffer of sample frames indexed by device time.
#[derive(Clone, Debug)]
pub struct HwRing {
    data: Vec<u8>,
    frames: u32,
    frame_bytes: usize,
}

impl HwRing {
    /// Creates a ring of `frames` frames, filled with `fill` (the encoding's
    /// silence byte).
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero, not a power of two (the DSP's circular
    /// addressing modes require powers of two), or `frame_bytes` is zero.
    pub fn new(frames: u32, frame_bytes: usize, fill: u8) -> HwRing {
        assert!(frames > 0, "ring must hold at least one frame");
        assert!(
            frames.is_power_of_two(),
            "circular addressing requires a power-of-two size"
        );
        assert!(frame_bytes > 0, "frames must be at least one byte");
        HwRing {
            data: vec![fill; frames as usize * frame_bytes],
            frames,
            frame_bytes,
        }
    }

    /// Capacity in frames.
    pub fn frames(&self) -> u32 {
        self.frames
    }

    /// Bytes per frame.
    pub fn frame_bytes(&self) -> usize {
        self.frame_bytes
    }

    /// Capacity in bytes.
    pub fn len_bytes(&self) -> usize {
        self.data.len()
    }

    fn offset(&self, time: ATime) -> usize {
        (time.ticks() & (self.frames - 1)) as usize * self.frame_bytes
    }

    /// Writes whole frames starting at device time `time`.
    ///
    /// Writing more than the ring holds is allowed; earlier bytes are simply
    /// overwritten by later ones, as on real hardware.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not a whole number of frames.
    pub fn write_at(&mut self, time: ATime, data: &[u8]) {
        assert_eq!(data.len() % self.frame_bytes, 0, "partial frame write");
        let mut off = self.offset(time);
        let mut src = data;
        while !src.is_empty() {
            let run = (self.data.len() - off).min(src.len());
            self.data[off..off + run].copy_from_slice(&src[..run]);
            src = &src[run..];
            off = 0;
        }
    }

    /// Reads whole frames starting at device time `time` into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not a whole number of frames.
    pub fn read_at(&self, time: ATime, out: &mut [u8]) {
        assert_eq!(out.len() % self.frame_bytes, 0, "partial frame read");
        let mut off = self.offset(time);
        let mut dst = &mut out[..];
        while !dst.is_empty() {
            let run = (self.data.len() - off).min(dst.len());
            dst[..run].copy_from_slice(&self.data[off..off + run]);
            dst = &mut dst[run..];
            off = 0;
        }
    }

    /// Fills `nframes` frames starting at `time` with the byte `fill`.
    pub fn fill_at(&mut self, time: ATime, nframes: u32, fill: u8) {
        let nframes = nframes.min(self.frames);
        let mut off = self.offset(time);
        let mut remaining = nframes as usize * self.frame_bytes;
        while remaining > 0 {
            let run = (self.data.len() - off).min(remaining);
            self.data[off..off + run].fill(fill);
            remaining -= run;
            off = 0;
        }
    }

    /// Processes `nframes` frames starting at `time` in place.
    ///
    /// The callback receives each contiguous chunk (the span may wrap once).
    pub fn with_frames_mut<F: FnMut(&mut [u8])>(&mut self, time: ATime, nframes: u32, mut f: F) {
        let nframes = nframes.min(self.frames);
        let mut off = self.offset(time);
        let mut remaining = nframes as usize * self.frame_bytes;
        while remaining > 0 {
            let run = (self.data.len() - off).min(remaining);
            f(&mut self.data[off..off + run]);
            remaining -= run;
            off = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_identity() {
        let mut r = HwRing::new(16, 1, 0xFF);
        let data = [1u8, 2, 3, 4, 5];
        r.write_at(ATime::new(3), &data);
        let mut out = [0u8; 5];
        r.read_at(ATime::new(3), &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn wrap_around_boundary() {
        let mut r = HwRing::new(8, 2, 0);
        let data: Vec<u8> = (0..12).collect(); // 6 frames from frame 6: wraps.
        r.write_at(ATime::new(6), &data);
        let mut out = vec![0u8; 12];
        r.read_at(ATime::new(6), &mut out);
        assert_eq!(out, data);
        // Frame 6 sits at offset 12, frame 8 wrapped to offset 0.
        let mut head = vec![0u8; 2];
        r.read_at(ATime::new(8), &mut head);
        assert_eq!(head, vec![4, 5]);
    }

    #[test]
    fn time_wrap_at_u32_max() {
        let mut r = HwRing::new(1024, 1, 0xFF);
        let t = ATime::new(u32::MAX - 2);
        r.write_at(t, &[7u8; 6]);
        let mut out = [0u8; 6];
        r.read_at(t, &mut out);
        assert_eq!(out, [7u8; 6]);
    }

    #[test]
    fn initial_fill_is_silence() {
        let r = HwRing::new(4, 1, 0xFF);
        let mut out = [0u8; 4];
        r.read_at(ATime::ZERO, &mut out);
        assert_eq!(out, [0xFF; 4]);
    }

    #[test]
    fn fill_at_wraps() {
        let mut r = HwRing::new(8, 1, 0);
        r.write_at(ATime::ZERO, &[9u8; 8]);
        r.fill_at(ATime::new(6), 4, 0xAA);
        let mut out = [0u8; 8];
        r.read_at(ATime::ZERO, &mut out);
        assert_eq!(out, [0xAA, 0xAA, 9, 9, 9, 9, 0xAA, 0xAA]);
    }

    #[test]
    fn oversized_write_keeps_tail() {
        let mut r = HwRing::new(4, 1, 0);
        let data: Vec<u8> = (1..=6).collect();
        r.write_at(ATime::ZERO, &data);
        // Frames 4,5 overwrote frames 0,1.
        let mut out = [0u8; 4];
        r.read_at(ATime::new(4), &mut out);
        assert_eq!(out, [5, 6, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        let _ = HwRing::new(12, 1, 0);
    }

    #[test]
    #[should_panic(expected = "partial frame")]
    fn partial_frame_rejected() {
        let mut r = HwRing::new(8, 4, 0);
        r.write_at(ATime::ZERO, &[1, 2, 3]);
    }

    #[test]
    fn with_frames_mut_visits_all() {
        let mut r = HwRing::new(8, 1, 0);
        let mut seen = 0;
        r.with_frames_mut(ATime::new(5), 6, |chunk| {
            for b in chunk.iter_mut() {
                *b = 1;
            }
            seen += chunk.len();
        });
        assert_eq!(seen, 6);
        let mut out = [0u8; 8];
        r.read_at(ATime::ZERO, &mut out);
        assert_eq!(out.iter().map(|&b| b as usize).sum::<usize>(), 6);
    }
}
