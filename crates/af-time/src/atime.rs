//! The 32-bit wrapping device time value.

use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};

/// A device time value: a 32-bit counter of sample ticks that wraps on
/// overflow.
///
/// Ordering follows §2.1 of the paper: all possible values are divided into
/// equally sized past and future regions relative to a reference value.  Given
/// times `a` and `b`, `b` is *after* `a` when the two's-complement difference
/// `b - a`, interpreted as a signed 32-bit integer, is positive.
///
/// Consequently `ATime` deliberately does **not** implement [`Ord`]: there is
/// no total order on a circle.  Use [`ATime::is_after`], [`ATime::is_before`]
/// or [`ATime::delta`] instead, and never compare times known to be more than
/// 2³¹ samples apart (about 12 hours at 48 kHz, 3 days at 8 kHz).
///
/// # Examples
///
/// ```
/// use af_time::ATime;
///
/// let a = ATime::new(u32::MAX - 10);
/// let b = a + 20u32; // wraps through zero
/// assert!(b.is_after(a));
/// assert_eq!(b.delta(a), 20);
/// assert_eq!(b - a, 20);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ATime(u32);

impl ATime {
    /// The zero of device time; every device counter starts here.
    pub const ZERO: ATime = ATime(0);

    /// Creates a time from its raw 32-bit representation.
    pub const fn new(ticks: u32) -> Self {
        ATime(ticks)
    }

    /// Returns the raw 32-bit counter value.
    pub const fn ticks(self) -> u32 {
        self.0
    }

    /// Returns the signed number of ticks from `earlier` to `self`.
    ///
    /// Positive when `self` is after `earlier`.  This is the paper's
    /// `(int)(b - a)` idiom: the result is correct as long as the true
    /// separation of the two times is less than 2³¹ samples.
    pub const fn delta(self, earlier: ATime) -> i32 {
        self.0.wrapping_sub(earlier.0) as i32
    }

    /// Returns `true` when `self` is strictly later than `other`.
    pub const fn is_after(self, other: ATime) -> bool {
        self.delta(other) > 0
    }

    /// Returns `true` when `self` is strictly earlier than `other`.
    pub const fn is_before(self, other: ATime) -> bool {
        self.delta(other) < 0
    }

    /// Returns `self` advanced by `samples` ticks (which may be negative),
    /// wrapping on overflow.
    pub const fn offset(self, samples: i32) -> ATime {
        ATime(self.0.wrapping_add(samples as u32))
    }

    /// Returns the later of two times under circular ordering.
    pub fn max_circular(self, other: ATime) -> ATime {
        if self.is_after(other) {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two times under circular ordering.
    pub fn min_circular(self, other: ATime) -> ATime {
        if self.is_before(other) {
            self
        } else {
            other
        }
    }

    /// Clamps `self` into the circular interval `[lo, hi]`.
    ///
    /// The interval must itself span less than 2³¹ ticks (`hi` not before
    /// `lo`); otherwise the result is unspecified but memory-safe.
    pub fn clamp_circular(self, lo: ATime, hi: ATime) -> ATime {
        debug_assert!(!hi.is_before(lo), "inverted clamp interval");
        if self.is_before(lo) {
            lo
        } else if self.is_after(hi) {
            hi
        } else {
            self
        }
    }
}

impl Add<i32> for ATime {
    type Output = ATime;

    fn add(self, rhs: i32) -> ATime {
        self.offset(rhs)
    }
}

impl Add<u32> for ATime {
    type Output = ATime;

    fn add(self, rhs: u32) -> ATime {
        ATime(self.0.wrapping_add(rhs))
    }
}

impl AddAssign<u32> for ATime {
    fn add_assign(&mut self, rhs: u32) {
        self.0 = self.0.wrapping_add(rhs);
    }
}

impl AddAssign<i32> for ATime {
    fn add_assign(&mut self, rhs: i32) {
        *self = self.offset(rhs);
    }
}

impl Sub<u32> for ATime {
    type Output = ATime;

    fn sub(self, rhs: u32) -> ATime {
        ATime(self.0.wrapping_sub(rhs))
    }
}

impl SubAssign<u32> for ATime {
    fn sub_assign(&mut self, rhs: u32) {
        self.0 = self.0.wrapping_sub(rhs);
    }
}

/// `b - a` yields the signed tick distance, per the paper's comparison idiom.
impl Sub<ATime> for ATime {
    type Output = i32;

    fn sub(self, rhs: ATime) -> i32 {
        self.delta(rhs)
    }
}

impl fmt::Debug for ATime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ATime({})", self.0)
    }
}

impl fmt::Display for ATime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for ATime {
    fn from(ticks: u32) -> Self {
        ATime(ticks)
    }
}

impl From<ATime> for u32 {
    fn from(t: ATime) -> Self {
        t.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_comparison_idiom() {
        // Mirrors the example in §2.1 for a device at 8000 samples/second.
        let a = ATime::new(1_000_000);
        let b = a + 8000u32;
        assert!(b.is_after(a));
        assert!(a.is_before(b));
        assert_eq!(b - a, 8000); // b is one second later than a.
    }

    #[test]
    fn ordering_across_wrap() {
        let a = ATime::new(u32::MAX - 100);
        let b = ATime::new(50); // 151 ticks after `a`, across the wrap.
        assert!(b.is_after(a));
        assert!(a.is_before(b));
        assert_eq!(b - a, 151);
        assert_eq!(a - b, -151);
    }

    #[test]
    fn equal_times_are_neither_before_nor_after() {
        let t = ATime::new(42);
        assert!(!t.is_after(t));
        assert!(!t.is_before(t));
        assert_eq!(t - t, 0);
    }

    #[test]
    fn offset_negative_wraps() {
        let t = ATime::new(5);
        assert_eq!(t.offset(-10).ticks(), u32::MAX - 4);
        assert_eq!(t.offset(-10) + 10u32, t);
    }

    #[test]
    fn far_separation_flips_order() {
        // The documented hazard: once two times are 2^31 apart, the distant
        // past becomes the distant future.
        let a = ATime::new(0);
        let just_under = a + (i32::MAX as u32);
        assert!(just_under.is_after(a));
        let exactly = a + (1u32 << 31);
        // 2^31 maps to i32::MIN which is negative: reads as "before".
        assert!(exactly.is_before(a));
    }

    #[test]
    fn min_max_clamp() {
        let a = ATime::new(100);
        let b = ATime::new(300);
        assert_eq!(a.max_circular(b), b);
        assert_eq!(a.min_circular(b), a);
        assert_eq!(ATime::new(50).clamp_circular(a, b), a);
        assert_eq!(ATime::new(400).clamp_circular(a, b), b);
        assert_eq!(ATime::new(200).clamp_circular(a, b), ATime::new(200));
    }
}
