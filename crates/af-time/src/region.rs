//! Classification of request times against the server's buffer window.

use crate::ATime;

/// Where a requested time interval falls relative to a device's buffered
/// window around "now".
///
/// This is the vocabulary of the output and input models (§2.2–2.3):
///
/// * play data in the **past** is silently discarded,
/// * play data in the **near future** (within the buffer) is mixed in,
/// * play data **beyond** the buffer blocks the client until time advances;
/// * record data from the **distant past** (older than the buffer) reads as
///   silence,
/// * record data from the **recent past** is served from the buffer,
/// * record data from the **future** blocks (or returns short, if
///   non-blocking).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Region {
    /// Entirely before the buffered window.
    DistantPast,
    /// Within the buffered window on the past side of `now`.
    RecentPast,
    /// Within the buffered window on the future side of `now`.
    NearFuture,
    /// Beyond the buffered window in the future.
    DistantFuture,
}

/// A window of buffered device time around `now`.
///
/// The paper's servers keep (typically) four seconds of history for recording
/// and accept four seconds of scheduled playback; `BufferWindow` captures
/// those two extents and classifies sample positions against them.
///
/// # Examples
///
/// ```
/// use af_time::{ATime, BufferWindow, Region};
///
/// let w = BufferWindow::new(ATime::new(100_000), 32_000, 32_000);
/// assert_eq!(w.classify(ATime::new(100_500)), Region::NearFuture);
/// assert_eq!(w.classify(ATime::new(99_000)), Region::RecentPast);
/// assert_eq!(w.classify(ATime::new(10)), Region::DistantPast);
/// assert_eq!(w.classify(ATime::new(200_000)), Region::DistantFuture);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct BufferWindow {
    now: ATime,
    past_extent: u32,
    future_extent: u32,
}

impl BufferWindow {
    /// Creates a window centred at `now` extending `past_extent` samples back
    /// and `future_extent` samples forward.
    ///
    /// # Panics
    ///
    /// Panics if either extent is 2³¹ or more (the circular ordering would
    /// become ambiguous).
    pub fn new(now: ATime, past_extent: u32, future_extent: u32) -> Self {
        assert!(past_extent < 1 << 31, "past extent too large");
        assert!(future_extent < 1 << 31, "future extent too large");
        BufferWindow {
            now,
            past_extent,
            future_extent,
        }
    }

    /// The current device time the window is centred on.
    pub fn now(&self) -> ATime {
        self.now
    }

    /// Oldest buffered time (inclusive).
    pub fn oldest(&self) -> ATime {
        self.now - self.past_extent
    }

    /// Latest schedulable time (exclusive).
    pub fn horizon(&self) -> ATime {
        self.now + self.future_extent
    }

    /// Classifies a single time against the window.
    pub fn classify(&self, t: ATime) -> Region {
        let d = t.delta(self.now);
        if d >= 0 {
            if (d as u32) < self.future_extent {
                Region::NearFuture
            } else {
                Region::DistantFuture
            }
        } else if d.unsigned_abs() <= self.past_extent {
            Region::RecentPast
        } else {
            Region::DistantPast
        }
    }

    /// Splits the interval `[start, start + len)` into the portion that falls
    /// before `now` and the portion at or after `now`.
    ///
    /// Returns `(past_len, future_len)` with `past_len + future_len == len`.
    pub fn split_at_now(&self, start: ATime, len: u32) -> (u32, u32) {
        let d = self.now.delta(start); // How far `now` is past `start`.
        if d <= 0 {
            (0, len)
        } else if (d as u32) >= len {
            (len, 0)
        } else {
            (d as u32, len - d as u32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> BufferWindow {
        BufferWindow::new(ATime::new(1_000_000), 32_000, 32_000)
    }

    #[test]
    fn now_is_near_future() {
        // "now" is a schedulable instant: data for now plays immediately.
        assert_eq!(window().classify(ATime::new(1_000_000)), Region::NearFuture);
    }

    #[test]
    fn boundaries() {
        let w = window();
        assert_eq!(w.classify(w.oldest()), Region::RecentPast);
        assert_eq!(w.classify(w.oldest() - 1u32), Region::DistantPast);
        assert_eq!(w.classify(w.horizon()), Region::DistantFuture);
        assert_eq!(w.classify(w.horizon() - 1u32), Region::NearFuture);
    }

    #[test]
    fn classify_across_wrap() {
        let w = BufferWindow::new(ATime::new(10), 32_000, 32_000);
        assert_eq!(w.classify(ATime::new(u32::MAX - 100)), Region::RecentPast);
        assert_eq!(
            w.classify(ATime::new(u32::MAX - 50_000)),
            Region::DistantPast
        );
    }

    #[test]
    fn split_at_now_cases() {
        let w = window();
        // Entirely in the future.
        assert_eq!(w.split_at_now(w.now(), 100), (0, 100));
        // Entirely in the past.
        assert_eq!(w.split_at_now(w.now() - 200u32, 100), (100, 0));
        // Straddling now.
        assert_eq!(w.split_at_now(w.now() - 30u32, 100), (30, 70));
    }
}
