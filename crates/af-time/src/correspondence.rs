//! Conversion between two clocks via an observed correspondence point.

use crate::ATime;

/// A correspondence between two clocks, following §2.1 of the paper.
///
/// Given clocks *A* and *B*, a pair of values `(T_a, T_b)` observed "at the
/// same time", and the nominal rates `R_a` and `R_b` (in ticks per second),
/// a future value `t_a` of clock *A* maps to clock *B* as
///
/// ```text
/// t_b = T_b + R_b * ((t_a - T_a) / R_a)
/// ```
///
/// The relationship is approximate — real oscillators drift — but is good
/// enough for scheduling, and applications such as `apass` resynchronize
/// periodically rather than relying on it over long spans.
///
/// # Examples
///
/// ```
/// use af_time::{ATime, Correspondence};
///
/// // An 8 kHz device observed at tick 1000 when a 48 kHz device read 500.
/// let c = Correspondence::new(ATime::new(1000), 8000.0, ATime::new(500), 48_000.0);
/// // One second later on A is 8000 ticks; on B it is 48_000 ticks.
/// assert_eq!(c.a_to_b(ATime::new(9000)), ATime::new(48_500));
/// assert_eq!(c.b_to_a(ATime::new(48_500)), ATime::new(9000));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Correspondence {
    t_a: ATime,
    rate_a: f64,
    t_b: ATime,
    rate_b: f64,
}

impl Correspondence {
    /// Creates a correspondence from a simultaneous observation of both
    /// clocks and their rates in ticks per second.
    ///
    /// # Panics
    ///
    /// Panics if either rate is not strictly positive.
    pub fn new(t_a: ATime, rate_a: f64, t_b: ATime, rate_b: f64) -> Self {
        assert!(rate_a > 0.0, "clock A rate must be positive");
        assert!(rate_b > 0.0, "clock B rate must be positive");
        Correspondence {
            t_a,
            rate_a,
            t_b,
            rate_b,
        }
    }

    /// Maps a time on clock A to the corresponding time on clock B.
    ///
    /// Valid while `t_a` is within ±2³¹ ticks of the observation point
    /// *and* the scaled interval stays within ±2³¹ ticks on clock B; a
    /// mapped interval beyond that wraps, as all finite device times do
    /// (§2.1's "programs must be careful not to make comparisons between
    /// widely separated time values").
    pub fn a_to_b(&self, t_a: ATime) -> ATime {
        let elapsed_a = f64::from(t_a.delta(self.t_a));
        let elapsed_b = (self.rate_b * (elapsed_a / self.rate_a)).round() as i64;
        self.t_b.offset(elapsed_b as i32)
    }

    /// Maps a time on clock B to the corresponding time on clock A.
    pub fn b_to_a(&self, t_b: ATime) -> ATime {
        let elapsed_b = f64::from(t_b.delta(self.t_b));
        let elapsed_a = (self.rate_a * (elapsed_b / self.rate_b)).round() as i64;
        self.t_a.offset(elapsed_a as i32)
    }

    /// Re-anchors the correspondence at a new simultaneous observation,
    /// keeping the configured rates.
    ///
    /// `apass`-style applications call this when resynchronizing after clock
    /// drift exceeds their anti-jitter tolerance.
    pub fn reanchor(&mut self, t_a: ATime, t_b: ATime) {
        self.t_a = t_a;
        self.t_b = t_b;
    }

    /// Estimates the ratio `rate_b / rate_a` from two observation pairs.
    ///
    /// This is the `(ft2 - ft1)/(tt2 - tt1)` calculation discussed in §8.3.3:
    /// both pairs must be sampled "at the same time" according to some third
    /// clock.  Returns `None` when the A-clock span is zero.
    pub fn estimate_ratio(pair1: (ATime, ATime), pair2: (ATime, ATime)) -> Option<f64> {
        let da = f64::from(pair2.0.delta(pair1.0));
        let db = f64::from(pair2.1.delta(pair1.1));
        if da == 0.0 {
            None
        } else {
            Some(db / da)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_when_rates_equal_and_anchored_equal() {
        let c = Correspondence::new(ATime::new(7), 8000.0, ATime::new(7), 8000.0);
        for dt in [0i32, 1, 8000, -16000] {
            let t = ATime::new(7).offset(dt);
            assert_eq!(c.a_to_b(t), t);
        }
    }

    #[test]
    fn converts_across_rates() {
        let c = Correspondence::new(ATime::ZERO, 8000.0, ATime::ZERO, 44_100.0);
        assert_eq!(c.a_to_b(ATime::new(8000)), ATime::new(44_100));
        assert_eq!(c.b_to_a(ATime::new(44_100)), ATime::new(8000));
    }

    #[test]
    fn handles_wrap_of_either_clock() {
        let c = Correspondence::new(ATime::new(u32::MAX - 5), 8000.0, ATime::new(10), 8000.0);
        // 10 ticks later on A (wrapping) is 10 ticks later on B.
        assert_eq!(c.a_to_b(ATime::new(4)), ATime::new(20));
    }

    #[test]
    fn reanchor_changes_mapping() {
        let mut c = Correspondence::new(ATime::ZERO, 8000.0, ATime::ZERO, 8000.0);
        c.reanchor(ATime::new(100), ATime::new(500));
        assert_eq!(c.a_to_b(ATime::new(100)), ATime::new(500));
        assert_eq!(c.a_to_b(ATime::new(180)), ATime::new(580));
    }

    #[test]
    fn ratio_estimation() {
        let r = Correspondence::estimate_ratio(
            (ATime::new(0), ATime::new(0)),
            (ATime::new(8000), ATime::new(8008)),
        )
        .unwrap();
        assert!((r - 1.001).abs() < 1e-9);
        assert!(Correspondence::estimate_ratio(
            (ATime::new(5), ATime::new(0)),
            (ATime::new(5), ATime::new(10))
        )
        .is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = Correspondence::new(ATime::ZERO, 0.0, ATime::ZERO, 8000.0);
    }
}
