//! Audio device time for the AudioFile system.
//!
//! Every AudioFile device exposes a *device time*: a 32-bit unsigned counter
//! that increments once per sample period and wraps on overflow (§2.1 of the
//! paper).  There is no absolute reference — the counter starts at 0 when the
//! server initializes a device — so two times may only be compared when they
//! are known to be less than half the counter range (2³¹ samples) apart.
//!
//! This crate provides:
//!
//! * [`ATime`] — the wrapping time value with the paper's two's-complement
//!   ordering rules and sample arithmetic,
//! * [`Correspondence`] — the clock-pair conversion formula of §2.1
//!   (`t_b = T_b + R_b * ((t_a - T_a) / R_a)`),
//! * [`Region`] — classification of a requested time against a buffer window
//!   (distant past / recent past / near future / distant future), the
//!   vocabulary of the play and record models of §2.2–2.3.

#![forbid(unsafe_code)]
mod atime;
mod correspondence;
mod region;

pub use atime::ATime;
pub use correspondence::Correspondence;
pub use region::{BufferWindow, Region};

/// Duration measured in device sample ticks.
///
/// Durations are signed so that offsets like "0.5 seconds in the past" are
/// representable directly.
pub type SampleDelta = i32;

/// Number of samples corresponding to `seconds` at `rate` Hz, rounded to the
/// nearest tick.
///
/// # Examples
///
/// ```
/// assert_eq!(af_time::seconds_to_samples(4.0, 8000), 32_000);
/// assert_eq!(af_time::seconds_to_samples(-0.5, 8000), -4_000);
/// ```
pub fn seconds_to_samples(seconds: f64, rate: u32) -> SampleDelta {
    (seconds * f64::from(rate)).round() as SampleDelta
}

/// Seconds corresponding to `samples` ticks at `rate` Hz.
///
/// # Examples
///
/// ```
/// assert!((af_time::samples_to_seconds(32_000, 8000) - 4.0).abs() < 1e-12);
/// ```
pub fn samples_to_seconds(samples: SampleDelta, rate: u32) -> f64 {
    f64::from(samples) / f64::from(rate)
}
