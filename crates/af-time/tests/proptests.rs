//! Property-based tests for the device-time laws of §2.1.

use af_time::{ATime, BufferWindow, Correspondence, Region};
use proptest::prelude::*;

proptest! {
    /// Advancing by `d` then comparing recovers `d` (for |d| < 2³¹).
    #[test]
    fn delta_inverts_offset(base in any::<u32>(), d in any::<i32>()) {
        let a = ATime::new(base);
        let b = a.offset(d);
        prop_assert_eq!(b.delta(a), d);
        prop_assert_eq!(a.delta(b), d.wrapping_neg());
    }

    /// `is_after` / `is_before` are mutually exclusive and match the sign of
    /// the two's-complement delta.
    #[test]
    fn ordering_trichotomy(base in any::<u32>(), d in any::<i32>()) {
        let a = ATime::new(base);
        let b = a.offset(d);
        match d {
            0 => {
                prop_assert!(!b.is_after(a));
                prop_assert!(!b.is_before(a));
            }
            d if d > 0 => {
                prop_assert!(b.is_after(a));
                prop_assert!(!b.is_before(a));
            }
            _ => {
                prop_assert!(b.is_before(a));
                prop_assert!(!b.is_after(a));
            }
        }
    }

    /// Ordering of nearby times is translation-invariant: shifting both times
    /// by the same amount preserves before/after.
    #[test]
    fn ordering_translation_invariant(
        base in any::<u32>(),
        d in -1_000_000i32..1_000_000,
        shift in any::<i32>(),
    ) {
        let a = ATime::new(base);
        let b = a.offset(d);
        prop_assert_eq!(b.is_after(a), b.offset(shift).is_after(a.offset(shift)));
    }

    /// Offsets compose additively modulo 2³².
    #[test]
    fn offset_composes(base in any::<u32>(), d1 in any::<i32>(), d2 in any::<i32>()) {
        let a = ATime::new(base);
        prop_assert_eq!(a.offset(d1).offset(d2), a.offset(d1.wrapping_add(d2)));
    }

    /// A correspondence with equal rates is a pure translation.
    #[test]
    fn equal_rate_correspondence_is_translation(
        ta in any::<u32>(),
        tb in any::<u32>(),
        t in -10_000_000i32..10_000_000,
        rate in 1u32..200_000,
    ) {
        let c = Correspondence::new(ATime::new(ta), f64::from(rate), ATime::new(tb), f64::from(rate));
        let mapped = c.a_to_b(ATime::new(ta).offset(t));
        prop_assert_eq!(mapped, ATime::new(tb).offset(t));
    }

    /// a_to_b then b_to_a returns within rounding distance of the input.
    ///
    /// Valid only while the elapsed interval maps within ±2³¹ ticks on
    /// *both* clocks (the documented domain of `Correspondence`), so rates
    /// are kept within a bounded ratio of each other.
    #[test]
    fn correspondence_round_trip(
        ta in any::<u32>(),
        tb in any::<u32>(),
        t in -1_000_000i32..1_000_000,
        ra in 1_000u32..200_000,
        rb in 1_000u32..200_000,
    ) {
        let c = Correspondence::new(ATime::new(ta), f64::from(ra), ATime::new(tb), f64::from(rb));
        let t_a = ATime::new(ta).offset(t);
        let back = c.b_to_a(c.a_to_b(t_a));
        // Each direction rounds to the nearest tick; the error bound is one
        // tick of A per tick of rounding on B, i.e. ceil(ra/rb) + 1.
        let bound = (ra as i64 + rb as i64 - 1) / rb as i64 + 1;
        prop_assert!(i64::from(back.delta(t_a)).abs() <= bound,
            "round trip error {} exceeds bound {}", back.delta(t_a), bound);
    }

    /// Window classification is exhaustive and consistent with split_at_now.
    #[test]
    fn window_classification_consistent(
        now in any::<u32>(),
        past in 1u32..1 << 20,
        future in 1u32..1 << 20,
        probe in any::<i32>(),
    ) {
        let w = BufferWindow::new(ATime::new(now), past, future);
        let t = ATime::new(now).offset(probe);
        let r = w.classify(t);
        match r {
            Region::NearFuture => prop_assert!(probe >= 0 && (probe as u32) < future),
            Region::DistantFuture => prop_assert!(probe >= 0 && (probe as u32) >= future),
            Region::RecentPast => prop_assert!(probe < 0 && probe.unsigned_abs() <= past),
            Region::DistantPast => prop_assert!(probe < 0 && probe.unsigned_abs() > past),
        }
    }

    /// split_at_now conserves length and orders the pieces correctly.
    #[test]
    fn split_conserves_length(
        now in any::<u32>(),
        start_off in -1_000_000i32..1_000_000,
        len in 0u32..1 << 20,
    ) {
        let w = BufferWindow::new(ATime::new(now), 1 << 20, 1 << 20);
        let start = ATime::new(now).offset(start_off);
        let (p, f) = w.split_at_now(start, len);
        prop_assert_eq!(p + f, len);
        if p > 0 && p < len {
            // The boundary sample sits exactly at `now`.
            prop_assert_eq!(start + p, w.now());
        }
    }
}
