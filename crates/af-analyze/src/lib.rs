//! Project-invariant static analysis for the AudioFile workspace.
//!
//! `cargo run -p af-analyze` walks the source tree and enforces the
//! DESIGN.md invariants that `rustc` cannot see (DESIGN.md §10):
//!
//! | lint | invariant |
//! |------|-----------|
//! | `opcode-tables`    | the 37-request/5-event space derives from the one spec table and is covered by encode/decode/dispatch |
//! | `wallclock`        | no wall-clock reads inside dispatcher/worker hot paths (device time only) |
//! | `no-panics`        | no `unwrap`/`expect`/`panic!` on server request-handling paths |
//! | `lock-across-send` | no lock guard held across a channel send |
//! | `tick-arith`       | no bare `+`/`-`/`as` on device-time tick values (wrapping ops only) |
//! | `bounded-channels` | every channel in af-server is constructed bounded |
//! | `unsafe-audit`     | every crate gates `unsafe_code`; zero-unsafe crates `forbid` it |
//! | `unsafe-blocks`    | every `unsafe` site carries its own `// SAFETY:` audit; no dead or over-broad `allow(unsafe_code)` |
//! | `lock-order`       | all lock pairs are acquired in one global order (no deadlock cycles), checked through the call graph |
//! | `blocking-in-reactor` | nothing reachable from the reactor/worker event loops blocks |
//! | `alloc`            | nothing reachable from the per-tick data plane allocates |
//!
//! The first seven are line-oriented and run over the stripped view (now
//! rendered from the token stream — see [`lex`]); the last four are v2
//! whole-program lints over the item [`index`] and approximate
//! [`callgraph`].
//!
//! Findings can be suppressed at the site with a justified marker on the
//! same line or the line above:
//!
//! ```text
//! // af-analyze: allow(no-panics): poisoning is impossible, lock scope is a leaf
//! ```
//!
//! A marker with an unknown lint name or an empty justification is itself
//! a finding (`allow-marker`), so the escape hatch cannot rot silently.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod index;
pub mod lex;
pub mod lints;
pub mod source;

use source::SourceFile;
use std::fmt;
use std::path::Path;

/// Every lint name, as accepted by allow-markers.
pub const LINT_NAMES: &[&str] = &[
    "opcode-tables",
    "wallclock",
    "no-panics",
    "lock-across-send",
    "tick-arith",
    "bounded-channels",
    "unsafe-audit",
    "unsafe-blocks",
    "lock-order",
    "blocking-in-reactor",
    "alloc",
    "allow-marker",
];

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which lint fired (one of [`LINT_NAMES`]).
    pub lint: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

impl Finding {
    /// Builds a finding for 0-based line `line0` of `file`.
    pub fn at(lint: &'static str, file: &SourceFile, line0: usize, message: String) -> Finding {
        Finding {
            lint,
            file: file.rel.clone(),
            line: line0 + 1,
            message,
        }
    }
}

/// Wall-clock cost of one lint pass (or of building the shared index).
pub struct LintTiming {
    pub name: &'static str,
    pub duration: std::time::Duration,
}

/// Runs every lint over pre-parsed files and applies allow-markers.
pub fn analyze_files(files: &[SourceFile]) -> Vec<Finding> {
    analyze_files_timed(files).0
}

/// Like [`analyze_files`] but also reports per-lint wall-clock timings,
/// which `main` prints and guards (no single lint may exceed its budget —
/// the analyzer runs in CI on every push and must stay cheap).
pub fn analyze_files_timed(files: &[SourceFile]) -> (Vec<Finding>, Vec<LintTiming>) {
    let mut findings = Vec::new();
    let mut timings = Vec::new();
    let start = std::time::Instant::now();
    let index = index::Index::build(files);
    let graph = callgraph::CallGraph::build(&index, files);
    timings.push(LintTiming {
        name: "index+callgraph",
        duration: start.elapsed(),
    });
    let mut timed = |name: &'static str,
                     out: &mut Vec<Finding>,
                     run: &mut dyn FnMut() -> Vec<Finding>| {
        let start = std::time::Instant::now();
        out.extend(run());
        timings.push(LintTiming {
            name,
            duration: start.elapsed(),
        });
    };
    timed("opcode-tables", &mut findings, &mut || {
        lints::opcode_tables::run(files)
    });
    timed("wallclock", &mut findings, &mut || lints::wallclock::run(files));
    timed("no-panics", &mut findings, &mut || lints::no_panics::run(files));
    timed("lock-across-send", &mut findings, &mut || {
        lints::lock_across_send::run(files)
    });
    timed("tick-arith", &mut findings, &mut || lints::tick_arith::run(files));
    timed("bounded-channels", &mut findings, &mut || {
        lints::bounded_channels::run(files)
    });
    timed("unsafe-audit", &mut findings, &mut || {
        lints::unsafe_audit::run(files)
    });
    timed("unsafe-blocks", &mut findings, &mut || {
        lints::unsafe_blocks::run(files)
    });
    timed("lock-order", &mut findings, &mut || {
        lints::lock_order::run(files, &index, &graph)
    });
    timed("blocking-in-reactor", &mut findings, &mut || {
        lints::blocking_in_reactor::run(files, &index, &graph)
    });
    timed("alloc", &mut findings, &mut || {
        lints::alloc_hot::run(files, &index, &graph)
    });
    let mut kept = apply_markers(files, findings);
    kept.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    kept.dedup();
    (kept, timings)
}

/// Walks the workspace at `root`, parses its sources and runs every lint.
///
/// Scope: `crates/*/src/**`, the facade `src/**` and `examples/**`.
/// `shims/` (vendored third-party stand-ins) and test directories are out
/// of scope — the invariants govern first-party production code.
pub fn analyze_root(root: &Path) -> std::io::Result<Vec<Finding>> {
    let files = load_tree(root)?;
    Ok(analyze_files(&files))
}

/// Loads every in-scope `.rs` file under `root`.
pub fn load_tree(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<_> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        members.sort();
        for member in members {
            collect_rs(&member.join("src"), root, &mut files)?;
        }
    }
    collect_rs(&root.join("src"), root, &mut files)?;
    collect_rs(&root.join("examples"), root, &mut files)?;
    Ok(files)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.filter_map(|e| e.ok()).collect();
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let text = std::fs::read_to_string(&path)?;
            out.push(SourceFile::parse(&rel, &text));
        }
    }
    Ok(())
}

/// A parsed `af-analyze: allow(<lint>): <reason>` comment marker.
struct Marker<'a> {
    lint: &'a str,
    reason: &'a str,
}

const MARKER_TAG: &str = "af-analyze: allow(";

fn parse_marker(raw_line: &str) -> Option<Marker<'_>> {
    let at = raw_line.find(MARKER_TAG)?;
    // The tag must directly follow a comment opener — prose that merely
    // *mentions* the marker syntax (docs, messages) is not a marker.
    if !raw_line[..at].trim_end().ends_with("//") {
        return None;
    }
    let rest = &raw_line[at + MARKER_TAG.len()..];
    let close = rest.find(')')?;
    let lint = rest[..close].trim();
    let after = rest[close + 1..].trim_start();
    let reason = after.strip_prefix(':').unwrap_or("").trim();
    Some(Marker { lint, reason })
}

/// Drops findings covered by a valid marker on the same or preceding line;
/// reports malformed markers as `allow-marker` findings.
fn apply_markers(files: &[SourceFile], findings: Vec<Finding>) -> Vec<Finding> {
    let mut kept = Vec::new();
    for finding in findings {
        let Some(file) = files.iter().find(|f| f.rel == finding.file) else {
            kept.push(finding);
            continue;
        };
        let line0 = finding.line.saturating_sub(1);
        let covered = [Some(line0), line0.checked_sub(1)]
            .into_iter()
            .flatten()
            .filter_map(|l| file.lines.get(l))
            .filter_map(|raw| parse_marker(raw))
            .any(|m| m.lint == finding.lint && !m.reason.is_empty());
        if !covered {
            kept.push(finding);
        }
    }
    // Validate every marker in production code, used or not.
    for file in files {
        for (i, raw) in file.lines.iter().enumerate() {
            if file.in_test.get(i).copied().unwrap_or(false) {
                continue;
            }
            let Some(marker) = parse_marker(raw) else {
                continue;
            };
            if !LINT_NAMES.contains(&marker.lint) {
                kept.push(Finding::at(
                    "allow-marker",
                    file,
                    i,
                    format!("unknown lint `{}` in allow-marker", marker.lint),
                ));
            } else if marker.reason.is_empty() {
                kept.push(Finding::at(
                    "allow-marker",
                    file,
                    i,
                    "allow-marker must give a `: reason` justification".to_owned(),
                ));
            }
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marker_parses_lint_and_reason() {
        let m = parse_marker("    // af-analyze: allow(no-panics): leaf lock, no poisoning").unwrap();
        assert_eq!(m.lint, "no-panics");
        assert_eq!(m.reason, "leaf lock, no poisoning");
    }

    #[test]
    fn marker_without_reason_is_flagged() {
        let f = SourceFile::parse("a.rs", "// af-analyze: allow(no-panics)\nlet x = 1;\n");
        let out = apply_markers(&[f], Vec::new());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint, "allow-marker");
    }

    #[test]
    fn marker_with_unknown_lint_is_flagged() {
        let f = SourceFile::parse("a.rs", "// af-analyze: allow(no-such-lint): because\n");
        let out = apply_markers(&[f], Vec::new());
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("no-such-lint"));
    }

    #[test]
    fn valid_marker_suppresses_matching_lint_only() {
        let f = SourceFile::parse(
            "a.rs",
            "// af-analyze: allow(no-panics): justified here\nx.unwrap();\n",
        );
        let hit = |lint| Finding {
            lint,
            file: "a.rs".into(),
            line: 2,
            message: "m".into(),
        };
        let out = apply_markers(&[f], vec![hit("no-panics"), hit("wallclock")]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint, "wallclock");
    }
}
