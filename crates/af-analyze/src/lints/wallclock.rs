//! `wallclock`: hot sample paths must run on device time only.
//!
//! Device time (the 32-bit per-device sample counter, §2.1) is the only
//! clock the data plane may consult: it is what play/record requests are
//! timed against, it advances even when the host clock steps, and in the
//! sharded plane it is read from a lock-free `AtomicU64` snapshot.
//! Wall-clock reads (`Instant::now`, `SystemTime::now`, `.elapsed()`)
//! belong to the *scheduling* layer — the dispatcher's select loop, the
//! task queue, and the designated wake helpers (`wake_instant`,
//! `play_wake_instant`) that convert a device-time deficit into a sleep.
//!
//! The registry below names every hot function; a function that is renamed
//! or removed makes the lint fail loudly (stale registry) instead of
//! silently checking nothing.

use crate::source::SourceFile;
use crate::Finding;

const LINT: &str = "wallclock";

/// The hot-path registry: file → functions that must not read wall clocks.
const HOT_PATHS: &[(&str, &[&str])] = &[
    (
        "crates/af-server/src/dispatch.rs",
        &[
            "process_request",
            "dispatch",
            "h_play",
            "h_record",
            "finish_record",
            "drain_queue",
            "retry_blocked",
        ],
    ),
    (
        "crates/af-server/src/worker.rs",
        &[
            "handle",
            "handle_play",
            "handle_record",
            "finish_record",
            "retry_one",
            "run_group_update",
            "run_passthrough",
            "publish_snapshots",
        ],
    ),
    (
        "crates/af-server/src/reactor/mod.rs",
        &[
            "handle_wake",
            "handle_token",
            "flush_conn",
            "read_conn",
            "drive_read",
            "read_bcast",
            "pump_bcast",
        ],
    ),
    (
        "crates/af-server/src/broadcast.rs",
        &[
            "publish",
            "notify_shards",
            "fetch_batch",
            "absorb",
            "push_hex",
        ],
    ),
    (
        "crates/af-device/src/fec.rs",
        &[
            "crc32",
            "gf_mul_acc",
            "close_group",
            "encode",
            "decode",
            "try_reconstruct",
            "evict_oldest",
        ],
    ),
    (
        "crates/af-device/src/jitter.rs",
        &[
            "observe_transit",
            "target_depth",
            "insert",
            "read",
            "conceal_sample",
        ],
    ),
];

const CLOCK_READS: &[&str] = &["Instant::now", "SystemTime::now", ".elapsed("];

/// Runs the lint.
pub fn run(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (path, fns) in HOT_PATHS {
        let Some(file) = files.iter().find(|f| f.rel == *path) else {
            findings.push(Finding {
                lint: LINT,
                file: (*path).to_owned(),
                line: 0,
                message: "hot-path registry names a file that no longer exists; \
                          update HOT_PATHS in af-analyze"
                    .to_owned(),
            });
            continue;
        };
        for name in *fns {
            let Some((start, end)) = file.fn_span(name) else {
                findings.push(Finding {
                    lint: LINT,
                    file: file.rel.clone(),
                    line: 0,
                    message: format!(
                        "hot function `{name}` not found; update HOT_PATHS in af-analyze \
                         if it was renamed"
                    ),
                });
                continue;
            };
            for i in start..=end {
                for read in CLOCK_READS {
                    if file.code[i].contains(read) {
                        findings.push(Finding::at(
                            LINT,
                            file,
                            i,
                            format!(
                                "wall-clock read `{read}` inside hot path `{name}`; \
                                 hot paths run on device time (ATime snapshots) only"
                            ),
                        ));
                    }
                }
            }
        }
    }
    findings
}
