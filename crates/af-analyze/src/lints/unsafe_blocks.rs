//! `unsafe-blocks`: every `unsafe` site is individually audited.
//!
//! The v1 `unsafe-audit` lint accepted a module-level
//! `af-analyze: allow(unsafe-audit)` marker that waved through the whole
//! file.  This lint replaces that with per-site enforcement over the
//! token stream (so `unsafe_code` in attributes and `unsafe` in strings
//! or comments never confuse it):
//!
//! 1. every `unsafe {` block, `unsafe fn`, `unsafe impl`, and
//!    `unsafe trait` in production code needs a `// SAFETY:` comment on
//!    the same line or within the five raw lines above, stating why the
//!    invariants hold at *this* site;
//! 2. an `allow(unsafe_code)` whose file contains no unsafe site at all
//!    is dead surface and must be removed (back to the crate default);
//! 3. a module-wide `#![allow(unsafe_code)]` guarding fewer than two
//!    unsafe sites must narrow to per-item `#[allow(unsafe_code)]` — the
//!    blanket form is only earned by files that are *about* unsafe (the
//!    SIMD kernels, the syscall wrappers).

use crate::lex::Kind;
use crate::lints::prod_lines;
use crate::source::SourceFile;
use crate::Finding;

const LINT: &str = "unsafe-blocks";

/// How far above the `unsafe` token a `// SAFETY:` comment may sit.
const SAFETY_WINDOW: usize = 5;

/// Runs the lint.
pub fn run(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        let sites = unsafe_sites(file);
        for &(line, what) in &sites {
            if !has_safety_comment(file, line) {
                findings.push(Finding::at(
                    LINT,
                    file,
                    line,
                    format!(
                        "`{what}` without a `// SAFETY:` comment on or within \
                         {SAFETY_WINDOW} lines above; every unsafe site states \
                         why its invariants hold"
                    ),
                ));
            }
        }
        for i in prod_lines(file) {
            let code = &file.code[i];
            if !code.contains("allow(unsafe_code)") {
                continue;
            }
            let module_wide = code.contains("#![allow(unsafe_code)]");
            if sites.is_empty() {
                findings.push(Finding::at(
                    LINT,
                    file,
                    i,
                    "`allow(unsafe_code)` in a file with no unsafe site; \
                     remove it and fall back to the crate-level gate"
                        .to_owned(),
                ));
            } else if module_wide && sites.len() < 2 {
                findings.push(Finding::at(
                    LINT,
                    file,
                    i,
                    format!(
                        "module-wide `#![allow(unsafe_code)]` guards only {} \
                         unsafe site(s); narrow it to per-item \
                         `#[allow(unsafe_code)]`",
                        sites.len()
                    ),
                ));
            }
        }
    }
    findings
}

/// Every production `unsafe` site: (0-based line, site kind).
fn unsafe_sites(file: &SourceFile) -> Vec<(usize, &'static str)> {
    let toks: Vec<_> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut sites = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != Kind::Ident || tok.text != "unsafe" {
            continue;
        }
        if file.in_test.get(tok.line).copied().unwrap_or(false) {
            continue;
        }
        let what = match toks.get(i + 1) {
            Some(t) if t.is_punct('{') => "unsafe block",
            Some(t) if t.is_ident("fn") => "unsafe fn",
            Some(t) if t.is_ident("impl") => "unsafe impl",
            Some(t) if t.is_ident("trait") => "unsafe trait",
            Some(t) if t.is_ident("extern") => "unsafe extern",
            // `unsafe` in other positions (e.g. pointer casts inside an
            // already-counted block) — still a site worth the audit.
            _ => "unsafe",
        };
        sites.push((tok.line, what));
    }
    sites
}

/// `// SAFETY:` on the same raw line or within the window above.
fn has_safety_comment(file: &SourceFile, line0: usize) -> bool {
    let lo = line0.saturating_sub(SAFETY_WINDOW);
    file.lines
        .get(lo..=line0)
        .into_iter()
        .flatten()
        .any(|raw| raw.contains("SAFETY:"))
}
