//! `no-panics`: server request-handling paths must not be able to panic.
//!
//! A panic in the dispatcher or a worker kills the whole server for every
//! connected client (§7.3.1 has exactly one flow of control).  Fallible
//! cases must surface as protocol errors, disconnects, or degraded audio —
//! never as process death.  Production `af-server` code therefore bans
//! `.unwrap()`, `.expect(...)` and the panicking macros; `#[cfg(test)]`
//! code is exempt.

use crate::lints::{is_link_hot_src, is_server_src, prod_lines};
use crate::source::SourceFile;
use crate::Finding;

const LINT: &str = "no-panics";

/// `(needle, what to say)` — needles are matched against stripped code, so
/// occurrences inside strings/comments do not count.
const PATTERNS: &[(&str, &str)] = &[
    (".unwrap()", "`.unwrap()` can panic"),
    (".expect(", "`.expect(...)` can panic"),
    ("panic!", "`panic!` aborts the dispatcher"),
    ("unreachable!", "`unreachable!` aborts the dispatcher"),
    ("todo!", "`todo!` aborts the dispatcher"),
    ("unimplemented!", "`unimplemented!` aborts the dispatcher"),
];

/// Runs the lint.
pub fn run(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files.iter().filter(|f| is_server_src(f) || is_link_hot_src(f)) {
        for i in prod_lines(file) {
            for (needle, why) in PATTERNS {
                if file.code[i].contains(needle) {
                    findings.push(Finding::at(
                        LINT,
                        file,
                        i,
                        format!("{why} on a server path; return an error or degrade instead"),
                    ));
                }
            }
        }
    }
    findings
}
