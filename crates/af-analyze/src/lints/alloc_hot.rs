//! `alloc`: no heap allocation on the per-tick data plane.
//!
//! The sample pump runs once per device tick with a hard deadline; a
//! `Vec::new` that grows, a `format!`, a defensive `.clone()` are each a
//! malloc — and malloc takes a process-global lock and has unbounded
//! tail latency.  Hot-path buffers are pre-sized at setup and reused
//! (`clear()` + `extend_from_slice`, scratch fields, fixed arrays).
//!
//! Roots are the *data-plane* subset of the hot-path registry: the
//! request-handling arms of the dispatcher, the worker pump bodies, the
//! reactor shard handlers (including the broadcast listener read/pump
//! paths), the broadcast seal/fetch entry points, and the FEC/jitter
//! per-frame entry points.
//! The dispatcher's control arms (open/close/configure) may allocate —
//! they run once per session, not once per tick — and are deliberately
//! not roots.  Follows the call graph like `blocking-in-reactor`; a
//! setup-time or amortized allocation that is genuinely fine is justified
//! per site with `// af-analyze: allow(alloc): reason`.

use crate::callgraph::CallGraph;
use crate::index::Index;
use crate::lints::{run_reach_scan, ReachScan};
use crate::source::SourceFile;
use crate::Finding;

/// Data-plane roots (per-tick / per-frame code only).
const ROOTS: &[(&str, &[&str])] = &[
    (
        "crates/af-server/src/dispatch.rs",
        &[
            "h_play",
            "h_record",
            "finish_record",
            "drain_queue",
            "retry_blocked",
        ],
    ),
    (
        "crates/af-server/src/worker.rs",
        &[
            "handle_play",
            "handle_record",
            "finish_record",
            "retry_one",
            "run_group_update",
            "run_passthrough",
            "publish_snapshots",
        ],
    ),
    (
        "crates/af-server/src/reactor/mod.rs",
        &[
            "handle_wake",
            "handle_token",
            "flush_conn",
            "read_conn",
            "drive_read",
            "read_bcast",
            "pump_bcast",
        ],
    ),
    (
        "crates/af-server/src/broadcast.rs",
        &["publish", "fetch_batch", "absorb"],
    ),
    ("crates/af-device/src/fec.rs", &["encode", "decode"]),
    ("crates/af-device/src/jitter.rs", &["insert", "read"]),
];

/// Allocation patterns over stripped code.  Deliberately absent:
/// `Vec::with_capacity` and `vec![n; len]` — those are *sized* one-shot
/// allocations, i.e. exactly the "pre-size" shape this lint pushes
/// toward; the targets are the incremental/defensive allocators.
const PATTERNS: &[&str] = &[
    "Vec::new",
    ".to_vec()",
    "Box::new",
    "format!(",
    ".clone()",
    ".to_owned()",
    ".to_string(",
    "String::new",
];

/// Control-plane cuts:
///
/// * `drain_queue`/`retry_blocked` replay queued requests through the
///   full dispatcher, whose control arms (open, close, configure,
///   properties) legitimately allocate; the data-plane dispatch arms are
///   covered directly as roots.
/// * the reactor's accept/registration path runs per *connection*, not
///   per tick — boxing the conn state and cloning its channel handles
///   there is setup, amortized over the connection lifetime.  The same
///   holds for the broadcast listener plane: `accept_bcast`/
///   `register_bcast` box the listener slot and `start_stream` builds
///   the one-shot HTTP/ICY response head; the per-publish fan-out in
///   `pump_bcast` writes `Arc`-shared ring chunks and stays a root.
/// * FEC `try_reconstruct` is the loss-recovery path: it runs only when
///   shards actually went missing, and Gaussian elimination needs its
///   matrices; the steady lossless path never enters it.
const BARRIERS: &[(&str, &[&str])] = &[
    (
        "crates/af-server/src/dispatch.rs",
        &["process_request", "dispatch"],
    ),
    (
        "crates/af-server/src/reactor/mod.rs",
        &[
            "accept_tcp",
            "accept_unix",
            "register_conn",
            "accept_bcast",
            "register_bcast",
            "start_stream",
        ],
    ),
    ("crates/af-device/src/fec.rs", &["try_reconstruct"]),
];

const SCAN: ReachScan = ReachScan {
    lint: "alloc",
    roots: ROOTS,
    barriers: BARRIERS,
    patterns: PATTERNS,
    rationale: "the per-tick data plane must not allocate; pre-size at \
                setup and reuse scratch buffers",
};

/// Runs the lint.
pub fn run(files: &[SourceFile], index: &Index, graph: &CallGraph) -> Vec<Finding> {
    run_reach_scan(&SCAN, files, index, graph)
}
