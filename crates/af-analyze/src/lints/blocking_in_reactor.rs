//! `blocking-in-reactor`: nothing reachable from an event-loop may block.
//!
//! The reactor owns every connection on its shard; one blocked call —
//! a sleep, a bounded-channel `send`/`recv`, a contended `lock`, a
//! blocking read — stalls *all* of them, which on a WAN link shows up as
//! a burst of late frames and concealment on every session at once.  The
//! same holds for the worker hot loops: they run the per-tick sample
//! pump and may only use non-blocking primitives (`try_send`, atomics,
//! pre-sized scratch).
//!
//! Unlike `wallclock` (which checks the named functions only), this lint
//! follows the approximate call graph: a helper three calls away from
//! `handle_wake` is as much inside the loop as the loop body itself.
//! Each finding reports the call path it was reached through.  Designed
//! blocking — e.g. the reactor's bounded event-queue send, which *is*
//! the backpressure mechanism — is justified per site with
//! `// af-analyze: allow(blocking-in-reactor): reason`.

use crate::callgraph::CallGraph;
use crate::index::Index;
use crate::lints::{run_reach_scan, ReachScan};
use crate::source::SourceFile;
use crate::Finding;

/// The event-loop roots: the reactor shard handlers and the worker
/// hot-loop bodies.
const ROOTS: &[(&str, &[&str])] = &[
    (
        "crates/af-server/src/reactor/mod.rs",
        &[
            "handle_wake",
            "handle_token",
            "flush_conn",
            "read_conn",
            "drive_read",
        ],
    ),
    (
        "crates/af-server/src/worker.rs",
        &[
            "handle",
            "handle_play",
            "handle_record",
            "finish_record",
            "retry_one",
            "run_group_update",
            "run_passthrough",
            "publish_snapshots",
        ],
    ),
];

/// Blocking call patterns.  `.send(` does not match `.try_send(`; `.recv()`
/// etc. are the blocking channel reads; `.lock()` blocks on contention;
/// the `read_*`/`write_all` family are blocking `std::io` calls.
const PATTERNS: &[&str] = &[
    "thread::sleep(",
    "::sleep(",
    ".recv()",
    ".recv_timeout(",
    ".recv_deadline(",
    ".send(",
    ".join()",
    ".wait(",
    ".wait_timeout(",
    ".lock()",
    ".read_exact(",
    ".read_to_end(",
    ".read_to_string(",
    ".write_all(",
];

const SCAN: ReachScan = ReachScan {
    lint: "blocking-in-reactor",
    roots: ROOTS,
    barriers: &[],
    patterns: PATTERNS,
    rationale: "event loops must stay non-blocking (try_send, atomics, \
                nonblocking I/O); a block here stalls every connection on \
                the shard",
};

/// Runs the lint.
pub fn run(files: &[SourceFile], index: &Index, graph: &CallGraph) -> Vec<Finding> {
    run_reach_scan(&SCAN, files, index, graph)
}
