//! `opcode-tables`: the opcode space has one source of truth and full
//! coverage.
//!
//! `af-proto/src/spec.rs` holds the only hand-written list of the 37
//! request opcodes (Table 1) and 5 event kinds (§5.2).  The enums and
//! reply classification are macro-generated from it, so they cannot
//! drift; what *can* drift are the hand-written match tables that give
//! each opcode its wire layout and server behavior.  This lint parses the
//! spec rows straight out of the source and cross-checks:
//!
//! * the rows themselves: counts match `REQUEST_COUNT`/`EVENT_COUNT`,
//!   wire values dense and duplicate-free, names unique;
//! * `request.rs`: every request is matched in `encode_payload` (the
//!   encode/length table) and `decode`;
//! * `event.rs`: every event kind is matched in `Event::decode`;
//! * `af-server/dispatch.rs`: every request has a dispatch arm;
//! * the generated artifacts really are generated: `opcode.rs`,
//!   `request.rs` and `event.rs` must invoke the table macros rather than
//!   re-listing opcodes by hand.

use crate::source::SourceFile;
use crate::Finding;

const LINT: &str = "opcode-tables";

const SPEC: &str = "crates/af-proto/src/spec.rs";
const OPCODE: &str = "crates/af-proto/src/opcode.rs";
const REQUEST: &str = "crates/af-proto/src/request.rs";
const EVENT: &str = "crates/af-proto/src/event.rs";
const DISPATCH: &str = "crates/af-server/src/dispatch.rs";

/// One parsed spec row.
#[derive(Debug, PartialEq, Eq)]
pub struct Row {
    /// Variant name.
    pub name: String,
    /// Wire value.
    pub wire: u32,
    /// 0-based source line.
    pub line: usize,
}

/// Runs the lint.
pub fn run(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let get = |rel: &str| files.iter().find(|f| f.rel == rel);

    let Some(spec) = get(SPEC) else {
        findings.push(missing(SPEC));
        return findings;
    };
    let (requests, events) = parse_spec(spec);
    check_rows(spec, "request", &requests, 1, &mut findings);
    check_rows(spec, "event", &events, 0, &mut findings);
    check_count_const(spec, "REQUEST_COUNT", requests.len(), &mut findings);
    check_count_const(spec, "EVENT_COUNT", events.len(), &mut findings);

    match get(OPCODE) {
        Some(opcode) => check_generated(opcode, "with_request_table!", &mut findings),
        None => findings.push(missing(OPCODE)),
    }

    match get(REQUEST) {
        Some(request) => {
            check_generated(request, "with_request_table!", &mut findings);
            check_fn_coverage(request, "encode_payload", "Request::", &requests, &mut findings);
            check_fn_coverage(request, "decode", "Opcode::", &requests, &mut findings);
        }
        None => findings.push(missing(REQUEST)),
    }

    match get(EVENT) {
        Some(event) => {
            check_generated(event, "with_event_table!", &mut findings);
            check_fn_coverage(event, "decode", "EventKind::", &events, &mut findings);
        }
        None => findings.push(missing(EVENT)),
    }

    match get(DISPATCH) {
        Some(dispatch) => check_dispatch(dispatch, &requests, &mut findings),
        None => findings.push(missing(DISPATCH)),
    }

    findings
}

fn missing(rel: &str) -> Finding {
    Finding {
        lint: LINT,
        file: rel.to_owned(),
        line: 0,
        message: "file expected by the opcode-table cross-check does not exist; \
                  update af-analyze if it moved"
            .to_owned(),
    }
}

/// Extracts the request and event rows from the two table macros.
pub fn parse_spec(spec: &SourceFile) -> (Vec<Row>, Vec<Row>) {
    #[derive(PartialEq)]
    enum Mode {
        None,
        Requests,
        Events,
    }
    let mut mode = Mode::None;
    let mut requests = Vec::new();
    let mut events = Vec::new();
    for (i, code) in spec.code.iter().enumerate() {
        if code.contains("macro_rules!") {
            mode = if code.contains("with_request_table") {
                Mode::Requests
            } else if code.contains("with_event_table") {
                Mode::Events
            } else {
                Mode::None
            };
            continue;
        }
        if mode == Mode::None {
            continue;
        }
        let Some(row) = parse_row(code, i) else {
            continue;
        };
        match mode {
            Mode::Requests => requests.push(row),
            Mode::Events => events.push(row),
            Mode::None => {}
        }
    }
    (requests, events)
}

/// Parses `(Name, wire, ...),` — returns `None` for non-row lines.
fn parse_row(code: &str, line: usize) -> Option<Row> {
    let t = code.trim();
    let inner = t.strip_prefix('(')?;
    let inner = inner
        .strip_suffix("),")
        .or_else(|| inner.strip_suffix(')'))?;
    let mut fields = inner.split(',').map(str::trim);
    let name = fields.next()?;
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return None;
    }
    if !name.chars().next()?.is_ascii_uppercase() {
        return None;
    }
    let wire: u32 = fields.next()?.parse().ok()?;
    Some(Row {
        name: name.to_owned(),
        wire,
        line,
    })
}

/// Rows must be non-empty, dense from `base`, and uniquely named.
fn check_rows(spec: &SourceFile, what: &str, rows: &[Row], base: u32, out: &mut Vec<Finding>) {
    if rows.is_empty() {
        out.push(Finding {
            lint: LINT,
            file: spec.rel.clone(),
            line: 0,
            message: format!("no {what} rows found in the spec table"),
        });
        return;
    }
    for (i, row) in rows.iter().enumerate() {
        let expect = base + i as u32;
        if row.wire != expect {
            out.push(Finding::at(
                LINT,
                spec,
                row.line,
                format!(
                    "{what} `{}` has wire value {} but table position implies {expect}; \
                     wire values must be dense and in order",
                    row.name, row.wire
                ),
            ));
        }
        if rows[..i].iter().any(|r| r.name == row.name) {
            out.push(Finding::at(
                LINT,
                spec,
                row.line,
                format!("duplicate {what} name `{}` in the spec table", row.name),
            ));
        }
    }
}

/// `pub const NAME: usize = N;` must equal the actual row count.
fn check_count_const(spec: &SourceFile, name: &str, actual: usize, out: &mut Vec<Finding>) {
    let needle = format!("const {name}: usize =");
    for (i, code) in spec.code.iter().enumerate() {
        let Some(at) = code.find(&needle) else {
            continue;
        };
        let declared: Option<usize> = code[at + needle.len()..]
            .trim()
            .trim_end_matches(';')
            .parse()
            .ok();
        if declared != Some(actual) {
            out.push(Finding::at(
                LINT,
                spec,
                i,
                format!("`{name}` declares {declared:?} but the table has {actual} rows"),
            ));
        }
        return;
    }
    out.push(Finding {
        lint: LINT,
        file: spec.rel.clone(),
        line: 0,
        message: format!("`const {name}` not found in the spec module"),
    });
}

/// The generated artifact must invoke its table macro.
fn check_generated(file: &SourceFile, invocation: &str, out: &mut Vec<Finding>) {
    if !file.code.iter().any(|l| l.contains(invocation)) {
        out.push(Finding {
            lint: LINT,
            file: file.rel.clone(),
            line: 0,
            message: format!(
                "expected `{invocation}` invocation; opcode artifacts must be \
                 generated from the spec table, not hand-listed"
            ),
        });
    }
}

/// Every row's `{prefix}{Name}` must occur inside `fn <fn_name>`'s span.
fn check_fn_coverage(
    file: &SourceFile,
    fn_name: &str,
    prefix: &str,
    rows: &[Row],
    out: &mut Vec<Finding>,
) {
    let Some((start, end)) = file.fn_span(fn_name) else {
        out.push(Finding {
            lint: LINT,
            file: file.rel.clone(),
            line: 0,
            message: format!("function `{fn_name}` not found for coverage check"),
        });
        return;
    };
    let body = file.code[start..=end].join("\n");
    for row in rows {
        if !covers(&body, prefix, &row.name) {
            out.push(Finding {
                lint: LINT,
                file: file.rel.clone(),
                line: start + 1,
                message: format!(
                    "`{fn_name}` does not cover `{prefix}{}`; every spec-table row \
                     needs an arm here",
                    row.name
                ),
            });
        }
    }
}

/// The server dispatch match must have an arm per request (it imports
/// `Request as R`, so accept either path prefix).
fn check_dispatch(dispatch: &SourceFile, requests: &[Row], out: &mut Vec<Finding>) {
    let Some((start, end)) = dispatch.fn_span("dispatch") else {
        out.push(Finding {
            lint: LINT,
            file: dispatch.rel.clone(),
            line: 0,
            message: "function `dispatch` not found for coverage check".to_owned(),
        });
        return;
    };
    let body = dispatch.code[start..=end].join("\n");
    for row in requests {
        if !covers(&body, "Request::", &row.name) && !covers(&body, "R::", &row.name) {
            out.push(Finding {
                lint: LINT,
                file: dispatch.rel.clone(),
                line: start + 1,
                message: format!(
                    "server dispatch has no arm for `Request::{}`; every protocol \
                     request must be routed (even if to an error reply)",
                    row.name
                ),
            });
        }
    }
}

/// Whole-token occurrence of `{prefix}{name}` in `body`.
fn covers(body: &str, prefix: &str, name: &str) -> bool {
    let needle = format!("{prefix}{name}");
    let bytes = body.as_bytes();
    let mut from = 0;
    while let Some(off) = body[from..].find(&needle) {
        let end = from + off + needle.len();
        let boundary = bytes
            .get(end)
            .is_none_or(|b| !(b.is_ascii_alphanumeric() || *b == b'_'));
        if boundary {
            return true;
        }
        from = from + off + 1;
    }
    false
}
