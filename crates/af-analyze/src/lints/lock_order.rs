//! `lock-order`: every pair of locks is acquired in one global order.
//!
//! Deadlock needs four ingredients; the one a static lint can kill is
//! circular wait.  The index records, per function, which declared
//! `Mutex`/`RwLock` fields it acquires and which it acquires *while
//! already holding another* ([`crate::index::FnInfo::ordered`]).  Held
//! guards also propagate through the call graph: if `f` calls `g` while
//! holding `a`, every lock `g` transitively acquires is ordered after
//! `a`.  The union of those edges forms the lock-order graph; any cycle
//! is a potential deadlock and the finding names the acquisition site of
//! both sides so the inversion can be read directly from the report.
//!
//! Guard liveness is the same heuristic the `lock-across-send` lint uses:
//! a `let`-bound guard lives to the end of its block or an explicit
//! `drop(guard)`; temporary guards (`x.lock().unwrap().field`) die at the
//! end of their statement and order nothing.

use crate::callgraph::CallGraph;
use crate::index::Index;
use crate::source::SourceFile;
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};

const LINT: &str = "lock-order";

/// Where a lock was acquired.
#[derive(Clone, Debug)]
struct Site {
    file: String,
    /// 0-based.
    line: usize,
    func: String,
}

/// One ordered edge `first -> second` with its witnessing sites.
struct Edge {
    first_site: Site,
    second_site: Site,
}

/// Runs the lint.
pub fn run(files: &[SourceFile], index: &Index, graph: &CallGraph) -> Vec<Finding> {
    // Transitive acquire sets: lock name -> representative site, per fn,
    // to a fixpoint over call edges.
    let n = index.fns.len();
    let mut trans: Vec<BTreeMap<String, Site>> = (0..n)
        .map(|f| {
            let info = &index.fns[f];
            info.acquires
                .iter()
                .map(|a| {
                    (
                        a.lock.clone(),
                        Site {
                            file: files[info.file].rel.clone(),
                            line: a.line,
                            func: info.name.clone(),
                        },
                    )
                })
                .collect()
        })
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for caller in 0..n {
            for k in 0..graph.callees[caller].len() {
                let callee = graph.callees[caller][k];
                if callee == caller {
                    continue;
                }
                let add: Vec<(String, Site)> = trans[callee]
                    .iter()
                    .filter(|(lock, _)| !trans[caller].contains_key(*lock))
                    .map(|(lock, site)| (lock.clone(), site.clone()))
                    .collect();
                if !add.is_empty() {
                    changed = true;
                    trans[caller].extend(add);
                }
            }
        }
    }

    // Collect edges (first occurrence wins as the witness).
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    for (f, info) in index.fns.iter().enumerate() {
        if info.in_test {
            continue;
        }
        let rel = &files[info.file].rel;
        for pair in &info.ordered {
            if pair.first.lock == pair.second.lock {
                continue;
            }
            edges
                .entry((pair.first.lock.clone(), pair.second.lock.clone()))
                .or_insert_with(|| Edge {
                    first_site: Site {
                        file: rel.clone(),
                        line: pair.first.line,
                        func: info.name.clone(),
                    },
                    second_site: Site {
                        file: rel.clone(),
                        line: pair.second.line,
                        func: info.name.clone(),
                    },
                });
        }
        for hc in &info.held_calls {
            for (k, &callee) in graph.callees[f].iter().enumerate() {
                if graph.call_sites[f][k] != hc.call || callee == f {
                    continue;
                }
                for (lock, site) in &trans[callee] {
                    if *lock == hc.held.lock {
                        continue;
                    }
                    edges
                        .entry((hc.held.lock.clone(), lock.clone()))
                        .or_insert_with(|| Edge {
                            first_site: Site {
                                file: rel.clone(),
                                line: hc.held.line,
                                func: info.name.clone(),
                            },
                            second_site: site.clone(),
                        });
                }
            }
        }
    }

    // Cycle detection: for each edge a->b, is a reachable back from b?
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a).or_default().push(b);
    }
    let mut findings = Vec::new();
    let mut reported: BTreeSet<BTreeSet<String>> = BTreeSet::new();
    for (a, b) in edges.keys() {
        let Some(path) = find_path(&adj, b, a) else {
            continue;
        };
        // `path` is the nodes after `b`, ending at `a`; the cycle is
        // a -> b -> path[..-1] -> (a).  Dedup by its lock set.
        let mut cycle: Vec<&str> = vec![a.as_str(), b.as_str()];
        cycle.extend(path[..path.len() - 1].iter().copied());
        let locks: BTreeSet<String> = cycle.iter().map(|s| s.to_string()).collect();
        if !reported.insert(locks) {
            continue;
        }
        let closing = [*cycle.last().unwrap(), cycle[0]];
        let legs: Vec<String> = cycle
            .windows(2)
            .chain(std::iter::once(&closing[..]))
            .map(|w| {
                let e = &edges[&(w[0].to_owned(), w[1].to_owned())];
                format!(
                    "`{}` (held from {}:{} in `{}`) then `{}` (acquired at {}:{} in `{}`)",
                    w[0],
                    e.first_site.file,
                    e.first_site.line + 1,
                    e.first_site.func,
                    w[1],
                    e.second_site.file,
                    e.second_site.line + 1,
                    e.second_site.func,
                )
            })
            .collect();
        let head = &edges[&(a.clone(), b.clone())];
        findings.push(Finding {
            lint: LINT,
            file: head.second_site.file.clone(),
            line: head.second_site.line + 1,
            message: format!(
                "lock order cycle between {}: {}; pick one global order and \
                 release before acquiring against it",
                cycle
                    .iter()
                    .map(|l| format!("`{l}`"))
                    .collect::<Vec<_>>()
                    .join(", "),
                legs.join(" vs "),
            ),
        });
    }
    findings
}

/// Shortest path `from -> ... -> to` over the edge adjacency, returned as
/// the nodes *after* `from` (a direct edge yields `[to]`).  Requires at
/// least one edge, so `from == to` finds genuine cycles only.
fn find_path<'a>(
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    from: &'a str,
    to: &str,
) -> Option<Vec<&'a str>> {
    let mut prev: BTreeMap<&'a str, &'a str> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::new();
    for &next in adj.get(from).into_iter().flatten() {
        if !prev.contains_key(next) {
            prev.insert(next, from);
            queue.push_back(next);
        }
    }
    while let Some(node) = queue.pop_front() {
        if node == to {
            let mut path = vec![node];
            let mut cur = node;
            while let Some(&p) = prev.get(cur) {
                if p == from {
                    break;
                }
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &next in adj.get(node).into_iter().flatten() {
            if !prev.contains_key(next) {
                prev.insert(next, node);
                queue.push_back(next);
            }
        }
    }
    None
}
