//! `lock-across-send`: never hold a lock guard across a channel send.
//!
//! A bounded channel send can block (that is the point of backpressure);
//! blocking while holding a mutex turns one slow consumer into a pile-up
//! of every thread that touches the same lock — with the dispatcher in
//! that pile, the whole server stalls.  The rule: finish the locked work,
//! drop the guard, then send.
//!
//! Heuristic: a `let guard = ....lock()...;` binding is considered live
//! until its enclosing block closes or an explicit `drop(guard)`; any
//! `.send(` / `.try_send(` on a live-guard line is a finding.  Lock calls
//! used as temporaries (`x.lock().unwrap().push(...)`) release at the end
//! of the statement and are not tracked.

use crate::lints::{is_server_src, prod_lines};
use crate::source::{find_word, SourceFile};
use crate::Finding;

const LINT: &str = "lock-across-send";

struct Guard {
    name: String,
    depth: i64,
    line: usize,
}

/// Runs the lint.
pub fn run(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files.iter().filter(|f| is_server_src(f)) {
        let mut depth = 0i64;
        let mut guards: Vec<Guard> = Vec::new();
        for i in prod_lines(file) {
            let code = &file.code[i];
            if let Some(name) = lock_binding(code) {
                guards.push(Guard {
                    name,
                    depth,
                    line: i,
                });
            }
            if (code.contains(".send(") || code.contains(".try_send(")) && !guards.is_empty() {
                for g in &guards {
                    findings.push(Finding::at(
                        LINT,
                        file,
                        i,
                        format!(
                            "channel send while lock guard `{}` (bound on line {}) is \
                             held; drop the guard before sending",
                            g.name,
                            g.line + 1
                        ),
                    ));
                }
            }
            for ch in code.chars() {
                match ch {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        // A guard bound at depth D dies when its block
                        // closes (depth drops below D).
                        guards.retain(|g| depth >= g.depth);
                    }
                    _ => {}
                }
            }
            guards.retain(|g| {
                !(code.contains(&format!("drop({})", g.name))
                    || code.contains(&format!("drop({});", g.name)))
            });
        }
    }
    findings
}

/// Extracts the binding name from `let [mut] NAME ... = <expr with .lock()>;`.
fn lock_binding(code: &str) -> Option<String> {
    let let_at = find_word(code, "let")?;
    let lock_at = code.find(".lock()")?;
    if lock_at < let_at {
        return None;
    }
    let rest = code[let_at + 3..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    // Only track plain identifier bindings assigned on the same line.
    let eq = code[let_at..lock_at].contains('=');
    (!name.is_empty() && eq).then_some(name)
}
