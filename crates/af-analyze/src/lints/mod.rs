//! The individual lints.
//!
//! Each module exposes `run(files: &[SourceFile]) -> Vec<Finding>` and owns
//! one invariant from DESIGN.md §10.  Lints scope themselves by
//! workspace-relative path — passing them a synthetic tree (as the fixture
//! tests do) works as long as the `rel` paths match the production layout.

pub mod alloc_hot;
pub mod blocking_in_reactor;
pub mod bounded_channels;
pub mod lock_across_send;
pub mod lock_order;
pub mod no_panics;
pub mod opcode_tables;
pub mod tick_arith;
pub mod unsafe_audit;
pub mod unsafe_blocks;
pub mod wallclock;

use crate::callgraph::CallGraph;
use crate::index::Index;
use crate::source::SourceFile;
use crate::Finding;

/// Whether the file is in-scope server production code.
pub(crate) fn is_server_src(file: &SourceFile) -> bool {
    file.rel.starts_with("crates/af-server/src/")
}

/// Whether the file is WAN-link hot-path code (FEC and the jitter
/// buffer): it runs inside the server's real-time pump, so it inherits
/// the server-side panic and backpressure bans.
pub(crate) fn is_link_hot_src(file: &SourceFile) -> bool {
    file.rel == "crates/af-device/src/fec.rs" || file.rel == "crates/af-device/src/jitter.rs"
}

/// Iterates 0-based indices of non-test lines.
pub(crate) fn prod_lines(file: &SourceFile) -> impl Iterator<Item = usize> + '_ {
    (0..file.code.len()).filter(|&i| !file.in_test[i])
}

/// A reachability lint: named root functions, forbidden call patterns,
/// one finding per pattern hit in any production function reachable from
/// a root through the call graph.
///
/// Shared by `blocking-in-reactor` and `alloc` — both are "nothing
/// reachable from these hot loops may do X" rules; they differ only in
/// roots, patterns and message.  Like `wallclock`, a registry entry that
/// no longer resolves is itself a finding: a renamed hot function must
/// not silently fall out of coverage.
pub(crate) struct ReachScan {
    pub lint: &'static str,
    /// file → root function names.
    pub roots: &'static [(&'static str, &'static [&'static str])],
    /// file → functions traversal must not enter (control-plane cuts).
    /// Unlike roots, a stale barrier is also a loud finding.
    pub barriers: &'static [(&'static str, &'static [&'static str])],
    /// Substring patterns over stripped code.
    pub patterns: &'static [&'static str],
    /// What the rule is, appended after the pattern and call path.
    pub rationale: &'static str,
}

pub(crate) fn run_reach_scan(
    scan: &ReachScan,
    files: &[SourceFile],
    index: &Index,
    graph: &CallGraph,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut roots = Vec::new();
    for (path, fns) in scan.roots {
        if !files.iter().any(|f| f.rel == *path) {
            findings.push(Finding {
                lint: scan.lint,
                file: (*path).to_owned(),
                line: 0,
                message: "root registry names a file that no longer exists; \
                          update the registry in af-analyze"
                    .to_owned(),
            });
            continue;
        }
        for name in *fns {
            match index.find(files, path, name) {
                Some(f) => roots.push(f),
                None => findings.push(Finding {
                    lint: scan.lint,
                    file: (*path).to_owned(),
                    line: 0,
                    message: format!(
                        "root function `{name}` not found; update the registry in \
                         af-analyze if it was renamed"
                    ),
                }),
            }
        }
    }
    let mut barriers = std::collections::BTreeSet::new();
    for (path, fns) in scan.barriers {
        for name in *fns {
            match index.find(files, path, name) {
                Some(f) => {
                    barriers.insert(f);
                }
                None if files.iter().any(|f| f.rel == *path) => findings.push(Finding {
                    lint: scan.lint,
                    file: (*path).to_owned(),
                    line: 0,
                    message: format!(
                        "barrier function `{name}` not found; update the registry in \
                         af-analyze if it was renamed"
                    ),
                }),
                None => {}
            }
        }
    }
    let reach = graph.reach_stopping(&roots, |f| barriers.contains(&f));
    let mut seen_hits = std::collections::BTreeSet::new();
    for (f, info) in index.fns.iter().enumerate() {
        if !reach.seen[f] || info.in_test {
            continue;
        }
        let file = &files[info.file];
        let path = reach.path_to(index, f);
        for i in info.start_line..=info.end_line.min(file.code.len().saturating_sub(1)) {
            if file.in_test[i] {
                continue;
            }
            for pat in scan.patterns {
                if file.code[i].contains(pat) && seen_hits.insert((info.file, i, *pat)) {
                    findings.push(Finding::at(
                        scan.lint,
                        file,
                        i,
                        format!("`{pat}` reachable from hot loop ({path}); {}", scan.rationale),
                    ));
                }
            }
        }
    }
    findings
}
