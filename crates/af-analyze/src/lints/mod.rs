//! The individual lints.
//!
//! Each module exposes `run(files: &[SourceFile]) -> Vec<Finding>` and owns
//! one invariant from DESIGN.md §10.  Lints scope themselves by
//! workspace-relative path — passing them a synthetic tree (as the fixture
//! tests do) works as long as the `rel` paths match the production layout.

pub mod bounded_channels;
pub mod lock_across_send;
pub mod no_panics;
pub mod opcode_tables;
pub mod tick_arith;
pub mod unsafe_audit;
pub mod wallclock;

use crate::source::SourceFile;

/// Whether the file is in-scope server production code.
pub(crate) fn is_server_src(file: &SourceFile) -> bool {
    file.rel.starts_with("crates/af-server/src/")
}

/// Whether the file is WAN-link hot-path code (FEC and the jitter
/// buffer): it runs inside the server's real-time pump, so it inherits
/// the server-side panic and backpressure bans.
pub(crate) fn is_link_hot_src(file: &SourceFile) -> bool {
    file.rel == "crates/af-device/src/fec.rs" || file.rel == "crates/af-device/src/jitter.rs"
}

/// Iterates 0-based indices of non-test lines.
pub(crate) fn prod_lines(file: &SourceFile) -> impl Iterator<Item = usize> + '_ {
    (0..file.code.len()).filter(|&i| !file.in_test[i])
}
