//! `unsafe-audit`: crate-level unsafe posture matches crate contents.
//!
//! Two rules (per-site auditing moved to `unsafe-blocks` in v2):
//!
//! 1. Every crate root (`crates/*/src/lib.rs` and the facade `src/lib.rs`)
//!    must carry `#![forbid(unsafe_code)]` or `#![deny(unsafe_code)]`.
//! 2. A crate with *no* unsafe site anywhere in its production sources
//!    must use `forbid`, not `deny` — `deny` can be re-allowed by a
//!    module, so a zero-unsafe crate that merely denies leaves the door
//!    ajar for no reason.  Crates that do contain audited unsafe (the
//!    SIMD kernels in `af-dsp`, the syscall wrappers in `af-server`)
//!    legitimately stay on `deny` + scoped allows.

use crate::callgraph::crate_of;
use crate::lex::Kind;
use crate::source::SourceFile;
use crate::Finding;
use std::collections::BTreeSet;

const LINT: &str = "unsafe-audit";

/// Runs the lint.
pub fn run(files: &[SourceFile]) -> Vec<Finding> {
    // Crates with at least one production `unsafe` token.
    let mut crates_with_unsafe: BTreeSet<&str> = BTreeSet::new();
    for file in files {
        let has = file.tokens.iter().any(|t| {
            t.kind == Kind::Ident
                && t.text == "unsafe"
                && !file.in_test.get(t.line).copied().unwrap_or(false)
        });
        if has {
            crates_with_unsafe.insert(crate_of(&file.rel));
        }
    }
    let mut findings = Vec::new();
    for file in files {
        if !is_crate_root(&file.rel) {
            continue;
        }
        let forbids = has_gate(file, "#![forbid(unsafe_code)]");
        let denies = has_gate(file, "#![deny(unsafe_code)]");
        if !forbids && !denies {
            findings.push(Finding {
                lint: LINT,
                file: file.rel.clone(),
                line: 1,
                message: "crate root must carry `#![forbid(unsafe_code)]` or \
                          `#![deny(unsafe_code)]`"
                    .to_owned(),
            });
        } else if denies && !crates_with_unsafe.contains(crate_of(&file.rel)) {
            findings.push(Finding {
                lint: LINT,
                file: file.rel.clone(),
                line: 1,
                message: "crate has no unsafe code; tighten \
                          `#![deny(unsafe_code)]` to `#![forbid(unsafe_code)]`"
                    .to_owned(),
            });
        }
    }
    findings
}

fn is_crate_root(rel: &str) -> bool {
    if rel == "src/lib.rs" {
        return true;
    }
    let Some(rest) = rel.strip_prefix("crates/") else {
        return false;
    };
    matches!(rest.split_once('/'), Some((_, "src/lib.rs")))
}

fn has_gate(file: &SourceFile, gate: &str) -> bool {
    file.code.iter().any(|l| l.contains(gate))
}
