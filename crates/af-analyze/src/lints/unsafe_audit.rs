//! `unsafe-audit`: unsafe code is denied by default and audited where kept.
//!
//! Three rules:
//!
//! 1. Every crate root (`crates/*/src/lib.rs` and the facade `src/lib.rs`)
//!    must carry `#![forbid(unsafe_code)]` or `#![deny(unsafe_code)]`.
//! 2. Re-enabling unsafe (`allow(unsafe_code)`) is a finding unless the
//!    site carries a justified `af-analyze: allow(unsafe-audit)` marker —
//!    the only place that does is `af-dsp`'s typed sample views.
//! 3. Every remaining `unsafe` token in production code must have a
//!    `// SAFETY:` comment on the same line or within the five lines
//!    above, stating why the invariants hold.

use crate::lints::prod_lines;
use crate::source::{find_word, SourceFile};
use crate::Finding;

const LINT: &str = "unsafe-audit";

/// Runs the lint.
pub fn run(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if is_crate_root(&file.rel) && !has_unsafe_gate(file) {
            findings.push(Finding {
                lint: LINT,
                file: file.rel.clone(),
                line: 1,
                message: "crate root must carry `#![forbid(unsafe_code)]` or \
                          `#![deny(unsafe_code)]`"
                    .to_owned(),
            });
        }
        for i in prod_lines(file) {
            let code = &file.code[i];
            if code.contains("allow(unsafe_code)") {
                findings.push(Finding::at(
                    LINT,
                    file,
                    i,
                    "re-enabling `unsafe_code` requires a justified \
                     `af-analyze: allow(unsafe-audit)` marker"
                        .to_owned(),
                ));
            }
            if find_word(code, "unsafe").is_some()
                && !code.contains("unsafe_code")
                && !has_safety_comment(file, i)
            {
                findings.push(Finding::at(
                    LINT,
                    file,
                    i,
                    "`unsafe` without a `// SAFETY:` comment on or above the \
                     line stating why the invariants hold"
                        .to_owned(),
                ));
            }
        }
    }
    findings
}

fn is_crate_root(rel: &str) -> bool {
    if rel == "src/lib.rs" {
        return true;
    }
    let Some(rest) = rel.strip_prefix("crates/") else {
        return false;
    };
    matches!(rest.split_once('/'), Some((_, "src/lib.rs")))
}

fn has_unsafe_gate(file: &SourceFile) -> bool {
    file.code.iter().any(|l| {
        l.contains("#![forbid(unsafe_code)]") || l.contains("#![deny(unsafe_code)]")
    })
}

/// `// SAFETY:` on the same line or within the five raw lines above.
fn has_safety_comment(file: &SourceFile, line0: usize) -> bool {
    let lo = line0.saturating_sub(5);
    file.lines[lo..=line0]
        .iter()
        .any(|raw| raw.contains("SAFETY:"))
}
