//! `tick-arith`: device-time ticks must use wrapping arithmetic.
//!
//! Device time is a 32-bit counter that wraps about every 27 hours at
//! 44.1 kHz (§2.1); correctness near the wrap point depends on every
//! operation being explicitly wrapping (`ATime::offset`, `ATime::delta`,
//! `wrapping_add`/`wrapping_sub`).  A bare `+`/`-` on a `.ticks()` value
//! is either an overflow panic in debug builds or a silent 2³²-sized
//! jump in release ones; a bare `as` cast hides sign/width bugs that
//! `u64::from`/`i64::from` would reject.  Flag arithmetic directly
//! adjacent to a `.ticks()` call; masking (`&`) and shifts are wrap-safe
//! and stay allowed.

use crate::lints::prod_lines;
use crate::source::SourceFile;
use crate::Finding;

const LINT: &str = "tick-arith";

/// Runs the lint.
pub fn run(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        for i in prod_lines(file) {
            let code = &file.code[i];
            let mut from = 0;
            while let Some(off) = code[from..].find(".ticks()") {
                let start = from + off;
                let end = start + ".ticks()".len();
                if let Some(op) = offending_op(code, start, end) {
                    findings.push(Finding::at(
                        LINT,
                        file,
                        i,
                        format!(
                            "bare `{op}` on a device-time tick value; use \
                             `ATime::offset`/`delta` or `wrapping_*` ops \
                             (and `u64::from` instead of `as` casts)"
                        ),
                    ));
                }
                from = end;
            }
        }
    }
    findings
}

/// Checks the characters around a `.ticks()` call for bare arithmetic.
fn offending_op(code: &str, start: usize, end: usize) -> Option<&'static str> {
    // After the call: `.ticks() + x`, `.ticks() - x`, `.ticks() as u32`.
    let after = code[end..].trim_start();
    if after.starts_with("+=") {
        return Some("+=");
    }
    if after.starts_with('+') {
        return Some("+");
    }
    if after.starts_with('-') && !after.starts_with("->") {
        return Some("-");
    }
    if after.starts_with("as ") {
        return Some("as");
    }
    // Before the receiver: `x + t.ticks()`.  Walk back over the receiver
    // expression (identifiers, field access, `::`) to the operator.
    let recv_start = code[..start]
        .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == ':'))
        .map(|p| p + 1)
        .unwrap_or(0);
    let before = code[..recv_start].trim_end();
    if before.ends_with('+') && !before.ends_with("++") {
        return Some("+");
    }
    if before.ends_with('-') {
        // `(a, -t.ticks())` unary minus is equally wrong on a u32; `->` is
        // a return-type arrow.
        if !before.ends_with("->") {
            return Some("-");
        }
    }
    None
}
