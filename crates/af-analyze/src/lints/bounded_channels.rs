//! `bounded-channels`: every channel in af-server must have a capacity.
//!
//! Backpressure is part of the PR 3 design: worker job queues are bounded
//! SPSC, client outbound queues are bounded with slow-client eviction, and
//! a full queue must stall the *producer*, not grow the heap until the
//! process dies.  An unbounded channel anywhere in the server silently
//! removes that guarantee, so constructing one is a finding.

use crate::lints::{is_link_hot_src, is_server_src, prod_lines};
use crate::source::SourceFile;
use crate::Finding;

const LINT: &str = "bounded-channels";

/// Runs the lint.
pub fn run(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files.iter().filter(|f| is_server_src(f) || is_link_hot_src(f)) {
        for i in prod_lines(file) {
            let code = &file.code[i];
            // `unbounded(...)` and the turbofish `unbounded::<T>()` form.
            let called = code
                .find("unbounded")
                .map(|at| code[at + "unbounded".len()..].trim_start())
                .is_some_and(|rest| rest.starts_with('(') || rest.starts_with("::<"));
            if called || code.contains("mpsc::channel(") {
                findings.push(Finding::at(
                    LINT,
                    file,
                    i,
                    "unbounded channel in af-server; use `bounded(n)` so a slow \
                     consumer exerts backpressure instead of growing the heap"
                        .to_owned(),
                ));
            }
        }
    }
    findings
}
