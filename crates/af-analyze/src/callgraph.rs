//! Approximate intra-workspace call graph over the [`crate::index`].
//!
//! Resolution is textual — no type checking — so it is deliberately
//! conservative in both directions:
//!
//! * a call resolves to the *most local* candidates first (same `impl`
//!   type, then same file, then same crate, then workspace-wide only when
//!   the name is rare — ≤ [`MAX_WIDE_CANDIDATES`] definitions);
//! * ubiquitous method names ([`COMMON_METHODS`]: `new`, `get`, `send`,
//!   …) never resolve past their own file, otherwise every `.get()` would
//!   connect to every `fn get` in the workspace and reachability lints
//!   would drown in false paths.
//!
//! Test functions are never resolution targets: the lints that consume
//! the graph reason about production paths only.

use crate::index::{Index, Recv};
use crate::source::SourceFile;
use std::collections::VecDeque;

/// Method names too common to resolve beyond their own file.
pub const COMMON_METHODS: &[&str] = &[
    "new", "default", "clone", "len", "is_empty", "push", "pop", "get", "get_mut", "insert",
    "remove", "iter", "into_iter", "next", "send", "try_send", "recv", "write", "read", "flush",
    "lock", "unwrap", "expect", "take", "set", "clear", "contains", "as_ref", "as_mut", "to_vec",
    "into", "from", "drain", "extend", "spawn", "join", "poll", "close", "reset", "start", "stop",
    "init", "update", "name", "id", "run", "wait", "sleep", "shutdown", "encode", "decode",
];

/// A name defined more often than this resolves only locally.
pub const MAX_WIDE_CANDIDATES: usize = 3;

/// The crate a workspace-relative path belongs to.
pub fn crate_of(rel: &str) -> &str {
    let mut parts = rel.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or(""),
        Some("src") => "audiofile",
        Some(first) => first,
        None => "",
    }
}

/// The resolved call graph: `callees[f]` are the function indices `f` may
/// call, parallel to `call_sites[f]` giving the index into
/// `index.fns[f].calls` each edge came from.
pub struct CallGraph {
    pub callees: Vec<Vec<usize>>,
    pub call_sites: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Resolves every call site in `index` against its definitions.
    pub fn build(index: &Index, files: &[SourceFile]) -> CallGraph {
        let n = index.fns.len();
        let mut callees = vec![Vec::new(); n];
        let mut call_sites = vec![Vec::new(); n];
        // name → candidate fn indices (production only).
        let mut by_name: std::collections::HashMap<&str, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, f) in index.fns.iter().enumerate() {
            if !f.in_test {
                by_name.entry(&f.name).or_default().push(i);
            }
        }
        for (caller, f) in index.fns.iter().enumerate() {
            let caller_file = f.file;
            let caller_crate = crate_of(&files[caller_file].rel);
            for (site, call) in f.calls.iter().enumerate() {
                let Some(cands) = by_name.get(call.name.as_str()) else {
                    continue;
                };
                let same_file = |&i: &usize| index.fns[i].file == caller_file;
                let same_crate =
                    |&i: &usize| crate_of(&files[index.fns[i].file].rel) == caller_crate;
                let resolved: Vec<usize> = match &call.recv {
                    Recv::SelfMethod => {
                        // Same impl type within the crate, else same file.
                        let typed: Vec<usize> = cands
                            .iter()
                            .copied()
                            .filter(|&i| {
                                index.fns[i].self_ty == f.self_ty && same_crate(&i)
                            })
                            .collect();
                        if !typed.is_empty() {
                            typed
                        } else {
                            cands.iter().copied().filter(same_file).collect()
                        }
                    }
                    Recv::Path(qual) => {
                        // `Self::x` means the caller's impl type.
                        let qual = if qual == "Self" {
                            f.self_ty.clone().unwrap_or_else(|| qual.clone())
                        } else {
                            qual.clone()
                        };
                        let typed: Vec<usize> = cands
                            .iter()
                            .copied()
                            .filter(|&i| index.fns[i].self_ty.as_deref() == Some(qual.as_str()))
                            .collect();
                        if !typed.is_empty() {
                            typed
                        } else if qual.starts_with(|c: char| c.is_ascii_uppercase()) {
                            // An unindexed *type* (std containers, shim
                            // types): `VecDeque::new` must never bind to
                            // some local `fn new`.
                            Vec::new()
                        } else {
                            // Module path (`convert::decode`): free fns.
                            narrow(cands, same_file, same_crate)
                        }
                    }
                    Recv::Method => {
                        if COMMON_METHODS.contains(&call.name.as_str()) {
                            cands.iter().copied().filter(same_file).collect()
                        } else {
                            // Methods never resolve across crates: a
                            // cross-crate method call goes through a trait
                            // object here (the device backends), and a
                            // textual tool binding it to every impl drags
                            // client code into server reachability.
                            let local: Vec<usize> =
                                cands.iter().copied().filter(same_file).collect();
                            if !local.is_empty() {
                                local
                            } else {
                                cands.iter().copied().filter(same_crate).collect()
                            }
                        }
                    }
                    Recv::Free => narrow(cands, same_file, same_crate),
                };
                for target in resolved {
                    callees[caller].push(target);
                    call_sites[caller].push(site);
                }
            }
        }
        CallGraph {
            callees,
            call_sites,
        }
    }

    /// BFS from `roots`; returns per-function reachability plus, for each
    /// reached function, the (caller, call-site) edge it was first reached
    /// through — enough to reconstruct a path back to a root.
    pub fn reach(&self, roots: &[usize]) -> Reach {
        self.reach_stopping(roots, |_| false)
    }

    /// Like [`CallGraph::reach`] but traversal neither enters nor crosses
    /// functions where `stop` holds — used to cut reachability at
    /// control-plane boundaries (a barrier function is itself considered
    /// unreached).
    pub fn reach_stopping(&self, roots: &[usize], stop: impl Fn(usize) -> bool) -> Reach {
        let n = self.callees.len();
        let mut seen = vec![false; n];
        let mut via = vec![None; n];
        let mut queue = VecDeque::new();
        for &r in roots {
            if r < n && !seen[r] && !stop(r) {
                seen[r] = true;
                queue.push_back(r);
            }
        }
        while let Some(f) = queue.pop_front() {
            for (k, &callee) in self.callees[f].iter().enumerate() {
                if !seen[callee] && !stop(callee) {
                    seen[callee] = true;
                    via[callee] = Some((f, self.call_sites[f][k]));
                    queue.push_back(callee);
                }
            }
        }
        Reach { seen, via }
    }
}

/// Most-local non-empty candidate tier: file, crate, then workspace-wide
/// only for rare names.
fn narrow(
    cands: &[usize],
    same_file: impl Fn(&usize) -> bool,
    same_crate: impl Fn(&usize) -> bool,
) -> Vec<usize> {
    let local: Vec<usize> = cands.iter().copied().filter(same_file).collect();
    if !local.is_empty() {
        return local;
    }
    let crate_wide: Vec<usize> = cands.iter().copied().filter(same_crate).collect();
    if !crate_wide.is_empty() {
        return crate_wide;
    }
    if cands.len() <= MAX_WIDE_CANDIDATES {
        cands.to_vec()
    } else {
        Vec::new()
    }
}

/// Reachability result with path reconstruction.
pub struct Reach {
    pub seen: Vec<bool>,
    /// For each reached non-root: the `(caller, call_site)` edge first used.
    pub via: Vec<Option<(usize, usize)>>,
}

impl Reach {
    /// Call-chain names from a root to `f`, e.g. `handle_wake -> flush -> f`.
    pub fn path_to(&self, index: &Index, f: usize) -> String {
        let mut chain = vec![f];
        let mut cur = f;
        while let Some((caller, _)) = self.via[cur] {
            chain.push(caller);
            cur = caller;
            if chain.len() > 32 {
                break;
            }
        }
        chain
            .iter()
            .rev()
            .map(|&i| index.fns[i].name.as_str())
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::Index;

    fn tree(files: &[(&str, &str)]) -> (Vec<SourceFile>, Index) {
        let parsed: Vec<SourceFile> = files
            .iter()
            .map(|(rel, src)| SourceFile::parse(rel, src))
            .collect();
        let index = Index::build(&parsed);
        (parsed, index)
    }

    #[test]
    fn free_calls_prefer_same_file_then_crate() {
        let (files, index) = tree(&[
            (
                "crates/af-server/src/a.rs",
                "fn root() { helper(); }\nfn helper() { cross(); }\n",
            ),
            ("crates/af-server/src/b.rs", "fn cross() {}\n"),
            ("crates/af-dsp/src/c.rs", "fn helper() {}\n"),
        ]);
        let g = CallGraph::build(&index, &files);
        let root = index.find(&files, "crates/af-server/src/a.rs", "root").unwrap();
        let helper_a = index.find(&files, "crates/af-server/src/a.rs", "helper").unwrap();
        let cross = index.find(&files, "crates/af-server/src/b.rs", "cross").unwrap();
        assert_eq!(g.callees[root], vec![helper_a], "same-file wins");
        assert_eq!(g.callees[helper_a], vec![cross], "same-crate next");
        let r = g.reach(&[root]);
        assert!(r.seen[cross]);
        assert_eq!(r.path_to(&index, cross), "root -> helper -> cross");
    }

    #[test]
    fn common_method_names_stay_in_their_file() {
        let (files, index) = tree(&[
            (
                "crates/af-server/src/a.rs",
                "fn root(q: Q) { q.send(1); }\n",
            ),
            (
                "crates/af-server/src/b.rs",
                "impl Q { fn send(&self, v: u32) {} }\n",
            ),
        ]);
        let g = CallGraph::build(&index, &files);
        let root = index.find(&files, "crates/af-server/src/a.rs", "root").unwrap();
        assert!(g.callees[root].is_empty(), "`.send` must not cross files");
    }

    #[test]
    fn self_method_resolves_by_impl_type() {
        let (files, index) = tree(&[
            (
                "crates/af-server/src/a.rs",
                "impl Worker { fn run_loop(&self) { self.step(); } fn step(&self) {} }\n\
                 impl Other { fn step(&self) {} }\n",
            ),
        ]);
        let g = CallGraph::build(&index, &files);
        let run_loop = index.fns_named("run_loop").next().unwrap();
        assert_eq!(g.callees[run_loop].len(), 1);
        let target = g.callees[run_loop][0];
        assert_eq!(index.fns[target].self_ty.as_deref(), Some("Worker"));
    }

    #[test]
    fn test_fns_are_not_targets() {
        let (files, index) = tree(&[(
            "crates/af-server/src/a.rs",
            "fn root() { helper(); }\n#[cfg(test)]\nmod t { fn helper() {} }\n",
        )]);
        let g = CallGraph::build(&index, &files);
        let root = index.find(&files, "crates/af-server/src/a.rs", "root").unwrap();
        assert!(g.callees[root].is_empty());
    }

    #[test]
    fn wide_resolution_caps_candidates() {
        let mut srcs: Vec<(String, String)> = vec![(
            "crates/af-server/src/a.rs".into(),
            "fn root() { popular(); }\n".into(),
        )];
        for k in 0..4 {
            srcs.push((
                format!("crates/af-dsp/src/m{k}.rs"),
                "fn popular() {}\n".into(),
            ));
        }
        let pairs: Vec<(&str, &str)> =
            srcs.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
        let (files, index) = tree(&pairs);
        let g = CallGraph::build(&index, &files);
        let root = index.find(&files, "crates/af-server/src/a.rs", "root").unwrap();
        assert!(
            g.callees[root].is_empty(),
            "4 workspace-wide candidates exceeds the cap"
        );
    }
}
