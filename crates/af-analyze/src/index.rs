//! Whole-program item index built from the token stream.
//!
//! One pass over every file's tokens produces:
//!
//! * [`FnInfo`] per `fn` item — name, enclosing `impl` type, line span,
//!   the calls its body makes ([`Call`]), the lock guards it acquires
//!   ([`Acquire`]), which locks it acquires *while already holding
//!   another* (`ordered`), and which calls it makes under a live guard
//!   (`held_calls`);
//! * [`LockDecl`] per `Mutex`/`RwLock` field, static, or `let`-binding —
//!   the lock universe the lock-order lint reasons over.  Only
//!   acquisitions of *declared* locks are tracked, so `.read()` on an
//!   `io::Read` or `.lock()` on a `Stdout` never pollutes the graph.
//!
//! Everything here is approximate in the way a linter can afford: names
//! are resolved textually (see [`crate::callgraph`]), guard liveness is
//! brace-depth scoping plus explicit `drop(guard)`, and nested `fn` items
//! are indexed separately with their tokens excluded from the parent.

use crate::lex::{Kind, Token};
use crate::source::SourceFile;

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recv {
    /// `foo(...)`.
    Free,
    /// `self.foo(...)`.
    SelfMethod,
    /// `recv.foo(...)` for any other receiver expression.
    Method,
    /// `Qual::foo(...)` — the last path qualifier segment is kept.
    Path(String),
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    pub name: String,
    pub recv: Recv,
    /// 0-based line.
    pub line: usize,
}

/// One acquisition of a declared lock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Acquire {
    /// The declared lock's field/binding name.
    pub lock: String,
    /// 0-based line of the `.lock()`/`.read()`/`.write()`.
    pub line: usize,
}

/// `B` acquired while `A` is held, inside one function.
#[derive(Debug, Clone)]
pub struct OrderedPair {
    pub first: Acquire,
    pub second: Acquire,
}

/// A call made while a guard is live.
#[derive(Debug, Clone)]
pub struct HeldCall {
    pub held: Acquire,
    /// Index into the owning function's `calls`.
    pub call: usize,
}

/// One indexed function.
#[derive(Debug)]
pub struct FnInfo {
    /// Index into the `files` slice the index was built from.
    pub file: usize,
    pub name: String,
    /// Enclosing `impl` type's last path segment, if any.
    pub self_ty: Option<String>,
    /// 0-based line of the `fn` keyword.
    pub start_line: usize,
    /// 0-based line of the body's closing brace.
    pub end_line: usize,
    pub calls: Vec<Call>,
    pub acquires: Vec<Acquire>,
    pub ordered: Vec<OrderedPair>,
    pub held_calls: Vec<HeldCall>,
    /// Inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// What kind of lock a declaration is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    Mutex,
    RwLock,
}

/// One declared `Mutex`/`RwLock`.
#[derive(Debug)]
pub struct LockDecl {
    pub name: String,
    pub kind: LockKind,
    pub file: usize,
    /// 0-based line.
    pub line: usize,
}

/// The whole-program index.
pub struct Index {
    pub fns: Vec<FnInfo>,
    pub locks: Vec<LockDecl>,
}

impl Index {
    /// Builds the index over pre-parsed files.
    pub fn build(files: &[SourceFile]) -> Index {
        let mut locks = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            collect_locks(fi, file, &mut locks);
        }
        let mut fns = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            let sig: Vec<&Token> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
            let mut scanner = Scanner {
                file: fi,
                source: file,
                toks: &sig,
                locks: &locks,
                out: &mut fns,
            };
            scanner.scan_items();
        }
        Index { fns, locks }
    }

    /// All indexed functions named `name`.
    pub fn fns_named<'a>(&'a self, name: &str) -> impl Iterator<Item = usize> + 'a {
        let name = name.to_owned();
        (0..self.fns.len()).filter(move |&i| self.fns[i].name == name)
    }

    /// Whether `name` is a declared lock.
    pub fn is_lock(&self, name: &str) -> bool {
        self.locks.iter().any(|l| l.name == name)
    }

    /// Finds a function by file path and name (first match).
    pub fn find(&self, files: &[SourceFile], rel: &str, name: &str) -> Option<usize> {
        (0..self.fns.len()).find(|&i| {
            self.fns[i].name == name && files[self.fns[i].file].rel == rel
        })
    }
}

/// Rust keywords that can directly precede `(` without being calls.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "else", "in", "as", "move", "let", "mut",
    "ref", "await", "async", "unsafe", "dyn", "impl", "where", "pub", "use", "mod", "struct",
    "enum", "union", "trait", "type", "const", "static", "crate", "super", "break", "continue",
    "fn", "self", "Self", "true", "false",
];

/// Collects `Mutex`/`RwLock` declarations: struct fields and statics
/// (`name: [path::]Mutex<`) and let-bindings (`let name = Mutex::new(`).
fn collect_locks(fi: usize, file: &SourceFile, out: &mut Vec<LockDecl>) {
    let toks: Vec<&Token> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
    for (i, tok) in toks.iter().enumerate() {
        let kind = match tok.text.as_str() {
            "Mutex" if tok.kind == Kind::Ident => LockKind::Mutex,
            "RwLock" if tok.kind == Kind::Ident => LockKind::RwLock,
            _ => continue,
        };
        if file.in_test.get(tok.line).copied().unwrap_or(false) {
            continue;
        }
        let Some(next) = toks.get(i + 1) else { continue };
        if next.is_punct('<') {
            // `name: [path::]Mutex<` — walk back over the path prefix to
            // the single type-ascription colon, then the field name.
            let mut j = i;
            while j >= 3 && toks[j - 1].is_punct(':') && toks[j - 2].is_punct(':') {
                if toks[j - 3].kind == Kind::Ident {
                    j -= 3;
                } else {
                    break;
                }
            }
            if j >= 2
                && toks[j - 1].is_punct(':')
                && !toks[j - 2].is_punct(':')
                && toks[j - 2].kind == Kind::Ident
            {
                out.push(LockDecl {
                    name: toks[j - 2].text.clone(),
                    kind,
                    file: fi,
                    line: tok.line,
                });
            }
        } else if next.is_punct(':')
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("new"))
        {
            // `let name = [path::]Mutex::new(` — walk back over `=`, the
            // path prefix, to the binding.
            let mut j = i;
            while j >= 3 && toks[j - 1].is_punct(':') && toks[j - 2].is_punct(':') {
                if toks[j - 3].kind == Kind::Ident {
                    j -= 3;
                } else {
                    break;
                }
            }
            if j >= 2 && toks[j - 1].is_punct('=') && toks[j - 2].kind == Kind::Ident {
                out.push(LockDecl {
                    name: toks[j - 2].text.clone(),
                    kind,
                    file: fi,
                    line: tok.line,
                });
            }
        }
    }
}

/// A live lock guard during body scanning.
struct LiveGuard {
    acquire: Acquire,
    /// Brace depth (relative to the body) it was bound at.
    depth: i64,
    /// Binding name, for `drop(name)` release.
    binding: Option<String>,
}

struct Scanner<'a> {
    file: usize,
    source: &'a SourceFile,
    toks: &'a [&'a Token],
    locks: &'a [LockDecl],
    out: &'a mut Vec<FnInfo>,
}

impl Scanner<'_> {
    /// Walks the whole token stream indexing every `fn` item.
    fn scan_items(&mut self) {
        let mut impls: Vec<(String, i64)> = Vec::new(); // (type, depth at open)
        let mut depth = 0i64;
        let mut i = 0usize;
        while i < self.toks.len() {
            let tok = self.toks[i];
            if tok.is_punct('{') {
                depth += 1;
                i += 1;
                continue;
            }
            if tok.is_punct('}') {
                depth -= 1;
                impls.retain(|&(_, d)| d <= depth);
                i += 1;
                continue;
            }
            if tok.is_ident("impl") {
                if let Some((ty, open)) = self.impl_header(i) {
                    impls.push((ty, depth + 1));
                    depth += 1;
                    i = open + 1;
                    continue;
                }
            }
            if tok.is_ident("fn") {
                let self_ty = impls.last().map(|(t, _)| t.clone());
                i = self.index_fn(i, self_ty);
                continue;
            }
            i += 1;
        }
    }

    /// Parses an `impl … {` header at token `i`; returns the self type's
    /// last path segment and the index of the opening brace.
    fn impl_header(&self, i: usize) -> Option<(String, usize)> {
        let mut angle = 0i64;
        let mut paren = 0i64;
        let mut last_ident: Option<&str> = None;
        let mut after_for: Option<&str> = None;
        let mut j = i + 1;
        while j < self.toks.len() {
            let t = self.toks[j];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle = (angle - 1).max(0);
            } else if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
            } else if t.is_punct('{') && angle == 0 && paren == 0 {
                let ty = after_for.or(last_ident)?;
                return Some((ty.to_owned(), j));
            } else if t.is_punct(';') && angle == 0 && paren == 0 {
                return None;
            } else if t.kind == Kind::Ident && angle == 0 && paren == 0 {
                match t.text.as_str() {
                    "for" => after_for = None,
                    "where" => break,
                    "fn" | "dyn" | "mut" | "const" => {}
                    _ => {
                        if after_for.is_none()
                            && j >= 1
                            && self.toks[j - 1].is_ident("for")
                        {
                            after_for = Some(&t.text);
                        }
                        last_ident = Some(&t.text);
                    }
                }
            }
            j += 1;
        }
        // `where`-clause: resume scanning for the brace only.
        while j < self.toks.len() {
            if self.toks[j].is_punct('{') {
                let ty = after_for.or(last_ident)?;
                return Some((ty.to_owned(), j));
            }
            if self.toks[j].is_punct(';') {
                return None;
            }
            j += 1;
        }
        None
    }

    /// Indexes the `fn` at token `i`; returns the index to resume at.
    fn index_fn(&mut self, i: usize, self_ty: Option<String>) -> usize {
        let Some(name_tok) = self.toks.get(i + 1) else {
            return i + 1;
        };
        if !matches!(name_tok.kind, Kind::Ident | Kind::RawIdent) {
            return i + 1; // `fn(` pointer type etc.
        }
        let name = name_tok.text.trim_start_matches("r#").to_owned();
        // Find the body `{` (or `;` for a bodyless declaration).
        let mut j = i + 2;
        let mut paren = 0i64;
        let mut angle = 0i64;
        loop {
            let Some(t) = self.toks.get(j) else {
                return j;
            };
            if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
            } else if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle = (angle - 1).max(0);
            } else if t.is_punct(';') && paren == 0 {
                return j + 1; // declaration only
            } else if t.is_punct('{') && paren == 0 {
                break;
            }
            j += 1;
        }
        let body_open = j;
        let start_line = self.toks[i].line;
        let in_test = self
            .source
            .in_test
            .get(start_line)
            .copied()
            .unwrap_or(false);
        let mut info = FnInfo {
            file: self.file,
            name,
            self_ty: self_ty.clone(),
            start_line,
            end_line: start_line,
            calls: Vec::new(),
            acquires: Vec::new(),
            ordered: Vec::new(),
            held_calls: Vec::new(),
            in_test,
        };
        let resume = self.scan_body(body_open, &mut info, self_ty);
        self.out.push(info);
        resume
    }

    /// Scans a function body from its opening brace; returns the token
    /// index just past the closing brace.  Nested `fn` items are indexed
    /// recursively and excluded from this body's accounting.
    fn scan_body(&mut self, open: usize, info: &mut FnInfo, self_ty: Option<String>) -> usize {
        let mut depth = 0i64;
        let mut guards: Vec<LiveGuard> = Vec::new();
        // Per-statement `let` tracking for guard bindings.
        let mut stmt_let: Option<String> = None;
        let mut i = open;
        while i < self.toks.len() {
            let t = self.toks[i];
            if t.is_punct('{') {
                depth += 1;
                i += 1;
                continue;
            }
            if t.is_punct('}') {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
                if depth == 0 {
                    info.end_line = t.line;
                    return i + 1;
                }
                stmt_let = None;
                i += 1;
                continue;
            }
            if t.is_punct(';') {
                stmt_let = None;
                i += 1;
                continue;
            }
            if t.is_ident("let") {
                // Binding name: first ident after `let`, skipping `mut`
                // and tuple/ref patterns get no tracking.
                let mut k = i + 1;
                while self.toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                    k += 1;
                }
                stmt_let = self
                    .toks
                    .get(k)
                    .filter(|t| t.kind == Kind::Ident && !KEYWORDS.contains(&t.text.as_str()))
                    .map(|t| t.text.clone());
                i += 1;
                continue;
            }
            if t.is_ident("fn") {
                // Nested item: index it on its own, skip its tokens here.
                i = self.index_fn(i, self_ty.clone());
                continue;
            }
            // `drop(name)` releases the named guard.
            if t.is_ident("drop")
                && self.toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            {
                if let Some(name) = self.toks.get(i + 2) {
                    guards.retain(|g| g.binding.as_deref() != Some(name.text.as_str()));
                }
            }
            // Lock acquisition: `recv.lock()` / `recv.read()` / `recv.write()`
            // where `recv`'s trailing ident is a declared lock.
            if let Some(acquire) = self.match_acquire(i) {
                for g in &guards {
                    info.ordered.push(OrderedPair {
                        first: g.acquire.clone(),
                        second: acquire.clone(),
                    });
                }
                info.acquires.push(acquire.clone());
                guards.push(LiveGuard {
                    acquire,
                    depth,
                    binding: stmt_let.clone(),
                });
                i += 5; // past `recv . method ( )`
                continue;
            }
            // Call site: ident followed by `(`, not a macro (`!`), not a
            // keyword, not a definition (`fn name(` handled above).
            if matches!(t.kind, Kind::Ident | Kind::RawIdent)
                && self.toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                && !KEYWORDS.contains(&t.text.as_str())
            {
                let recv = self.classify_recv(i);
                if let Some(recv) = recv {
                    let call = Call {
                        name: t.text.trim_start_matches("r#").to_owned(),
                        recv,
                        line: t.line,
                    };
                    let call_idx = info.calls.len();
                    for g in &guards {
                        info.held_calls.push(HeldCall {
                            held: g.acquire.clone(),
                            call: call_idx,
                        });
                    }
                    info.calls.push(call);
                }
            }
            i += 1;
        }
        info.end_line = self.toks.last().map(|t| t.line).unwrap_or(info.start_line);
        i
    }

    /// Matches `<lock>.{lock|read|write}()` at token `i` (pointing at the
    /// receiver's trailing ident).  Only declared locks count; `.read()`/
    /// `.write()` only for declared `RwLock`s.
    fn match_acquire(&self, i: usize) -> Option<Acquire> {
        let recv = self.toks[i];
        if recv.kind != Kind::Ident {
            return None;
        }
        if !self.toks.get(i + 1)?.is_punct('.') {
            return None;
        }
        let method = self.toks.get(i + 2)?;
        if !self.toks.get(i + 3)?.is_punct('(') || !self.toks.get(i + 4)?.is_punct(')') {
            return None;
        }
        let decl = self.locks.iter().find(|l| l.name == recv.text)?;
        let ok = match method.text.as_str() {
            "lock" => decl.kind == LockKind::Mutex,
            "read" | "write" => decl.kind == LockKind::RwLock,
            _ => false,
        };
        ok.then(|| Acquire {
            lock: recv.text.clone(),
            line: method.line,
        })
    }

    /// Classifies the call at token `i`; `None` for macros and method
    /// *definitions* reached in weird positions.
    fn classify_recv(&self, i: usize) -> Option<Recv> {
        if self.toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            return None;
        }
        if i == 0 {
            return Some(Recv::Free);
        }
        let prev = self.toks[i - 1];
        if prev.is_punct('.') {
            if i >= 2 && self.toks[i - 2].is_ident("self") && (i < 3 || !self.toks[i - 3].is_punct('.'))
            {
                return Some(Recv::SelfMethod);
            }
            return Some(Recv::Method);
        }
        if prev.is_punct(':') && i >= 2 && self.toks[i - 2].is_punct(':') {
            if i >= 3 && self.toks[i - 3].kind == Kind::Ident {
                return Some(Recv::Path(self.toks[i - 3].text.clone()));
            }
            return Some(Recv::Free);
        }
        Some(Recv::Free)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(src: &str) -> Index {
        Index::build(&[SourceFile::parse("crates/af-server/src/x.rs", src)])
    }

    #[test]
    fn fns_with_impl_context_and_spans() {
        let idx = build(
            "impl Foo {\n    fn alpha(&self) {\n        beta();\n    }\n}\nfn beta() {}\n",
        );
        assert_eq!(idx.fns.len(), 2);
        let alpha = &idx.fns[0];
        assert_eq!(alpha.name, "alpha");
        assert_eq!(alpha.self_ty.as_deref(), Some("Foo"));
        assert_eq!((alpha.start_line, alpha.end_line), (1, 3));
        assert_eq!(alpha.calls.len(), 1);
        assert_eq!(alpha.calls[0].name, "beta");
        assert_eq!(alpha.calls[0].recv, Recv::Free);
        assert_eq!(idx.fns[1].self_ty, None);
    }

    #[test]
    fn impl_trait_for_type_takes_the_type() {
        let idx = build("impl fmt::Display for Stats {\n    fn fmt(&self) {}\n}\n");
        assert_eq!(idx.fns[0].self_ty.as_deref(), Some("Stats"));
    }

    #[test]
    fn call_receivers_are_classified() {
        let idx = build(
            "fn f(&self) {\n    self.step();\n    other.step();\n    Qual::step();\n    free();\n    mac!(ro);\n}\n",
        );
        let calls = &idx.fns[0].calls;
        assert_eq!(calls.len(), 4, "{calls:?}");
        assert_eq!(calls[0].recv, Recv::SelfMethod);
        assert_eq!(calls[1].recv, Recv::Method);
        assert_eq!(calls[2].recv, Recv::Path("Qual".into()));
        assert_eq!(calls[3].recv, Recv::Free);
    }

    #[test]
    fn lock_decls_and_ordered_acquisitions() {
        let idx = build(
            "struct S {\n    alpha: Mutex<u32>,\n    beta: std::sync::RwLock<u32>,\n}\n\
             impl S {\n    fn both(&self) {\n        let a = self.alpha.lock();\n        let b = self.beta.write();\n    }\n\
             \n    fn scoped(&self) {\n        {\n            let a = self.alpha.lock();\n        }\n        let b = self.beta.read();\n    }\n}\n",
        );
        assert_eq!(idx.locks.len(), 2);
        let both = &idx.fns[0];
        assert_eq!(both.acquires.len(), 2);
        assert_eq!(both.ordered.len(), 1);
        assert_eq!(both.ordered[0].first.lock, "alpha");
        assert_eq!(both.ordered[0].second.lock, "beta");
        let scoped = &idx.fns[1];
        assert_eq!(scoped.ordered.len(), 0, "guard died with its block");
    }

    #[test]
    fn drop_releases_a_guard() {
        let idx = build(
            "struct S { alpha: Mutex<u32>, beta: Mutex<u32> }\n\
             impl S {\n    fn f(&self) {\n        let a = self.alpha.lock();\n        drop(a);\n        let b = self.beta.lock();\n    }\n}\n",
        );
        assert_eq!(idx.fns[0].ordered.len(), 0);
    }

    #[test]
    fn calls_while_held_are_recorded() {
        let idx = build(
            "struct S { alpha: Mutex<u32> }\n\
             impl S {\n    fn f(&self) {\n        let a = self.alpha.lock();\n        self.helper();\n    }\n    fn helper(&self) {}\n}\n",
        );
        let f = &idx.fns[0];
        assert_eq!(f.held_calls.len(), 1);
        assert_eq!(f.held_calls[0].held.lock, "alpha");
        assert_eq!(f.calls[f.held_calls[0].call].name, "helper");
    }

    #[test]
    fn nested_fns_keep_their_own_calls() {
        let idx = build(
            "fn outer() {\n    fn inner() {\n        deep();\n    }\n    shallow();\n}\n",
        );
        let outer = idx.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = idx.fns.iter().find(|f| f.name == "inner").unwrap();
        assert_eq!(outer.calls.len(), 1);
        assert_eq!(outer.calls[0].name, "shallow");
        assert_eq!(inner.calls[0].name, "deep");
        assert_eq!((outer.start_line, outer.end_line), (0, 5));
    }

    #[test]
    fn test_code_is_marked() {
        let idx = build("#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn prod() {}\n");
        assert!(idx.fns.iter().find(|f| f.name == "t").unwrap().in_test);
        assert!(!idx.fns.iter().find(|f| f.name == "prod").unwrap().in_test);
    }
}
