//! Line-oriented source model shared by every lint.
//!
//! The container ships no parser crates, so the line-oriented lints work
//! on a stripped view of each file: comments and literal *contents* are
//! blanked (the delimiters stay), which keeps byte/line positions stable
//! while making naive substring checks sound — `".unwrap()"` inside a
//! string or a comment no longer looks like a call.  Raw lines are kept
//! alongside for the things that live *in* comments: `SAFETY:` audits and
//! `af-analyze: allow(...)` markers.
//!
//! Since the token-aware rewrite the stripped view is *rendered from the
//! lexer's token stream* ([`crate::lex::stripped`]); the original
//! character-machine stripper survives here as [`strip_legacy`], the
//! differential oracle the lexer is pinned against (proptest plus a sweep
//! over every real workspace file).

use crate::lex::{self, Token};

/// One `.rs` file prepared for analysis.
pub struct SourceFile {
    /// Path relative to the workspace root, forward slashes.
    pub rel: String,
    /// Raw text lines.
    pub lines: Vec<String>,
    /// Lines with comments and literal contents blanked.
    pub code: Vec<String>,
    /// Per-line flag: inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
    /// The token stream the stripped view was rendered from.
    pub tokens: Vec<Token>,
}

impl SourceFile {
    /// Parses `text` (the contents of `rel`) into the model.
    pub fn parse(rel: &str, text: &str) -> SourceFile {
        let tokens = lex::lex(text);
        let stripped = lex::stripped_from(&tokens, text);
        let lines: Vec<String> = text.lines().map(str::to_owned).collect();
        let code: Vec<String> = stripped.lines().map(str::to_owned).collect();
        let in_test = test_mask(&code);
        SourceFile {
            rel: rel.to_owned(),
            lines,
            code,
            in_test,
            tokens,
        }
    }

    /// The 0-based inclusive line span of `fn <name>`'s signature and body.
    ///
    /// Returns `None` when the function does not exist (or is only a
    /// body-less trait declaration) — callers treat that as a stale
    /// registry, not as "nothing to check".
    pub fn fn_span(&self, name: &str) -> Option<(usize, usize)> {
        let needle = format!("fn {name}");
        for (i, line) in self.code.iter().enumerate() {
            let Some(pos) = line.find(&needle) else {
                continue;
            };
            // Reject prefixes of longer identifiers (`fn handle` inside
            // `fn handle_play`).
            match line[pos + needle.len()..].chars().next() {
                Some('(') | Some('<') => {}
                _ => continue,
            }
            let mut depth = 0i64;
            let mut started = false;
            for (j, body_line) in self.code.iter().enumerate().skip(i) {
                for ch in body_line.chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            started = true;
                        }
                        '}' => depth -= 1,
                        ';' if !started => return None, // declaration only
                        _ => {}
                    }
                }
                if started && depth <= 0 {
                    return Some((i, j));
                }
            }
            return Some((i, self.code.len().saturating_sub(1)));
        }
        None
    }

    /// Whether `token` occurs in the stripped code of 0-based `line`,
    /// bounded by non-identifier characters on both sides.
    pub fn has_word(&self, line: usize, token: &str) -> bool {
        find_word(&self.code[line], token).is_some()
    }
}

/// Finds `token` in `line` with identifier boundaries on both sides.
pub fn find_word(line: &str, token: &str) -> Option<usize> {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(off) = line[from..].find(token) {
        let start = from + off;
        let end = start + token.len();
        let before_ok = start == 0 || !is_ident(bytes[start - 1]);
        let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            return Some(start);
        }
        from = start + 1;
    }
    None
}

fn is_ident(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// Blanks comments and literal contents, preserving line structure.
///
/// The pre-token-stream implementation, kept as the differential oracle
/// for [`crate::lex::stripped`].  Production parsing no longer calls it.
pub fn strip_legacy(text: &str) -> String {
    #[derive(PartialEq)]
    enum St {
        Code,
        Line,          // line comment
        Block(u32),    // nested block comment
        Str,           // "..."
        RawStr(usize), // r##"..."## with N hashes
        Char,          // '...'
    }
    let chars: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut st = St::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if st == St::Line {
                st = St::Code;
            }
            out.push('\n');
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    st = St::Line;
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::Block(1);
                    out.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    st = St::Str;
                    out.push('"');
                    i += 1;
                } else if c == 'r' && matches!(next, Some('"') | Some('#')) {
                    // Possible raw string: r"..." or r#"..."#.
                    let mut j = i + 1;
                    let mut hashes = 0;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        st = St::RawStr(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal vs lifetime: a literal closes within a
                    // few chars ('x', '\n', '\u{..}'); a lifetime does not.
                    if next == Some('\\') || chars.get(i + 2) == Some(&'\'') {
                        st = St::Char;
                        out.push('\'');
                        i += 1;
                    } else {
                        out.push('\'');
                        i += 1;
                    }
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            St::Line => {
                out.push(' ');
                i += 1;
            }
            St::Block(d) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    st = St::Block(d + 1);
                    out.push_str("  ");
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    st = if d == 1 { St::Code } else { St::Block(d - 1) };
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    out.push_str("  ");
                    i += 2;
                    if chars.get(i - 1) == Some(&'\n') {
                        out.pop();
                        out.push('\n');
                    }
                } else if c == '"' {
                    st = St::Code;
                    out.push('"');
                    i += 1;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            St::RawStr(n) => {
                if c == '"' {
                    let closed = (0..n).all(|k| chars.get(i + 1 + k) == Some(&'#'));
                    if closed {
                        st = St::Code;
                        for _ in 0..=n {
                            out.push(' ');
                        }
                        i += n + 1;
                        continue;
                    }
                }
                out.push(' ');
                i += 1;
            }
            St::Char => {
                if c == '\\' {
                    out.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    st = St::Code;
                    out.push('\'');
                    i += 1;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
        }
    }
    out
}

/// Marks the lines belonging to `#[cfg(test)]` items (attribute through
/// the item's closing brace).
fn test_mask(code: &[String]) -> Vec<bool> {
    let n = code.len();
    let mut mask = vec![false; n];
    let mut i = 0;
    while i < n {
        if !code[i].contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        let mut depth = 0i64;
        let mut started = false;
        let mut j = i;
        while j < n {
            mask[j] = true;
            for ch in code[j].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        started = true;
                    }
                    '}' => depth -= 1,
                    ';' if !started => {
                        // `#[cfg(test)] mod x;` — out-of-line module.
                        return finish_from(mask, j + 1, code);
                    }
                    _ => {}
                }
            }
            if started && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    mask
}

/// Continues masking after an out-of-line test module declaration.
fn finish_from(mut mask: Vec<bool>, from: usize, code: &[String]) -> Vec<bool> {
    let rest = test_mask(&code[from..]);
    for (k, v) in rest.into_iter().enumerate() {
        mask[from + k] = v;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = SourceFile::parse(
            "x.rs",
            "let a = \"has .unwrap() inside\"; // and .expect( here\nlet b = 1;\n",
        );
        assert!(!f.code[0].contains(".unwrap()"));
        assert!(!f.code[0].contains(".expect("));
        assert!(f.lines[0].contains(".unwrap()"), "raw lines untouched");
        assert_eq!(f.code[1], "let b = 1;");
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let f = SourceFile::parse("x.rs", "a /* x /* y */ still */ b\n/* open\npanic!()\n*/ c\n");
        assert!(f.code[0].starts_with("a "));
        assert!(f.code[0].trim_end().ends_with("b"));
        assert!(!f.code[2].contains("panic!"));
        assert!(f.code[3].contains('c'));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = SourceFile::parse("x.rs", "fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(f.code[0].contains("str { x }"), "got: {}", f.code[0]);
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = SourceFile::parse("x.rs", "let s = r#\"panic!(\"no\")\"#; done\n");
        assert!(!f.code[0].contains("panic!"));
        assert!(f.code[0].contains("done"));
    }

    #[test]
    fn cfg_test_region_is_masked() {
        let src = "fn real() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn after() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.in_test[0]);
        assert!(f.in_test[1] && f.in_test[2] && f.in_test[3] && f.in_test[4]);
        assert!(!f.in_test[5]);
    }

    #[test]
    fn fn_span_finds_bodies_not_prefixes() {
        let src = "impl X {\n    fn handle_play(&self) {\n        a();\n    }\n    fn handle(&self) {\n        b();\n    }\n}\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.fn_span("handle_play"), Some((1, 3)));
        assert_eq!(f.fn_span("handle"), Some((4, 6)));
        assert_eq!(f.fn_span("missing"), None);
    }

    #[test]
    fn word_boundaries_respected() {
        assert!(find_word("unsafe { x }", "unsafe").is_some());
        assert!(find_word("#![forbid(unsafe_code)]", "unsafe").is_none());
        assert!(find_word("let unsafer = 1;", "unsafe").is_none());
    }
}
