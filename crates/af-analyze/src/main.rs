//! The `af-analyze` binary: run every project lint over the workspace.
//!
//! Usage: `cargo run -p af-analyze [--] [workspace-root]`.  With no
//! argument the workspace root is found by walking up from the current
//! directory to the first `Cargo.toml` declaring `[workspace]`.  Exit
//! status is 0 when the tree is clean, 1 when any finding remains, 2 on
//! usage/IO errors — CI treats nonzero as a failed gate.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => match find_workspace_root() {
            Some(root) => root,
            None => {
                eprintln!("af-analyze: no workspace root found (run from inside the repo)");
                return ExitCode::from(2);
            }
        },
    };
    match af_analyze::analyze_root(&root) {
        Ok(findings) if findings.is_empty() => {
            println!(
                "af-analyze: clean ({} lints over {})",
                af_analyze::LINT_NAMES.len(),
                root.display()
            );
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for finding in &findings {
                println!("{finding}");
            }
            println!("af-analyze: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("af-analyze: {err}");
            ExitCode::from(2)
        }
    }
}

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
