//! The `af-analyze` binary: run every project lint over the workspace.
//!
//! Usage: `cargo run -p af-analyze [--] [workspace-root]`.  With no
//! argument the workspace root is found by walking up from the current
//! directory to the first `Cargo.toml` declaring `[workspace]`.  Exit
//! status is 0 when the tree is clean, 1 when any finding remains, 2 on
//! usage/IO errors — CI treats nonzero as a failed gate.
//!
//! Per-lint wall-clock timings are printed after the run and guarded: a
//! single lint (or the shared index/call-graph build) exceeding
//! [`LINT_BUDGET`] fails the run even on a clean tree, so an
//! accidentally quadratic lint cannot quietly make every CI push slow.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

/// Per-lint wall-clock budget.
const LINT_BUDGET: Duration = Duration::from_secs(10);

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => match find_workspace_root() {
            Some(root) => root,
            None => {
                eprintln!("af-analyze: no workspace root found (run from inside the repo)");
                return ExitCode::from(2);
            }
        },
    };
    let files = match af_analyze::load_tree(&root) {
        Ok(files) => files,
        Err(err) => {
            eprintln!("af-analyze: {err}");
            return ExitCode::from(2);
        }
    };
    let (findings, timings) = af_analyze::analyze_files_timed(&files);
    for t in &timings {
        println!("af-analyze: timing {:<20} {:>8.1?}", t.name, t.duration);
    }
    let over_budget: Vec<_> = timings
        .iter()
        .filter(|t| t.duration > LINT_BUDGET)
        .collect();
    for t in &over_budget {
        println!(
            "af-analyze: lint `{}` took {:.1?}, over the {:?} budget",
            t.name, t.duration, LINT_BUDGET
        );
    }
    if findings.is_empty() && over_budget.is_empty() {
        println!(
            "af-analyze: clean ({} lints over {})",
            af_analyze::LINT_NAMES.len(),
            root.display()
        );
        return ExitCode::SUCCESS;
    }
    for finding in &findings {
        println!("{finding}");
    }
    println!(
        "af-analyze: {} finding(s), {} lint(s) over time budget",
        findings.len(),
        over_budget.len()
    );
    ExitCode::FAILURE
}

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
