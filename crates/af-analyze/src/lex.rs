//! A hand-rolled Rust lexer: the token layer under every lint.
//!
//! The v1 analyzer worked on a character-machine "stripped view" of each
//! file ([`crate::source::strip_legacy`]).  That view is still what the
//! line-oriented lints consume, but it is now *derived from tokens*: this
//! module lexes each file once into a [`Token`] stream — raw strings with
//! any number of hashes, nested block comments, lifetimes vs char
//! literals, `r#`-idents, byte strings — and the stripped view is rendered
//! back from that stream ([`stripped`]).  The whole-program passes
//! ([`crate::index`], [`crate::callgraph`]) consume the tokens directly.
//!
//! The renderer is pinned byte-for-byte against the legacy stripper by a
//! differential proptest *and* by an equality sweep over every file in the
//! real workspace, so porting the eight v1 lints onto the token stream
//! could not silently change what they see.
//!
//! Deliberate mimicry: the legacy stripper has two quirky-but-sound
//! behaviors that the lexer reproduces so the differential stays exact —
//! a quote is a char literal only when it closes within two characters
//! (`'x'`) or opens an escape (`'\n'`), anything else is a lifetime; and
//! an `r`/`r#…` sequence that forms a raw-string opener starts a raw
//! string even when it abuts the tail of an identifier.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`fn`, `unsafe`, `foo`).
    Ident,
    /// Raw identifier (`r#match`).
    RawIdent,
    /// Lifetime or bare quote (`'a`, `'static`, `'`).
    Lifetime,
    /// Numeric literal (`42`, `0x7f`, suffixed forms).
    Num,
    /// String literal `"…"` (contents blanked in the stripped view).
    Str,
    /// Raw string literal `r"…"` / `r##"…"##` (fully blanked).
    RawStr,
    /// Char literal `'x'` / `'\n'` (contents blanked).
    Char,
    /// `// …` to end of line (blanked).
    LineComment,
    /// `/* … */`, nesting tracked (blanked).
    BlockComment,
    /// A single punctuation character (`{`, `.`, `;`, `<`, …).
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: Kind,
    /// The raw source text of the token.
    pub text: String,
    /// 0-based line the token starts on.
    pub line: usize,
}

impl Token {
    /// Whether this token is a comment.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, Kind::LineComment | Kind::BlockComment)
    }

    /// Single-character punct test.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }

    /// Ident-with-text test (keywords included).
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

/// Whether `chars[i..]` opens a raw string: `r` `#`* `"`.
///
/// This is checked not just at identifier starts but *inside* identifier
/// runs, because the legacy stripper works character-by-character and
/// honors the opener anywhere.
fn raw_opener(chars: &[char], i: usize) -> Option<usize> {
    if chars.get(i) != Some(&'r') {
        return None;
    }
    let mut j = i + 1;
    let mut hashes = 0usize;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

/// Lexes `text` into tokens.  Whitespace is not tokenized; [`stripped`]
/// reconstructs it from the gap structure instead.
pub fn lex(text: &str) -> Vec<Token> {
    let chars: Vec<char> = text.chars().collect();
    let mut out = Vec::new();
    let mut line = 0usize;
    let mut i = 0usize;
    let n = chars.len();
    let push = |out: &mut Vec<Token>, kind: Kind, text: &[char], line: usize| {
        out.push(Token {
            kind,
            text: text.iter().collect(),
            line,
        });
    };
    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        let start_line = line;
        let next = chars.get(i + 1).copied();
        // Comments.
        if c == '/' && next == Some('/') {
            i += 2;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            push(&mut out, Kind::LineComment, &chars[start..i], start_line);
            continue;
        }
        if c == '/' && next == Some('*') {
            let mut depth = 1u32;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            push(&mut out, Kind::BlockComment, &chars[start..i], start_line);
            continue;
        }
        // Raw strings (before identifiers: `r"…"`, `r##"…"##`).
        if let Some(hashes) = raw_opener(&chars, i) {
            i += 1 + hashes + 1; // r, hashes, opening quote
            loop {
                if i >= n {
                    break;
                }
                if chars[i] == '"' && (0..hashes).all(|k| chars.get(i + 1 + k) == Some(&'#')) {
                    i += 1 + hashes;
                    break;
                }
                if chars[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            push(&mut out, Kind::RawStr, &chars[start..i], start_line);
            continue;
        }
        // Raw identifiers: `r#foo` (the opener check above already failed,
        // so the char after the hash is not a quote).
        if c == 'r' && next == Some('#') && chars.get(i + 2).copied().is_some_and(is_ident_start) {
            i += 2;
            while i < n && is_ident_char(chars[i]) {
                i += 1;
            }
            push(&mut out, Kind::RawIdent, &chars[start..i], start_line);
            continue;
        }
        // Identifiers and numbers: one greedy run of ident chars, but an
        // interior raw-string opener terminates the run (legacy-stripper
        // mimicry; see module docs).
        if is_ident_char(c) {
            let kind = if c.is_ascii_digit() { Kind::Num } else { Kind::Ident };
            i += 1;
            while i < n && is_ident_char(chars[i]) && raw_opener(&chars, i).is_none() {
                i += 1;
            }
            push(&mut out, kind, &chars[start..i], start_line);
            continue;
        }
        // Quote: char literal iff it closes within two chars or opens an
        // escape; otherwise a lifetime (possibly a bare quote).
        if c == '\'' {
            if next == Some('\\') || chars.get(i + 2) == Some(&'\'') {
                i += 1;
                while i < n {
                    if chars[i] == '\\' {
                        i += 2;
                    } else if chars[i] == '\'' {
                        i += 1;
                        break;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                if i > n {
                    i = n;
                }
                push(&mut out, Kind::Char, &chars[start..i.min(n)], start_line);
            } else {
                i += 1;
                // `'r#"` / `'r"`: the stripper re-reads the `r` as a raw
                // string opener, so the lifetime keeps only the quote.
                if raw_opener(&chars, i).is_none() {
                    while i < n && is_ident_char(chars[i]) && raw_opener(&chars, i).is_none() {
                        i += 1;
                    }
                }
                push(&mut out, Kind::Lifetime, &chars[start..i], start_line);
            }
            continue;
        }
        // String literal.
        if c == '"' {
            i += 1;
            while i < n {
                if chars[i] == '\\' {
                    if chars.get(i + 1) == Some(&'\n') {
                        line += 1;
                    }
                    i += 2;
                } else if chars[i] == '"' {
                    i += 1;
                    break;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            push(&mut out, Kind::Str, &chars[start..i.min(n)], start_line);
            continue;
        }
        // Everything else: single punctuation char.
        i += 1;
        push(&mut out, Kind::Punct, &chars[start..i], start_line);
    }
    out
}

/// Renders the stripped view (comments and literal contents blanked,
/// delimiters and layout preserved) from a fresh lex of `text`.
///
/// Byte-identical to [`crate::source::strip_legacy`] — pinned by the
/// differential tests.
pub fn stripped(text: &str) -> String {
    stripped_from(&lex(text), text)
}

/// [`stripped`] over an already-lexed token stream.
pub fn stripped_from(tokens: &[Token], text: &str) -> String {
    let chars: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut pos = 0usize; // char index into `chars`
    for tok in tokens {
        let tok_chars: Vec<char> = tok.text.chars().collect();
        let start = find_token_start(&chars, pos, &tok_chars);
        // Copy the whitespace gap verbatim.
        for &c in &chars[pos..start] {
            out.push(c);
        }
        render(tok, &tok_chars, &mut out);
        pos = start + tok_chars.len();
    }
    for &c in &chars[pos..] {
        out.push(c);
    }
    out
}

/// The next token begins at the first non-whitespace char at or after
/// `pos`; asserting on the text guards renderer/lexer drift.
fn find_token_start(chars: &[char], mut pos: usize, tok: &[char]) -> usize {
    while pos < chars.len() && chars[pos].is_whitespace() {
        pos += 1;
    }
    debug_assert!(chars[pos..].starts_with(tok), "lexer/renderer desync");
    pos
}

/// Emits one token's stripped form.
fn render(tok: &Token, chars: &[char], out: &mut String) {
    match tok.kind {
        Kind::Ident | Kind::RawIdent | Kind::Num | Kind::Lifetime | Kind::Punct => {
            out.push_str(&tok.text);
        }
        Kind::LineComment => {
            for _ in chars {
                out.push(' ');
            }
        }
        Kind::BlockComment | Kind::RawStr => {
            for &c in chars {
                out.push(if c == '\n' { '\n' } else { ' ' });
            }
        }
        Kind::Str => render_quoted(chars, '"', true, out),
        Kind::Char => render_quoted(chars, '\'', false, out),
    }
}

/// Blanks a quoted literal's contents: delimiters kept, escape pairs
/// blanked (a string escape of a newline keeps the newline — the legacy
/// stripper restores it there but not in char literals), bare newlines
/// kept.
fn render_quoted(chars: &[char], quote: char, escape_keeps_newline: bool, out: &mut String) {
    out.push(quote);
    let mut i = 1usize;
    let n = chars.len();
    // Trailing delimiter present only if the literal was terminated.
    let terminated = n >= 2 && chars[n - 1] == quote && !ends_in_open_escape(&chars[1..n - 1]);
    let body_end = if terminated { n - 1 } else { n };
    while i < body_end {
        if chars[i] == '\\' {
            // An escape pair always renders as two characters (the legacy
            // stripper emits them before looking at the escaped char),
            // with the newline restored for string line-continuations.
            out.push(' ');
            if chars.get(i + 1) == Some(&'\n') && escape_keeps_newline {
                out.push('\n');
            } else {
                out.push(' ');
            }
            i += 2;
        } else if chars[i] == '\n' {
            out.push('\n');
            i += 1;
        } else {
            out.push(' ');
            i += 1;
        }
    }
    if terminated {
        out.push(quote);
    }
}

/// Whether the body ends with an unpaired backslash (so a trailing quote
/// char was consumed by the escape, not closing the literal).
fn ends_in_open_escape(body: &[char]) -> bool {
    let mut trailing = 0usize;
    for &c in body.iter().rev() {
        if c == '\\' {
            trailing += 1;
        } else {
            break;
        }
    }
    trailing % 2 == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_keywords_numbers_puncts() {
        let toks = kinds("fn foo(x: u32) -> u32 { x + 0x7f }");
        assert!(toks.contains(&(Kind::Ident, "fn".into())));
        assert!(toks.contains(&(Kind::Ident, "foo".into())));
        assert!(toks.contains(&(Kind::Num, "0x7f".into())));
        assert!(toks.contains(&(Kind::Punct, "{".into())));
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let toks = kinds(r####"let s = r##"panic!("x")"## ;"####);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == Kind::RawStr && t.starts_with("r##\"")));
        assert!(!toks.iter().any(|(_, t)| t == "panic"));
    }

    #[test]
    fn raw_idents_are_one_token() {
        let toks = kinds("let r#match = r#fn + other;");
        assert!(toks.contains(&(Kind::RawIdent, "r#match".into())));
        assert!(toks.contains(&(Kind::RawIdent, "r#fn".into())));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == Kind::Lifetime).count(),
            2,
            "{toks:?}"
        );
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Char).count(), 2);
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let toks = kinds("a /* x /* y */ z */ b");
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::BlockComment).count(), 1);
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Ident).count(), 2);
    }

    #[test]
    fn token_lines_are_tracked() {
        let toks = lex("a\n/* two\nlines */\nb \"multi\nline\" c");
        let find = |s: &str| toks.iter().find(|t| t.text == s).unwrap().line;
        assert_eq!(find("a"), 0);
        assert_eq!(find("b"), 3);
        assert_eq!(find("c"), 4, "string newline advances the count");
    }

    #[test]
    fn stripped_blanks_literals_and_comments() {
        let s = stripped("let a = \"has .unwrap() inside\"; // and .expect( here\n");
        assert!(!s.contains(".unwrap()"));
        assert!(!s.contains(".expect("));
        assert!(s.contains("let a = \""));
    }

    #[test]
    fn stripped_matches_legacy_on_tricky_cases() {
        for src in [
            "a /* x /* y */ still */ b\n/* open\npanic!()\n*/ c\n",
            "fn f<'a>(x: &'a str) -> &'a str { x }\n",
            "let s = r#\"panic!(\"no\")\"#; done\n",
            "let s = \"two \\\" quotes\"; let c = '\\'';\n",
            "let s = \"line\\\ncontinued\"; x\n",
            "xr\"raw abuts ident\" tail\n",
            "let r#match = 'x'; '' ''' \n",
            "unterminated \"string tail\n",
            "b\"bytes\" b'x' 'static\n",
            "for#\"quirky raw\"# after\n",
        ] {
            assert_eq!(
                stripped(src),
                crate::source::strip_legacy(src),
                "diverged on {src:?}"
            );
        }
    }
}
