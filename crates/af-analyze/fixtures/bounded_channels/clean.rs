// Fixture: must NOT trigger `bounded-channels` — every channel has a
// capacity, and prose mentioning unbounded( is not a construction.

pub const QUEUE_CAPACITY: usize = 256;

pub fn build() {
    let (_tx, _rx) = crossbeam_channel::bounded::<u32>(QUEUE_CAPACITY);
    // "never call unbounded() here" — comment text does not count.
    let _doc = "see the unbounded(...) discussion in DESIGN.md";
}
