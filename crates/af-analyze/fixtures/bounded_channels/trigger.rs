// Fixture: must trigger `bounded-channels` three times — plain and
// turbofish `unbounded`, plus std's always-unbounded `mpsc::channel`.

pub fn build() {
    let (_tx, _rx) = crossbeam_channel::unbounded::<u32>();
    let (_tx2, _rx2) = crossbeam_channel::unbounded();
    let (_tx3, _rx3): (std::sync::mpsc::Sender<u32>, _) = std::sync::mpsc::channel();
}
