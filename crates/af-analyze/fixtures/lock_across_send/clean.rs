// Fixture: must NOT trigger `lock-across-send` — the guard is released
// before sending, by scope end or by explicit drop.

pub fn forward_scoped(q: &std::sync::Mutex<Vec<u32>>, tx: &crossbeam_channel::Sender<u32>) {
    let first = {
        let guard = q.lock().unwrap_or_else(|p| p.into_inner());
        guard[0]
    };
    tx.send(first).ok();
}

pub fn forward_dropped(q: &std::sync::Mutex<Vec<u32>>, tx: &crossbeam_channel::Sender<u32>) {
    let guard = q.lock().unwrap_or_else(|p| p.into_inner());
    let first = guard[0];
    drop(guard);
    tx.send(first).ok();
}
