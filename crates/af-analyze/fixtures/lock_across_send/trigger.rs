// Fixture: must trigger `lock-across-send` — the guard is still live when
// the channel send can block.

pub fn forward(q: &std::sync::Mutex<Vec<u32>>, tx: &crossbeam_channel::Sender<u32>) {
    let guard = q.lock().unwrap_or_else(|p| p.into_inner());
    tx.send(guard[0]).ok();
}
