// Fixture: must trigger `unsafe-blocks` twice — one unaudited unsafe
// block and one unaudited `unsafe fn` declaration.  (The per-item
// allows are earned: the file does contain unsafe sites.)

#[allow(unsafe_code)]
pub fn view(bytes: &[u8]) -> &[u16] {
    let (_, samples, _) = unsafe { bytes.align_to::<u16>() };
    samples
}

#[allow(unsafe_code)]
pub unsafe fn raw_read(p: *const u32) -> u32 {
    *p
}
