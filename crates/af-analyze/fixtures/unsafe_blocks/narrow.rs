// Fixture: must trigger `unsafe-blocks` once — a module-wide
// `#![allow(unsafe_code)]` guarding a single (audited) site; the
// blanket form must narrow to a per-item `#[allow(unsafe_code)]`.

#![allow(unsafe_code)]

pub fn timestamp() -> u64 {
    // SAFETY: RDTSC is unprivileged on every targeted OS; it reads a
    // counter and touches no memory.
    unsafe { core::arch::x86_64::_rdtsc() }
}
