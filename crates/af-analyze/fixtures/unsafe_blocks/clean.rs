// Fixture: must NOT trigger `unsafe-blocks` — a per-item allow guarding
// one unsafe block whose SAFETY audit sits directly above it.

#[allow(unsafe_code)]
pub fn view(bytes: &[u8]) -> Option<&[u16]> {
    if bytes.len() % 2 != 0 {
        return None;
    }
    // SAFETY: u16 has no invalid bit patterns, `align_to` only yields an
    // aligned middle slice, and the length check above excludes partial
    // samples.
    let (head, samples, tail) = unsafe { bytes.align_to::<u16>() };
    (head.is_empty() && tail.is_empty()).then_some(samples)
}
