// Fixture: must trigger `unsafe-blocks` once — the file re-enables
// `unsafe_code` yet contains no unsafe site at all; the allow is dead
// surface and must fall back to the crate-level gate.

#![allow(unsafe_code)]

pub fn plain(x: u32) -> u32 {
    x.wrapping_add(1)
}
