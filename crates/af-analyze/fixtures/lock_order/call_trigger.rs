// Fixture: must trigger `lock-order` once *through the call graph* —
// `hold_alpha` never touches beta directly, but calls `grab_beta` while
// holding alpha, which orders alpha before beta; `take_reversed` orders
// them the other way.

struct S {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl S {
    fn hold_alpha(&self) {
        let a = self.alpha.lock();
        self.grab_beta();
        *a += 1;
    }

    fn grab_beta(&self) {
        let b = self.beta.lock();
        *b += 1;
    }

    fn take_reversed(&self) {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        *a += *b;
    }
}
