// Fixture: must NOT trigger `lock-order` — every function acquires in
// the one global order (alpha before beta), and `serial` releases alpha
// with an explicit `drop` before taking beta.

struct S {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl S {
    fn take_both(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        *b += *a;
    }

    fn take_both_again(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        *a += *b;
    }

    fn serial(&self) {
        let a = self.alpha.lock();
        drop(a);
        let b = self.beta.lock();
        *b += 1;
    }
}
