// Fixture: must trigger `lock-order` exactly once — `take_both` orders
// alpha before beta while `take_reversed` orders beta before alpha, and
// the finding must name the acquisition sites on both sides.

struct S {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl S {
    fn take_both(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        *b += *a;
    }

    fn take_reversed(&self) {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        *a += *b;
    }
}
