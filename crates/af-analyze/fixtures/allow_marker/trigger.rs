// Fixture: must trigger `allow-marker` twice — an unknown lint name and a
// marker with no justification.

// af-analyze: allow(no-such-lint): the lint name is misspelled
pub fn a() {}

// af-analyze: allow(no-panics)
pub fn b() {}
