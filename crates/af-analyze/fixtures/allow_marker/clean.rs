// Fixture: a valid justified marker suppresses its lint (the expect below
// would otherwise be a `no-panics` finding on a server path) and is not
// itself reported.

pub fn recover(m: &std::sync::Mutex<u32>) -> u32 {
    // af-analyze: allow(no-panics): leaf lock, no user code runs under it
    *m.lock().expect("leaf lock cannot be poisoned")
}
