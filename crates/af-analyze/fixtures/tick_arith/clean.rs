// Fixture: must NOT trigger `tick-arith` — wrapping ops, lossless `from`
// conversions and wrap-safe masking only.

pub fn good(t: ATime, other: ATime, raw: u32) -> u32 {
    let a = t.ticks().wrapping_add(1);
    let b = other.ticks().wrapping_sub(t.ticks());
    let c = u64::from(t.ticks());
    let d = t.ticks() & 0xffff;
    a ^ b ^ (c as u32) ^ d ^ raw
}
