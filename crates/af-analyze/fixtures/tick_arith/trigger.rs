// Fixture: must trigger `tick-arith` three times — bare `+` after and
// before a `.ticks()` value, and a bare `as` cast.

pub fn bad(t: ATime, raw: u32) -> u32 {
    let a = t.ticks() + 1;
    let b = raw + t.ticks();
    let c = t.ticks() as u64;
    a ^ b ^ (c as u32)
}
