// Fixture: registry-complete worker hot loop.  Every root of the
// `blocking-in-reactor` and `alloc` lints exists and the bodies stick to
// non-blocking primitives, atomics and pre-sized scratch.

impl Worker {
    fn handle(&mut self, job: Job) {
        self.handle_play(job);
    }

    fn handle_play(&mut self, job: Job) {
        self.scratch.clear();
        self.scratch.extend_from_slice(job.data);
    }

    fn handle_record(&mut self, job: Job) {
        let _ = self.out.try_send(job.id);
    }

    fn finish_record(&mut self) {
        self.retry_one();
    }

    fn retry_one(&mut self) {}

    fn run_group_update(&mut self) {}

    fn run_passthrough(&mut self) {}

    fn publish_snapshots(&self) {
        self.frames.store(1, Ordering::Relaxed);
    }
}
