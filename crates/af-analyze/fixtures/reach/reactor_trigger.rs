// Fixture: must trigger `blocking-in-reactor` once, two calls deep —
// `drive_read` calls `stall`, whose blocking channel `.recv()` the lint
// must reach through the call graph and report with the full path.

impl Shard {
    fn handle_wake(&mut self) {
        self.handle_token(1);
    }

    fn handle_token(&mut self, token: u64) {
        self.read_conn(token);
    }

    fn read_conn(&mut self, token: u64) {
        self.drive_read(token);
    }

    fn drive_read(&mut self, token: u64) {
        self.stall();
        self.flush_conn(token);
    }

    fn stall(&mut self) {
        let _ = self.inbox.recv();
    }

    fn flush_conn(&mut self, token: u64) {
        let _ = self.outbound.try_send(token);
    }

    fn accept_tcp(&mut self) {
        self.register_conn(Vec::new());
    }

    fn accept_unix(&mut self) {
        self.register_conn(Vec::new());
    }

    fn register_conn(&mut self, setup: Vec<u8>) {
        self.conns.push(Box::new(setup));
    }

    fn read_bcast(&mut self, token: u64) {
        self.start_stream(token);
        self.pump_bcast(token, false);
    }

    fn pump_bcast(&mut self, token: u64, strike: bool) {
        let _ = (token, strike);
        let _ = self.bus.fetch_batch(token, 8);
    }

    fn accept_bcast(&mut self) {
        self.register_bcast(Vec::new());
    }

    fn register_bcast(&mut self, req: Vec<u8>) {
        self.listeners.push(Box::new(req));
    }

    fn start_stream(&mut self, token: u64) {
        let head = format!("ICY 200 OK token {token}");
        self.headers.push(head.to_string());
    }
}
