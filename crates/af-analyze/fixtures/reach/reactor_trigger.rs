// Fixture: must trigger `blocking-in-reactor` once, two calls deep —
// `drive_read` calls `stall`, whose blocking channel `.recv()` the lint
// must reach through the call graph and report with the full path.

impl Shard {
    fn handle_wake(&mut self) {
        self.handle_token(1);
    }

    fn handle_token(&mut self, token: u64) {
        self.read_conn(token);
    }

    fn read_conn(&mut self, token: u64) {
        self.drive_read(token);
    }

    fn drive_read(&mut self, token: u64) {
        self.stall();
        self.flush_conn(token);
    }

    fn stall(&mut self) {
        let _ = self.inbox.recv();
    }

    fn flush_conn(&mut self, token: u64) {
        let _ = self.outbound.try_send(token);
    }

    fn accept_tcp(&mut self) {
        self.register_conn(Vec::new());
    }

    fn accept_unix(&mut self) {
        self.register_conn(Vec::new());
    }

    fn register_conn(&mut self, setup: Vec<u8>) {
        self.conns.push(Box::new(setup));
    }
}
