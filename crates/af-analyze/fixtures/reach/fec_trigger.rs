// Fixture: must trigger `alloc` once — `encode` reaches a defensive
// `.to_vec()` copy through its `copy_out` helper; the finding must carry
// the `encode -> copy_out` path.

impl Codec {
    fn encode(&mut self, frame: &[u8], out: &mut Vec<u8>) {
        let owned = self.copy_out(frame);
        out.extend_from_slice(&owned);
    }

    fn copy_out(&self, frame: &[u8]) -> Vec<u8> {
        frame.to_vec()
    }

    fn decode(&mut self, bytes: &[u8]) -> Option<Frame> {
        if bytes.is_empty() {
            return None;
        }
        self.try_reconstruct(bytes)
    }

    fn try_reconstruct(&mut self, bytes: &[u8]) -> Option<Frame> {
        None
    }
}
