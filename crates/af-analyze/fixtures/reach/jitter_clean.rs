// Fixture: jitter-buffer per-frame entry points — fixed slot array,
// no allocation, no blocking.

impl JitterBuffer {
    fn insert(&mut self, slot: usize, frame: Frame) {
        let at = slot % self.slots.len();
        self.slots[at] = Some(frame);
    }

    fn read(&mut self) -> Option<Frame> {
        self.slots[self.head].take()
    }
}
