// Fixture: registry-complete dispatcher.  The data-plane arms (the
// `alloc` roots) are allocation-free; `process_request` and `dispatch`
// are control-plane *barriers* and allocate freely — the lint must not
// follow `drain_queue` through them.

impl Dispatcher {
    fn h_play(&mut self, req: Request) {
        self.queue.push_back(req.id);
    }

    fn h_record(&mut self, req: Request) {
        let _ = self.out.try_send(req.id);
    }

    fn finish_record(&mut self) {}

    fn drain_queue(&mut self) {
        self.process_request(0);
    }

    fn retry_blocked(&mut self) {
        self.drain_queue();
    }

    fn process_request(&mut self, op: u16) {
        let label = format!("op {op}");
        self.dispatch(label);
    }

    fn dispatch(&mut self, label: String) {
        self.names.push(label.clone());
    }
}
