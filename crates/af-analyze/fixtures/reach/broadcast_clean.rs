// Fixture: registry-complete broadcast bus.  Every `alloc` root exists;
// the seal path recycles a retired wire buffer (sized one-shot
// `with_capacity` on a pool miss — the shape the lint pushes toward),
// the fetch path hands out `Arc` clones of ring chunks, and the tap
// accumulates into pre-sized staging.
impl BroadcastBus {
    pub fn publish(&self, payload: &[u8]) {
        let mut wire = self.pop_free();
        wire.extend_from_slice(payload);
        self.seal(wire);
    }

    fn pop_free(&self) -> Vec<u8> {
        match self.free.pop() {
            Some(buf) => buf,
            None => Vec::with_capacity(self.chunk_bytes + 20),
        }
    }

    fn seal(&self, wire: Vec<u8>) {
        self.ring.insert(wire);
    }

    pub fn fetch_batch(&self, cursor: u64, max: usize) -> u64 {
        let mut seq = cursor;
        while seq < self.live_seq() && (seq - cursor) < max as u64 {
            seq += 1;
        }
        seq
    }
}

impl BusTap {
    fn absorb(&mut self, bytes: &[u8]) {
        self.staging.extend_from_slice(bytes);
        if self.staging.len() == self.chunk_bytes {
            self.bus.publish(&self.staging);
            self.staging.clear();
        }
    }
}
