// Fixture: FEC per-frame entry points reuse caller-owned scratch.
// `try_reconstruct` is the loss-recovery barrier: it runs only when
// shards actually went missing and may allocate its elimination
// matrices without tripping the `alloc` lint.

impl Codec {
    fn encode(&mut self, frame: &[u8], out: &mut Vec<u8>) {
        out.clear();
        out.extend_from_slice(frame);
    }

    fn decode(&mut self, bytes: &[u8]) -> Option<Frame> {
        if bytes.is_empty() {
            return None;
        }
        self.try_reconstruct(bytes)
    }

    fn try_reconstruct(&mut self, bytes: &[u8]) -> Option<Frame> {
        let mut matrix = Vec::new();
        matrix.push(format!("{bytes:?}"));
        None
    }
}
