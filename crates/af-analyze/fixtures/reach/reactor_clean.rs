// Fixture: registry-complete reactor shard.  Every `blocking-in-reactor`
// and `alloc` root exists; the handler chain uses only non-blocking
// primitives and caller-owned scratch.  The accept/registration path
// (an `alloc` barrier) allocates its per-connection state — that is
// setup, amortized over the connection lifetime, and must not be
// reported.

impl Shard {
    fn handle_wake(&mut self) {
        self.handle_token(1);
    }

    fn handle_token(&mut self, token: u64) {
        self.read_conn(token);
    }

    fn read_conn(&mut self, token: u64) {
        self.drive_read(token);
    }

    fn drive_read(&mut self, token: u64) {
        self.flush_conn(token);
    }

    fn flush_conn(&mut self, token: u64) {
        let _ = self.outbound.try_send(token);
    }

    fn accept_tcp(&mut self) {
        self.register_conn(Vec::new());
    }

    fn accept_unix(&mut self) {
        self.register_conn(Vec::new());
    }

    fn register_conn(&mut self, setup: Vec<u8>) {
        self.conns.push(Box::new(setup));
    }

    fn read_bcast(&mut self, token: u64) {
        self.start_stream(token);
        self.pump_bcast(token, false);
    }

    fn pump_bcast(&mut self, token: u64, strike: bool) {
        let _ = (token, strike);
        let _ = self.bus.fetch_batch(token, 8);
    }

    fn accept_bcast(&mut self) {
        self.register_bcast(Vec::new());
    }

    fn register_bcast(&mut self, req: Vec<u8>) {
        self.listeners.push(Box::new(req));
    }

    fn start_stream(&mut self, token: u64) {
        let head = format!("ICY 200 OK token {token}");
        self.headers.push(head.to_string());
    }
}
