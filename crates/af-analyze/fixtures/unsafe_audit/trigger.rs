// Fixture: must trigger `unsafe-audit` once when presented as a crate
// root — no `#![forbid/deny(unsafe_code)]` gate.  (The unaudited unsafe
// block is `unsafe-blocks`' concern, reported separately.)

pub fn view(bytes: &[u8]) -> &[u16] {
    let (_, samples, _) = unsafe { bytes.align_to::<u16>() };
    samples
}
