// Fixture: must trigger `unsafe-audit` twice when presented as a crate
// root — no `#![forbid/deny(unsafe_code)]` gate, and an `unsafe` block
// with no SAFETY audit.

pub fn view(bytes: &[u8]) -> &[u16] {
    let (_, samples, _) = unsafe { bytes.align_to::<u16>() };
    samples
}
