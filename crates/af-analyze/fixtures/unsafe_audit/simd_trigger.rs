// Fixture: must trigger `unsafe-blocks` twice when presented as a SIMD
// kernel module — an unaudited `#[target_feature]` unsafe fn declaration
// and an unaudited intrinsic call site, neither carrying its audit.

#![allow(unsafe_code)]

#[target_feature(enable = "avx2")]
pub unsafe fn decode_block(data: &[u8], out: &mut [i16]) {
    for (b, o) in data.iter().zip(out) {
        *o = unsafe { core::mem::transmute::<u16, i16>(u16::from(*b) << 8) };
    }
}
