// Fixture: must NOT trigger `unsafe-blocks` — the SIMD-module shape the
// real `af_dsp::kernels::x86`/`neon` files use: a module-wide
// `unsafe_code` re-enable earned by multiple unsafe sites, a SAFETY
// contract for callers on the `#[target_feature]` declaration, and an
// audit on the call site.

#![allow(unsafe_code)]

#[target_feature(enable = "avx2")]
// SAFETY: callers must guarantee the CPU supports AVX2; the kernel vtable
// only selects this entry after runtime feature detection.
pub unsafe fn decode_block(data: &[u8], out: &mut [i16]) {
    for (b, o) in data.iter().zip(out) {
        // SAFETY: every u16 bit pattern is a valid i16.
        *o = unsafe { core::mem::transmute::<u16, i16>(u16::from(*b) << 8) };
    }
}
