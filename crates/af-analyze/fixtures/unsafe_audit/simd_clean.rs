// Fixture: must NOT trigger `unsafe-audit` — the SIMD-module shape the
// real `af_dsp::kernels::x86`/`neon` files use: the `unsafe_code`
// re-enable carries its justification marker, the `#[target_feature]`
// declaration carries a SAFETY contract for callers, and the call site
// carries its own audit.

// af-analyze: allow(unsafe-audit): core::arch intrinsics require unsafe; every site below carries a SAFETY audit.
#![allow(unsafe_code)]

#[target_feature(enable = "avx2")]
// SAFETY: callers must guarantee the CPU supports AVX2; the kernel vtable
// only selects this entry after runtime feature detection.
pub unsafe fn decode_block(data: &[u8], out: &mut [i16]) {
    for (b, o) in data.iter().zip(out) {
        // SAFETY: every u16 bit pattern is a valid i16.
        *o = unsafe { core::mem::transmute::<u16, i16>(u16::from(*b) << 8) };
    }
}
