// Fixture: must trigger `unsafe-blocks` twice when presented as a
// raw-syscall shim — an unaudited `unsafe fn` wrapper declaration and an
// unaudited wrapper call site (the asm block itself carries its audit).

#![allow(unsafe_code)]

unsafe fn syscall1(n: usize, a0: usize) -> isize {
    let ret: isize;
    // SAFETY: number in rax, one argument in rdi; no pointers involved.
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a0,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack, preserves_flags)
        );
    }
    ret
}

pub fn epoll_create1(flags: usize) -> isize {
    unsafe { syscall1(291, flags) }
}
