// Fixture: must NOT trigger `unsafe-blocks` — the raw-syscall-shim shape
// the real `af_server::reactor::sys` uses: a module-wide `unsafe_code`
// re-enable earned by several unsafe sites, a SAFETY contract for
// callers on the wrapper declaration, and audits on the asm block and
// each wrapper call site.

#![allow(unsafe_code)]

// SAFETY: deferred to callers, who must pass pointer arguments that stay
// valid (and writable where the kernel writes) for the whole call.
unsafe fn syscall5(n: usize, a0: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
    let ret: isize;
    // SAFETY: the x86_64 Linux syscall ABI — number in rax, args in
    // rdi/rsi/rdx/r10/r8, clobbers rcx/r11; the caller guarantees the
    // pointer arguments.
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a0,
            in("rsi") a1,
            in("rdx") a2,
            in("r10") a3,
            in("r8") a4,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack, preserves_flags)
        );
    }
    ret
}

pub fn epoll_create1(flags: usize) -> isize {
    // SAFETY: epoll_create1 takes no pointer arguments.
    unsafe { syscall5(291, flags, 0, 0, 0, 0) }
}
