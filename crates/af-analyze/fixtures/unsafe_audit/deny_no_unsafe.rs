// Fixture: must trigger `unsafe-audit` once when presented as a crate
// root — the crate contains no unsafe code at all, so the revocable
// `#![deny(unsafe_code)]` must tighten to `#![forbid(unsafe_code)]`.

#![deny(unsafe_code)]

pub fn plain(x: u32) -> u32 {
    x.wrapping_add(1)
}
