// Fixture: must NOT trigger `unsafe-audit` — the crate root carries the
// gate and the one unsafe block carries its audit.

#![deny(unsafe_code)]

pub fn view(bytes: &[u8]) -> Option<&[u16]> {
    if bytes.len() % 2 != 0 {
        return None;
    }
    // SAFETY: u16 has no invalid bit patterns, `align_to` only yields a
    // middle slice at correct alignment, and the length check above
    // excludes partial samples.
    let (head, samples, tail) = unsafe { bytes.align_to::<u16>() };
    (head.is_empty() && tail.is_empty()).then_some(samples)
}
