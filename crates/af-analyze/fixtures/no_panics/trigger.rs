// Fixture: must trigger `no-panics` twice (unwrap + expect), but not in
// the #[cfg(test)] module below.

pub fn handle(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn other(r: Result<u32, ()>) -> u32 {
    r.expect("always ok")
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
