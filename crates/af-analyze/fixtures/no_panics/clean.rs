// Fixture: must NOT trigger `no-panics` — fallible cases degrade instead
// of panicking, and `.unwrap_or` is not `.unwrap()`.

pub fn handle(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}

pub fn other(r: Result<u32, ()>) -> u32 {
    match r {
        Ok(v) => v,
        Err(()) => 0,
    }
}

pub fn mentions() -> &'static str {
    // A string mentioning panic! or .unwrap() is not a call:
    "do not panic! never .unwrap() anything"
}
