// Fixture: the opcode enum is generated from the spec table.

macro_rules! define_opcode {
    ($(($name:ident, $wire:literal, $reply:ident, $doc:literal)),* $(,)?) => {
        pub enum Opcode {
            $($name = $wire,)*
        }
    };
}
crate::with_request_table!(define_opcode);
