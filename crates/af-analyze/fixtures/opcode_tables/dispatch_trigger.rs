// Fixture: must trigger `opcode-tables` — GetTime has no dispatch arm
// (swallowed by a wildcard, the drift this lint exists to catch).

impl Dispatcher {
    fn dispatch(&mut self, req: Request) {
        use Request as R;
        match req {
            R::SelectEvents { .. } => self.h_select(),
            R::PlaySamples { .. } => self.h_play(),
            _ => {}
        }
    }
}
