// Fixture: request encode/decode tables cover every spec row, and the
// opcode mapping is generated from the table macro.

macro_rules! define_request_opcode {
    ($(($name:ident, $wire:literal, $reply:ident, $doc:literal)),* $(,)?) => {
        impl Request {
            pub fn opcode(&self) -> Opcode {
                match self {
                    $(Request::$name { .. } => Opcode::$name,)*
                }
            }
        }
    };
}
crate::with_request_table!(define_request_opcode);

impl Request {
    pub fn encode_payload(&self) -> Vec<u8> {
        match self {
            Request::SelectEvents { .. } => Vec::new(),
            Request::PlaySamples { .. } => Vec::new(),
            Request::GetTime { .. } => Vec::new(),
        }
    }

    pub fn decode(op: Opcode) -> Request {
        match op {
            Opcode::SelectEvents => Request::SelectEvents {},
            Opcode::PlaySamples => Request::PlaySamples {},
            Opcode::GetTime => Request::GetTime {},
        }
    }
}
