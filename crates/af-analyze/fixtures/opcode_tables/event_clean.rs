// Fixture: the event kinds are generated and decode covers them all.

macro_rules! define_event_kind {
    ($(($name:ident, $wire:literal, $doc:literal)),* $(,)?) => {
        pub enum EventKind {
            $($name = $wire,)*
        }
    };
}
crate::with_event_table!(define_event_kind);

impl Event {
    pub fn decode(kind: EventKind) -> Event {
        match kind {
            EventKind::PhoneRing => Event::ring(),
            EventKind::PhoneDTMF => Event::dtmf(),
        }
    }
}
