// Fixture: the dispatcher has an arm for every request in the spec.

impl Dispatcher {
    fn dispatch(&mut self, req: Request) {
        use Request as R;
        match req {
            R::SelectEvents { .. } => self.h_select(),
            R::PlaySamples { .. } => self.h_play(),
            R::GetTime { .. } => self.h_get_time(),
        }
    }
}
