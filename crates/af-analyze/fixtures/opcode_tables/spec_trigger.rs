// Fixture: must trigger `opcode-tables` — GetTime's wire value leaves a
// gap (position implies 3), and the request count constant is stale.

pub const REQUEST_COUNT: usize = 4;
pub const EVENT_COUNT: usize = 2;

#[macro_export]
macro_rules! with_request_table {
    ($m:ident) => {
        $m! {
            (SelectEvents, 1, oneway, "select future events"),
            (PlaySamples, 2, oneway, "queue samples for playback"),
            (GetTime, 4, replies, "read device time"),
        }
    };
}

#[macro_export]
macro_rules! with_event_table {
    ($m:ident) => {
        $m! {
            (PhoneRing, 0, "ring state changed"),
            (PhoneDTMF, 1, "DTMF digit decoded"),
        }
    };
}
