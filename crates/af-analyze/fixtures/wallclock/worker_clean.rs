// Fixture: must NOT trigger `wallclock`.  Every hot-path function from the
// worker.rs registry exists and runs on device time only.

pub struct Worker;

impl Worker {
    pub fn handle(&mut self) {
        self.handle_play();
        self.handle_record();
    }

    fn handle_play(&mut self) {
        self.retry_one();
    }

    fn handle_record(&mut self) {
        self.finish_record();
    }

    fn finish_record(&mut self) {
        self.publish_snapshots();
    }

    fn retry_one(&mut self) {
        let _retried = true;
    }

    pub fn run_group_update(&mut self) {
        self.run_passthrough();
    }

    fn run_passthrough(&mut self) {
        let _mixed = 0u32;
    }

    fn publish_snapshots(&mut self) {
        let _ticks = 7u64;
    }
}
