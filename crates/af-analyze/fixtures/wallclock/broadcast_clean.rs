// Clean broadcast bus: the seal/fetch hot paths read only the cycle
// counter (for the encode accounting), never a wall clock.  The
// non-registry `snapshot` helper reads `Instant::now` for a stats
// timestamp — reporting-layer code, permitted.
impl BroadcastBus {
    pub fn publish(&self, payload: &[u8]) {
        let t0 = cycles::timestamp();
        let mut wire = self.pop_free();
        push_hex(payload.len(), &mut wire);
        wire.extend_from_slice(payload);
        let _ = cycles::timestamp().wrapping_sub(t0);
        self.notify_shards();
    }

    fn notify_shards(&self) {
        for (dirty, wake) in self.shards.iter() {
            if !dirty.swap(true, Ordering::AcqRel) {
                wake();
            }
        }
    }

    pub fn fetch_batch(&self, cursor: u64, max: usize) -> u64 {
        cursor + max as u64
    }

    fn snapshot(&self) -> Snapshot {
        Snapshot {
            at: std::time::Instant::now(),
        }
    }
}

impl BusTap {
    fn absorb(&mut self, bytes: &[u8]) {
        self.staging.extend_from_slice(bytes);
    }
}

fn push_hex(len: usize, out: &mut Vec<u8>) {
    out.extend_from_slice(&[HEX[len & 0xf]]);
}
