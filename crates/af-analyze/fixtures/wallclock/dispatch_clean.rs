// Fixture: must NOT trigger `wallclock`.  Every hot-path function from the
// dispatch.rs registry exists and reads no wall clock; the scheduling
// helper below them may (and does) read one.

use std::time::Instant;

pub struct Dispatcher;

impl Dispatcher {
    pub fn process_request(&mut self) {
        self.dispatch();
    }

    pub fn dispatch(&mut self) {
        self.h_play();
        self.h_record();
    }

    fn h_play(&mut self) {
        self.drain_queue();
    }

    fn h_record(&mut self) {
        self.finish_record();
    }

    fn finish_record(&mut self) {
        let _ticks = 42u32;
    }

    fn drain_queue(&mut self) {
        self.retry_blocked();
    }

    fn retry_blocked(&mut self) {
        let _woken = 0u32;
    }

    fn wake_instant(&self) -> Instant {
        // Scheduling layer: converting a tick deficit into a sleep is the
        // one sanctioned use of the wall clock.
        Instant::now()
    }
}
