// Trigger: a wall-clock read inside `publish`, the once-per-chunk seal
// path that every listener's bytes flow through.
impl BroadcastBus {
    pub fn publish(&self, payload: &[u8]) {
        let t0 = std::time::Instant::now();
        let mut wire = self.pop_free();
        push_hex(payload.len(), &mut wire);
        wire.extend_from_slice(payload);
        let _ = t0.elapsed();
        self.notify_shards();
    }

    fn notify_shards(&self) {
        for (dirty, wake) in self.shards.iter() {
            if !dirty.swap(true, Ordering::AcqRel) {
                wake();
            }
        }
    }

    pub fn fetch_batch(&self, cursor: u64, max: usize) -> u64 {
        cursor + max as u64
    }
}

impl BusTap {
    fn absorb(&mut self, bytes: &[u8]) {
        self.staging.extend_from_slice(bytes);
    }
}

fn push_hex(len: usize, out: &mut Vec<u8>) {
    out.extend_from_slice(&[HEX[len & 0xf]]);
}
