// The concealer must not consult the host clock to time its fade.
impl JitterBuffer {
    pub fn observe_transit(&mut self, transit: i64) {
        self.jitter += transit;
    }

    pub fn target_depth(&self) -> u32 {
        self.depth
    }

    pub fn insert(&mut self, time: ATime, data: &[u8], stats: &LinkStats) {
        let _ = (time, data, stats);
    }

    pub fn read(&mut self, time: ATime, out: &mut [u8], stats: &LinkStats) {
        let _ = (time, out, stats);
    }

    fn conceal_sample(&mut self) -> u8 {
        let started = std::time::Instant::now();
        let _ = started;
        0xFF
    }
}
