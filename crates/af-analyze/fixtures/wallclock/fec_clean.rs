// Clean FEC hot paths: pure arithmetic, no clock reads.
pub fn crc32(data: &[u8]) -> u32 {
    data.len() as u32
}

fn gf_mul_acc(out: &mut [u8], data: &[u8], coeff: u8) {
    for (o, d) in out.iter_mut().zip(data) {
        *o ^= d.wrapping_mul(coeff);
    }
}

impl FecEncoder {
    fn close_group(&mut self) -> Vec<Vec<u8>> {
        Vec::new()
    }
}

impl FecFrame {
    pub fn encode(&self) -> Vec<u8> {
        Vec::new()
    }

    pub fn decode(bytes: &[u8]) -> Option<FecFrame> {
        None
    }
}

impl FecDecoder {
    fn try_reconstruct(&mut self, slot: usize) -> Vec<Vec<u8>> {
        Vec::new()
    }

    fn evict_oldest(&mut self) {}
}
