// Fixture: must trigger `wallclock` exactly once — h_play reads the wall
// clock from inside a hot path.

use std::time::Instant;

pub struct Dispatcher;

impl Dispatcher {
    pub fn process_request(&mut self) {
        self.dispatch();
    }

    pub fn dispatch(&mut self) {
        self.h_play();
        self.h_record();
    }

    fn h_play(&mut self) {
        let _deadline = Instant::now();
        self.drain_queue();
    }

    fn h_record(&mut self) {
        self.finish_record();
    }

    fn finish_record(&mut self) {
        let _ticks = 42u32;
    }

    fn drain_queue(&mut self) {
        self.retry_blocked();
    }

    fn retry_blocked(&mut self) {
        let _woken = 0u32;
    }
}
