// Clean reactor hot paths: readiness events and device time only.  The
// shard's idle sweep is scheduling-layer code (not in the registry), so
// its wall-clock read is permitted.
impl Shard {
    fn handle_wake(&mut self) {
        while self.inbox.try_recv().is_ok() {}
    }

    fn handle_token(&mut self, ev: PollEvent) {
        let _ = ev;
        self.read_conn(0);
    }

    fn flush_conn(&mut self, token: usize, from_notify: bool) {
        let _ = (token, from_notify);
    }

    fn read_conn(&mut self, token: usize) {
        let _ = token;
    }

    fn drive_read(&mut self, conn: &mut ConnState) -> ReadOutcome {
        let _ = conn;
        ReadOutcome::Park
    }

    fn idle_sweep(&mut self) {
        let now = std::time::Instant::now();
        let _ = now;
    }

    fn read_bcast(&mut self, token: usize) {
        let _ = token;
        self.pump_bcast(token, false);
    }

    fn pump_bcast(&mut self, token: usize, strike: bool) {
        let _ = (token, strike);
    }
}
