//! Differential pinning of the token lexer against the legacy stripper.
//!
//! The eight v1 lints were ported onto the token stream by rendering the
//! stripped view from tokens ([`af_analyze::lex::stripped`]) instead of
//! running the v1 character machine ([`af_analyze::source::strip_legacy`]).
//! These tests prove the two produce byte-identical output:
//!
//! 1. over every `.rs` file in the real workspace (so the port cannot have
//!    changed what any lint sees on the tree it actually guards), and
//! 2. over randomized Rust-like input assembled from the constructs the
//!    lexer claims to handle — strings with escapes and line
//!    continuations, raw strings at several hash depths, nested block
//!    comments, lifetimes vs char literals, raw identifiers.

use proptest::prelude::*;

use af_analyze::lex;
use af_analyze::source::strip_legacy;

#[test]
fn lexer_matches_legacy_stripper_on_every_workspace_file() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root");
    let files = af_analyze::load_tree(root).expect("walk workspace");
    assert!(files.len() > 50, "workspace walk looks truncated");
    for file in &files {
        let raw = std::fs::read_to_string(root.join(&file.rel)).expect("reread");
        assert_eq!(
            lex::stripped(&raw),
            strip_legacy(&raw),
            "lexer and legacy stripper diverged on {}",
            file.rel
        );
    }
}

/// One synthetic source fragment derived deterministically from a seed.
fn fragment(seed: u64) -> String {
    let pick = |options: &[&str]| options[(seed / 16) as usize % options.len()].to_owned();
    match seed % 16 {
        0 => pick(&["alpha", "fn", "unsafe", "r#match", "x1_y", "b", "r", "br"]),
        1 => pick(&["0", "42", "0x7f_u32", "1.5e3", "9usize"]),
        2 => pick(&["+", "-", "::", ".", ";", ",", "{", "}", "(", ")", "<", ">", "#", "&", "!"]),
        3 => pick(&["'a", "'static", "'_", "'r1"]),
        4 => pick(&["'x'", "'\\n'", "'\\''", "'\\\\'", "' '", "b'q'"]),
        5 => pick(&[
            "\"plain\"",
            "\"with \\\" escaped quote\"",
            "\"back\\\\slash\"",
            "\"multi\nline\"",
            "\"tab\\t end\"",
            "b\"bytes\"",
        ]),
        // A string line-continuation: escape of a newline keeps the layout.
        6 => "\"continues \\\n  here\"".to_owned(),
        7 => pick(&[
            "r\"raw\"",
            "r#\"one hash \" inside\"#",
            "r##\"two #\" hashes\"##",
            "r#\"panic!(\"not code\")\"#",
            "br#\"byte raw\"#",
        ]),
        8 => pick(&["// line comment with .unwrap()", "//! doc", "/// outer doc"]),
        9 => pick(&[
            "/* block */",
            "/* nested /* inner */ outer */",
            "/* multi\nline /* deep\n*/ end */",
        ]),
        // Adversarial adjacency: identifier tails that look like raw-string
        // openers, quotes that are neither clean lifetimes nor literals.
        10 => pick(&["xr\"tail raw\"", "for#\"quirk\"# z", "''", "'ab", "r#\"t\"#"]),
        11 => "let s = \"nested // not a comment /* nor block */\";".to_owned(),
        12 => "fn f<'a>(x: &'a str) -> &'a str { x }".to_owned(),
        13 => format!("ident{}", seed / 16),
        14 => pick(&["#[cfg(test)]", "#![forbid(unsafe_code)]", "#[inline]"]),
        _ => pick(&["match x { _ => () }", "if a < b && c > d {}", "y.lock().send(z)"]),
    }
}

/// Separators between fragments; includes the empty separator so token
/// adjacency across fragment boundaries is exercised too.
fn separator(seed: u64) -> &'static str {
    match seed % 8 {
        0..=2 => " ",
        3 | 4 => "\n",
        5 => "\n    ",
        6 => "  ",
        _ => "",
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexer_matches_legacy_stripper_on_random_input(
        seeds in proptest::collection::vec(any::<u64>(), 0..48)
    ) {
        let mut src = String::new();
        for (k, &seed) in seeds.iter().enumerate() {
            src.push_str(&fragment(seed));
            // Fragments that end inside a line comment must be closed with
            // a newline before an empty separator could glue code onto
            // them; a newline separator is always safe.
            if seed % 16 == 8 {
                src.push('\n');
            } else {
                src.push_str(separator(seed.wrapping_add(k as u64)));
            }
        }
        let ours = lex::stripped(&src);
        let oracle = strip_legacy(&src);
        prop_assert_eq!(&ours, &oracle, "diverged on input: {:?}", src);
        // The stripped view must preserve layout exactly.
        prop_assert_eq!(ours.lines().count(), src.lines().count(), "line structure changed");
    }
}
