//! Fixture tests: every lint has a must-trigger and a must-not-trigger
//! case, so a refactor that silently disables a lint fails here rather
//! than shipping a checker that checks nothing.  The fixtures live under
//! `fixtures/` as plain text — they are linted, never compiled — and are
//! presented to the lints at the workspace-relative paths each lint
//! scopes itself to.

use af_analyze::callgraph::CallGraph;
use af_analyze::index::Index;
use af_analyze::lints;
use af_analyze::source::SourceFile;
use af_analyze::{analyze_files, Finding};

/// Parses a fixture at a pretend workspace path.
fn fx(rel: &str, text: &str) -> SourceFile {
    SourceFile::parse(rel, text)
}

/// Builds the index + call graph and runs a whole-program lint.
fn run_graph_lint(
    files: &[SourceFile],
    run: fn(&[SourceFile], &Index, &CallGraph) -> Vec<Finding>,
) -> Vec<Finding> {
    let index = Index::build(files);
    let graph = CallGraph::build(&index, files);
    run(files, &index, &graph)
}

const SERVER: &str = "crates/af-server/src/fixture.rs";

// ---- no-panics ---------------------------------------------------------

#[test]
fn no_panics_triggers() {
    let files = [fx(SERVER, include_str!("../fixtures/no_panics/trigger.rs"))];
    let found = lints::no_panics::run(&files);
    assert_eq!(
        found.len(),
        2,
        "unwrap + expect, test module exempt: {found:?}"
    );
    assert!(found.iter().all(|f| f.lint == "no-panics"));
}

#[test]
fn no_panics_stays_quiet() {
    let files = [fx(SERVER, include_str!("../fixtures/no_panics/clean.rs"))];
    assert_eq!(lints::no_panics::run(&files), vec![]);
}

#[test]
fn no_panics_is_scoped_to_af_server() {
    // The same panicking source outside af-server is out of scope.
    let files = [fx(
        "crates/af-client/src/fixture.rs",
        include_str!("../fixtures/no_panics/trigger.rs"),
    )];
    assert_eq!(lints::no_panics::run(&files), vec![]);
}

#[test]
fn no_panics_covers_wan_link_hot_paths() {
    // FEC and the jitter buffer run inside the server's real-time pump,
    // so they inherit the panic ban even though they live in af-device.
    for path in [
        "crates/af-device/src/fec.rs",
        "crates/af-device/src/jitter.rs",
    ] {
        let files = [fx(path, include_str!("../fixtures/no_panics/trigger.rs"))];
        let found = lints::no_panics::run(&files);
        assert_eq!(found.len(), 2, "{path}: {found:?}");
    }
}

#[test]
fn no_panics_covers_reactor_subdirectory() {
    // The reactor lives in a subdirectory of af-server/src; the path
    // prefix scope must reach it, or the hottest loop goes unchecked.
    let files = [fx(
        "crates/af-server/src/reactor/mod.rs",
        include_str!("../fixtures/no_panics/trigger.rs"),
    )];
    let found = lints::no_panics::run(&files);
    assert_eq!(found.len(), 2, "{found:?}");
}

#[test]
fn no_panics_covers_broadcast_bus() {
    // The broadcast bus seals every listener's bytes; a panic there
    // silences the whole audience, so it inherits the server-wide ban.
    let files = [fx(
        "crates/af-server/src/broadcast.rs",
        include_str!("../fixtures/no_panics/trigger.rs"),
    )];
    let found = lints::no_panics::run(&files);
    assert_eq!(found.len(), 2, "{found:?}");
}

// ---- bounded-channels --------------------------------------------------

#[test]
fn bounded_channels_triggers() {
    let files = [fx(
        SERVER,
        include_str!("../fixtures/bounded_channels/trigger.rs"),
    )];
    let found = lints::bounded_channels::run(&files);
    assert_eq!(
        found.len(),
        3,
        "plain, turbofish and mpsc forms: {found:?}"
    );
}

#[test]
fn bounded_channels_stays_quiet() {
    let files = [fx(
        SERVER,
        include_str!("../fixtures/bounded_channels/clean.rs"),
    )];
    assert_eq!(lints::bounded_channels::run(&files), vec![]);
}

#[test]
fn bounded_channels_covers_reactor_subdirectory() {
    // Shard inboxes and per-connection outbound queues must stay bounded;
    // the scope must reach the reactor subdirectory.
    let files = [fx(
        "crates/af-server/src/reactor/mod.rs",
        include_str!("../fixtures/bounded_channels/trigger.rs"),
    )];
    let found = lints::bounded_channels::run(&files);
    assert_eq!(found.len(), 3, "{found:?}");
}

// ---- wallclock ---------------------------------------------------------

const DISPATCH: &str = "crates/af-server/src/dispatch.rs";
const WORKER: &str = "crates/af-server/src/worker.rs";
const FEC: &str = "crates/af-device/src/fec.rs";
const JITTER: &str = "crates/af-device/src/jitter.rs";
const REACTOR: &str = "crates/af-server/src/reactor/mod.rs";
const BROADCAST: &str = "crates/af-server/src/broadcast.rs";

/// The registry-complete clean tail shared by every wallclock fixture set.
fn wallclock_rest() -> [SourceFile; 5] {
    [
        fx(WORKER, include_str!("../fixtures/wallclock/worker_clean.rs")),
        fx(FEC, include_str!("../fixtures/wallclock/fec_clean.rs")),
        fx(JITTER, include_str!("../fixtures/wallclock/jitter_clean.rs")),
        fx(REACTOR, include_str!("../fixtures/wallclock/reactor_clean.rs")),
        fx(
            BROADCAST,
            include_str!("../fixtures/wallclock/broadcast_clean.rs"),
        ),
    ]
}

#[test]
fn wallclock_triggers_inside_hot_path() {
    let mut files = vec![fx(
        DISPATCH,
        include_str!("../fixtures/wallclock/dispatch_trigger.rs"),
    )];
    files.extend(wallclock_rest());
    let found = lints::wallclock::run(&files);
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].message.contains("h_play"), "{found:?}");
    assert!(found[0].message.contains("Instant::now"), "{found:?}");
}

#[test]
fn wallclock_allows_scheduling_helpers() {
    // dispatch_clean.rs reads the wall clock in `wake_instant`, which is
    // not in the hot-path registry.
    let mut files = vec![fx(
        DISPATCH,
        include_str!("../fixtures/wallclock/dispatch_clean.rs"),
    )];
    files.extend(wallclock_rest());
    assert_eq!(lints::wallclock::run(&files), vec![]);
}

#[test]
fn wallclock_triggers_in_jitter_concealer() {
    // The WAN-link hot paths (FEC, jitter buffer) are in the registry too.
    let mut files = vec![fx(
        DISPATCH,
        include_str!("../fixtures/wallclock/dispatch_clean.rs"),
    )];
    files.extend(wallclock_rest());
    files[3] = fx(JITTER, include_str!("../fixtures/wallclock/jitter_trigger.rs"));
    let found = lints::wallclock::run(&files);
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].message.contains("conceal_sample"), "{found:?}");
}

#[test]
fn wallclock_triggers_in_reactor_framing_loop() {
    // The reactor's per-readiness-event framing loop is in the registry;
    // a wall-clock read inside `drive_read` is a finding, while the
    // fixture's non-registry `idle_sweep` clock read is not.
    let mut files = vec![fx(
        DISPATCH,
        include_str!("../fixtures/wallclock/dispatch_clean.rs"),
    )];
    files.extend(wallclock_rest());
    files[4] = fx(
        REACTOR,
        include_str!("../fixtures/wallclock/reactor_trigger.rs"),
    );
    let found = lints::wallclock::run(&files);
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].message.contains("drive_read"), "{found:?}");
}

#[test]
fn wallclock_triggers_in_broadcast_seal() {
    // The encode-once seal path is in the registry; an `Instant::now` +
    // `.elapsed()` pair inside `publish` is two findings, while the
    // fixture's non-registry `snapshot` clock read (reporting layer, in
    // the clean variant) is not.
    let mut files = vec![fx(
        DISPATCH,
        include_str!("../fixtures/wallclock/dispatch_clean.rs"),
    )];
    files.extend(wallclock_rest());
    files[5] = fx(
        BROADCAST,
        include_str!("../fixtures/wallclock/broadcast_trigger.rs"),
    );
    let found = lints::wallclock::run(&files);
    assert_eq!(found.len(), 2, "{found:?}");
    assert!(
        found.iter().all(|f| f.message.contains("publish")),
        "{found:?}"
    );
}

#[test]
fn wallclock_reports_stale_registry() {
    // A registry function that disappears must fail loudly, not silently
    // check nothing.
    let mut files = vec![fx(DISPATCH, "pub fn process_request() {}\n")];
    files.extend(wallclock_rest());
    let found = lints::wallclock::run(&files);
    assert!(
        found.iter().any(|f| f.message.contains("not found")),
        "{found:?}"
    );
}

// ---- lock-across-send --------------------------------------------------

#[test]
fn lock_across_send_triggers() {
    let files = [fx(
        SERVER,
        include_str!("../fixtures/lock_across_send/trigger.rs"),
    )];
    let found = lints::lock_across_send::run(&files);
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].message.contains("guard"), "{found:?}");
}

#[test]
fn lock_across_send_stays_quiet() {
    let files = [fx(
        SERVER,
        include_str!("../fixtures/lock_across_send/clean.rs"),
    )];
    assert_eq!(lints::lock_across_send::run(&files), vec![]);
}

// ---- tick-arith --------------------------------------------------------

#[test]
fn tick_arith_triggers() {
    let files = [fx(
        "crates/af-time/src/fixture.rs",
        include_str!("../fixtures/tick_arith/trigger.rs"),
    )];
    let found = lints::tick_arith::run(&files);
    assert_eq!(found.len(), 3, "+, reversed + and `as`: {found:?}");
}

#[test]
fn tick_arith_stays_quiet() {
    let files = [fx(
        "crates/af-time/src/fixture.rs",
        include_str!("../fixtures/tick_arith/clean.rs"),
    )];
    assert_eq!(lints::tick_arith::run(&files), vec![]);
}

// ---- unsafe-audit ------------------------------------------------------

#[test]
fn unsafe_audit_triggers_on_ungated_crate_root() {
    let files = [fx(
        "crates/af-fake/src/lib.rs",
        include_str!("../fixtures/unsafe_audit/trigger.rs"),
    )];
    let found = lints::unsafe_audit::run(&files);
    assert_eq!(found.len(), 1, "missing crate gate: {found:?}");
    assert!(found[0].message.contains("forbid"), "{found:?}");
    // The unaudited unsafe block in the same file is unsafe-blocks'
    // concern, not unsafe-audit's.
    let blocks = lints::unsafe_blocks::run(&files);
    assert_eq!(blocks.len(), 1, "{blocks:?}");
    assert!(blocks[0].message.contains("SAFETY"), "{blocks:?}");
}

#[test]
fn unsafe_audit_stays_quiet() {
    // `deny` + an audited unsafe site: the crate genuinely needs unsafe,
    // so the revocable gate is the right one.
    let files = [fx(
        "crates/af-fake/src/lib.rs",
        include_str!("../fixtures/unsafe_audit/clean.rs"),
    )];
    assert_eq!(lints::unsafe_audit::run(&files), vec![]);
}

#[test]
fn unsafe_audit_tightens_deny_to_forbid_when_no_unsafe() {
    let files = [fx(
        "crates/af-fake/src/lib.rs",
        include_str!("../fixtures/unsafe_audit/deny_no_unsafe.rs"),
    )];
    let found = lints::unsafe_audit::run(&files);
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].message.contains("forbid"), "{found:?}");
}

#[test]
fn unsafe_audit_accepts_forbid_on_zero_unsafe_crate() {
    let files = [fx(
        "crates/af-fake/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn plain(x: u32) -> u32 { x }\n",
    )];
    assert_eq!(lints::unsafe_audit::run(&files), vec![]);
}

// ---- unsafe-blocks -----------------------------------------------------

#[test]
fn unsafe_blocks_triggers() {
    let files = [fx(SERVER, include_str!("../fixtures/unsafe_blocks/trigger.rs"))];
    let found = lints::unsafe_blocks::run(&files);
    assert_eq!(found.len(), 2, "unsafe block + unsafe fn: {found:?}");
    assert!(found.iter().any(|f| f.message.contains("unsafe block")));
    assert!(found.iter().any(|f| f.message.contains("unsafe fn")));
}

#[test]
fn unsafe_blocks_stays_quiet() {
    let files = [fx(SERVER, include_str!("../fixtures/unsafe_blocks/clean.rs"))];
    assert_eq!(lints::unsafe_blocks::run(&files), vec![]);
}

#[test]
fn unsafe_blocks_flags_dead_allow() {
    let files = [fx(
        SERVER,
        include_str!("../fixtures/unsafe_blocks/dead_allow.rs"),
    )];
    let found = lints::unsafe_blocks::run(&files);
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].message.contains("no unsafe site"), "{found:?}");
}

#[test]
fn unsafe_blocks_narrows_module_wide_allow() {
    let files = [fx(SERVER, include_str!("../fixtures/unsafe_blocks/narrow.rs"))];
    let found = lints::unsafe_blocks::run(&files);
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].message.contains("narrow"), "{found:?}");
}

#[test]
fn unsafe_blocks_triggers_on_unaudited_simd_module() {
    // A SIMD kernel module shipping an unaudited `#[target_feature]`
    // declaration and an unaudited intrinsic call site.
    let files = [fx(
        "crates/af-fake/src/simd.rs",
        include_str!("../fixtures/unsafe_audit/simd_trigger.rs"),
    )];
    let found = lints::unsafe_blocks::run(&files);
    assert_eq!(found.len(), 2, "unsafe fn decl + call site: {found:?}");
    assert!(found.iter().all(|f| f.lint == "unsafe-blocks"));
}

#[test]
fn unsafe_blocks_accepts_audited_simd_module() {
    // The shape the real af-dsp SIMD modules use — module allow earned by
    // two sites, SAFETY contract on the `unsafe fn`, SAFETY audit on the
    // call site — survives the full pipeline.
    let files = [fx(
        "crates/af-fake/src/simd.rs",
        include_str!("../fixtures/unsafe_audit/simd_clean.rs"),
    )];
    let found = analyze_files(&files);
    assert!(
        found.iter().all(|f| f.lint != "unsafe-blocks"
            && f.lint != "unsafe-audit"
            && f.lint != "allow-marker"),
        "{found:?}"
    );
}

#[test]
fn unsafe_blocks_triggers_on_unaudited_syscall_shim() {
    // A raw-syscall shim shipping an unaudited wrapper declaration and an
    // unaudited wrapper call site.
    let files = [fx(
        "crates/af-server/src/reactor/sys.rs",
        include_str!("../fixtures/unsafe_audit/syscall_trigger.rs"),
    )];
    let found = lints::unsafe_blocks::run(&files);
    assert_eq!(found.len(), 2, "unsafe fn decl + call site: {found:?}");
    assert!(found.iter().all(|f| f.lint == "unsafe-blocks"));
}

#[test]
fn unsafe_blocks_accepts_audited_syscall_shim() {
    // The shape the real reactor syscall shim uses — module allow earned
    // by three sites, SAFETY contract on `unsafe fn syscall5`, audits on
    // the asm block and every wrapper call — survives the full pipeline.
    let files = [fx(
        "crates/af-server/src/reactor/sys.rs",
        include_str!("../fixtures/unsafe_audit/syscall_clean.rs"),
    )];
    let found = analyze_files(&files);
    assert!(
        found.iter().all(|f| f.lint != "unsafe-blocks"
            && f.lint != "unsafe-audit"
            && f.lint != "allow-marker"),
        "{found:?}"
    );
}

// ---- lock-order --------------------------------------------------------

#[test]
fn lock_order_reports_inversion_with_both_sites() {
    let files = [fx(SERVER, include_str!("../fixtures/lock_order/trigger.rs"))];
    let found = run_graph_lint(&files, lints::lock_order::run);
    assert_eq!(found.len(), 1, "{found:?}");
    let msg = &found[0].message;
    // Both legs of the inversion, each naming its acquisition site.
    assert!(msg.contains("`alpha`") && msg.contains("`beta`"), "{msg}");
    assert!(msg.contains("in `take_both`"), "{msg}");
    assert!(msg.contains("in `take_reversed`"), "{msg}");
    assert!(msg.matches("held from").count() >= 2, "{msg}");
    assert!(msg.matches(&format!("{SERVER}:")).count() >= 4, "{msg}");
}

#[test]
fn lock_order_propagates_held_guards_through_calls() {
    // `hold_alpha` orders alpha before beta only via its `grab_beta`
    // call; the cycle against `take_reversed` must still be found and the
    // beta side attributed to `grab_beta`'s acquisition site.
    let files = [fx(
        SERVER,
        include_str!("../fixtures/lock_order/call_trigger.rs"),
    )];
    let found = run_graph_lint(&files, lints::lock_order::run);
    assert_eq!(found.len(), 1, "{found:?}");
    let msg = &found[0].message;
    assert!(msg.contains("in `grab_beta`"), "{msg}");
    assert!(msg.contains("in `take_reversed`"), "{msg}");
}

#[test]
fn lock_order_stays_quiet_on_global_order() {
    let files = [fx(SERVER, include_str!("../fixtures/lock_order/clean.rs"))];
    assert_eq!(run_graph_lint(&files, lints::lock_order::run), vec![]);
}

// ---- blocking-in-reactor -----------------------------------------------

/// The registry-complete hot-path tree shared by the reachability lints.
fn reach_tree(reactor: &str, fec: &str) -> [SourceFile; 6] {
    [
        fx(REACTOR, reactor),
        fx(WORKER, include_str!("../fixtures/reach/worker_clean.rs")),
        fx(DISPATCH, include_str!("../fixtures/reach/dispatch_clean.rs")),
        fx(FEC, fec),
        fx(JITTER, include_str!("../fixtures/reach/jitter_clean.rs")),
        fx(
            BROADCAST,
            include_str!("../fixtures/reach/broadcast_clean.rs"),
        ),
    ]
}

#[test]
fn blocking_in_reactor_triggers_through_call_graph() {
    // The blocking `.recv()` sits two calls below the `drive_read` root;
    // the finding must carry the path it was reached through.
    let files = reach_tree(
        include_str!("../fixtures/reach/reactor_trigger.rs"),
        include_str!("../fixtures/reach/fec_clean.rs"),
    );
    let found = run_graph_lint(&files, lints::blocking_in_reactor::run);
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].message.contains(".recv()"), "{found:?}");
    assert!(
        found[0].message.contains("drive_read -> stall"),
        "{found:?}"
    );
}

#[test]
fn blocking_in_reactor_stays_quiet() {
    let files = reach_tree(
        include_str!("../fixtures/reach/reactor_clean.rs"),
        include_str!("../fixtures/reach/fec_clean.rs"),
    );
    assert_eq!(
        run_graph_lint(&files, lints::blocking_in_reactor::run),
        vec![]
    );
}

#[test]
fn blocking_in_reactor_reports_stale_registry() {
    // A renamed root must fail loudly, not silently drop out of coverage.
    let mut files = reach_tree(
        include_str!("../fixtures/reach/reactor_clean.rs"),
        include_str!("../fixtures/reach/fec_clean.rs"),
    );
    files[0] = fx(REACTOR, "fn renamed_handler() {}\n");
    let found = run_graph_lint(&files, lints::blocking_in_reactor::run);
    assert!(
        found
            .iter()
            .any(|f| f.message.contains("handle_wake") && f.message.contains("not found")),
        "{found:?}"
    );
}

// ---- alloc -------------------------------------------------------------

#[test]
fn alloc_triggers_through_call_graph() {
    // The `.to_vec()` sits in a helper below the `encode` root.
    let files = reach_tree(
        include_str!("../fixtures/reach/reactor_clean.rs"),
        include_str!("../fixtures/reach/fec_trigger.rs"),
    );
    let found = run_graph_lint(&files, lints::alloc_hot::run);
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].message.contains(".to_vec()"), "{found:?}");
    assert!(found[0].message.contains("encode -> copy_out"), "{found:?}");
}

#[test]
fn alloc_barriers_cut_the_control_plane() {
    // The clean tree allocates plenty behind its barriers:
    // `process_request` (reached from the `drain_queue` root) uses
    // `format!` and `dispatch` clones; FEC's `try_reconstruct` (reached
    // from `decode`) builds its matrices with `Vec::new` + `format!`; the
    // reactor's `register_conn` boxes per-connection state and its
    // `start_stream` (reached from the `read_bcast` root) formats the
    // one-shot broadcast response head.  None of it may be reported.
    let files = reach_tree(
        include_str!("../fixtures/reach/reactor_clean.rs"),
        include_str!("../fixtures/reach/fec_clean.rs"),
    );
    assert_eq!(run_graph_lint(&files, lints::alloc_hot::run), vec![]);
}

#[test]
fn alloc_triggers_in_broadcast_seal() {
    // A defensive `.to_vec()` in a helper below the `publish` root is a
    // per-chunk allocation on the encode-once path; the lint must reach
    // it through the call graph and report the path.
    let mut files = reach_tree(
        include_str!("../fixtures/reach/reactor_clean.rs"),
        include_str!("../fixtures/reach/fec_clean.rs"),
    );
    files[5] = fx(
        BROADCAST,
        include_str!("../fixtures/reach/broadcast_trigger.rs"),
    );
    let found = run_graph_lint(&files, lints::alloc_hot::run);
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].message.contains(".to_vec()"), "{found:?}");
    assert!(found[0].message.contains("publish -> seal"), "{found:?}");
}

// ---- opcode-tables -----------------------------------------------------

const SPEC: &str = "crates/af-proto/src/spec.rs";
const OPCODE: &str = "crates/af-proto/src/opcode.rs";
const REQUEST: &str = "crates/af-proto/src/request.rs";
const EVENT: &str = "crates/af-proto/src/event.rs";

fn opcode_table_files(spec: &str, request: &str, dispatch: &str) -> [SourceFile; 5] {
    [
        fx(SPEC, spec),
        fx(OPCODE, include_str!("../fixtures/opcode_tables/opcode_clean.rs")),
        fx(REQUEST, request),
        fx(EVENT, include_str!("../fixtures/opcode_tables/event_clean.rs")),
        fx(DISPATCH, dispatch),
    ]
}

#[test]
fn opcode_tables_stay_quiet_when_consistent() {
    let files = opcode_table_files(
        include_str!("../fixtures/opcode_tables/spec_clean.rs"),
        include_str!("../fixtures/opcode_tables/request_clean.rs"),
        include_str!("../fixtures/opcode_tables/dispatch_clean.rs"),
    );
    assert_eq!(lints::opcode_tables::run(&files), vec![]);
}

#[test]
fn opcode_tables_catch_wire_gap_and_stale_count() {
    let files = opcode_table_files(
        include_str!("../fixtures/opcode_tables/spec_trigger.rs"),
        include_str!("../fixtures/opcode_tables/request_clean.rs"),
        include_str!("../fixtures/opcode_tables/dispatch_clean.rs"),
    );
    let found = lints::opcode_tables::run(&files);
    assert!(
        found.iter().any(|f| f.message.contains("dense")),
        "wire gap: {found:?}"
    );
    assert!(
        found.iter().any(|f| f.message.contains("REQUEST_COUNT")),
        "stale count: {found:?}"
    );
}

#[test]
fn opcode_tables_catch_missing_encode_arm() {
    let files = opcode_table_files(
        include_str!("../fixtures/opcode_tables/spec_clean.rs"),
        include_str!("../fixtures/opcode_tables/request_trigger.rs"),
        include_str!("../fixtures/opcode_tables/dispatch_clean.rs"),
    );
    let found = lints::opcode_tables::run(&files);
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].file, REQUEST);
    assert!(found[0].message.contains("GetTime"), "{found:?}");
    assert!(found[0].message.contains("encode_payload"), "{found:?}");
}

#[test]
fn opcode_tables_catch_missing_dispatch_arm() {
    let files = opcode_table_files(
        include_str!("../fixtures/opcode_tables/spec_clean.rs"),
        include_str!("../fixtures/opcode_tables/request_clean.rs"),
        include_str!("../fixtures/opcode_tables/dispatch_trigger.rs"),
    );
    let found = lints::opcode_tables::run(&files);
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].file, DISPATCH);
    assert!(found[0].message.contains("GetTime"), "{found:?}");
}

#[test]
fn opcode_tables_report_missing_spec_file() {
    let found = lints::opcode_tables::run(&[]);
    assert!(!found.is_empty());
    assert!(found[0].file.contains("spec.rs"));
}

// ---- allow-marker ------------------------------------------------------

#[test]
fn allow_marker_flags_unknown_lint_and_missing_reason() {
    let files = [fx(SERVER, include_str!("../fixtures/allow_marker/trigger.rs"))];
    let found = analyze_files(&files);
    let markers: Vec<_> = found.iter().filter(|f| f.lint == "allow-marker").collect();
    assert_eq!(markers.len(), 2, "{markers:?}");
    assert!(markers.iter().any(|f| f.message.contains("no-such-lint")));
    assert!(markers.iter().any(|f| f.message.contains("justification")));
}

#[test]
fn allow_marker_suppresses_justified_finding() {
    let files = [fx(SERVER, include_str!("../fixtures/allow_marker/clean.rs"))];
    let found = analyze_files(&files);
    // The expect() is suppressed by the marker and the marker itself is
    // valid; everything left is other lints complaining about the files
    // this synthetic tree does not contain.
    assert!(
        found
            .iter()
            .all(|f| f.lint != "no-panics" && f.lint != "allow-marker"),
        "{found:?}"
    );
}

// ---- the real tree -----------------------------------------------------

#[test]
fn workspace_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root");
    let findings = af_analyze::analyze_root(root).expect("walk workspace");
    assert!(
        findings.is_empty(),
        "the tree must satisfy its own invariants:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
