//! The detached LineServer device behind a real UDP link (§7.4.3).
//!
//! An `Als`-shaped server drives LineServer firmware over the six-packet
//! private protocol; clients talk ordinary AudioFile to the server and
//! never see the difference — network transparency twice over.

use audiofile::client::{AcAttributes, AcMask, AudioConn};
use audiofile::device::lineserver::{LineServerFirmware, LineServerLink, LsFunction, LsPacket};
use audiofile::device::{CaptureSink, SystemClock, ToneSource};
use audiofile::time::ATime;
use std::sync::atomic::Ordering;
use std::sync::Arc;

#[test]
fn als_server_plays_and_records_through_udp() {
    // LineServer firmware with a captured speaker and a tone microphone,
    // on a real-time clock (the Als path estimates time from replies).
    let clock = Arc::new(SystemClock::new(8000));
    let (sink, speaker) = CaptureSink::new(1 << 22);
    let (fw, addr) = LineServerFirmware::boot(
        clock,
        Box::new(sink),
        Box::new(ToneSource::ulaw(440.0, 8000.0, 10_000.0)),
    )
    .unwrap();
    let stop = fw.stop_handle();
    let fw_thread = std::thread::spawn(move || fw.run());

    let mut builder = audiofile::server::ServerBuilder::new()
        .listen_tcp("127.0.0.1:0".parse().unwrap())
        .update_interval(std::time::Duration::from_millis(50));
    builder.add_lineserver(addr).unwrap();
    let server = builder.spawn().unwrap();

    let mut conn = AudioConn::open(&server.tcp_addr().unwrap().to_string()).unwrap();
    assert_eq!(conn.devices().len(), 1);
    assert_eq!(
        conn.devices()[0].kind,
        audiofile::proto::DeviceKind::LineServer
    );

    let ac = conn
        .create_ac(0, AcMask::default(), &AcAttributes::default())
        .unwrap();

    // Time flows (from UDP reply estimates).
    let t0 = conn.get_time(0).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(120));
    let t1 = conn.get_time(0).unwrap();
    let advanced = t1 - t0;
    assert!(
        (400..=8000).contains(&advanced),
        "time advanced {advanced} ticks in 120 ms"
    );

    // Play a marker a bit ahead; wait for real time to pass it.
    let t = conn.get_time(0).unwrap();
    conn.play_samples(&ac, t + 1200u32, &[0x44u8; 800]).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(400));
    {
        let cap = speaker.lock();
        let marked = cap.iter().filter(|&&b| b == 0x44).count();
        assert!(
            (700..=900).contains(&marked),
            "speaker heard {marked} marker bytes"
        );
    }

    // Record the microphone tone.
    let t = conn.get_time(0).unwrap();
    conn.record_samples(&ac, t, 0, false).unwrap(); // Arm.
    std::thread::sleep(std::time::Duration::from_millis(300));
    let (_, data) = conn.record_samples(&ac, t + 400u32, 1200, true).unwrap();
    assert_eq!(data.len(), 1200);
    let dbm = audiofile::dsp::power::power_dbm_ulaw(&data);
    assert!(dbm > -20.0, "recorded tone at {dbm} dBm");

    server.shutdown();
    stop.store(true, Ordering::Relaxed);
    fw_thread.join().unwrap();
}

#[test]
fn lineserver_register_requests_retried() {
    // Register reads/writes go through with retries even while audio flows.
    let clock = Arc::new(SystemClock::new(8000));
    let (fw, addr) = LineServerFirmware::boot(
        clock,
        Box::new(audiofile::device::NullSink),
        Box::new(audiofile::device::SilenceSource::new(0xFF)),
    )
    .unwrap();
    let stop = fw.stop_handle();
    let fw_thread = std::thread::spawn(move || fw.run());

    let mut link = LineServerLink::connect(addr).unwrap();
    let reply = link
        .transact(
            LsPacket {
                seq: 0,
                time: ATime::ZERO,
                function: LsFunction::WriteReg,
                param: audiofile::device::lineserver::LS_REG_OUTPUT_GAIN,
                aux: 17,
                data: vec![],
            },
            3,
        )
        .unwrap();
    assert_eq!(reply.function, LsFunction::WriteReg);
    let reply = link
        .transact(
            LsPacket {
                seq: 0,
                time: ATime::ZERO,
                function: LsFunction::ReadReg,
                param: audiofile::device::lineserver::LS_REG_OUTPUT_GAIN,
                aux: 0,
                data: vec![],
            },
            3,
        )
        .unwrap();
    assert_eq!(reply.aux, 17);

    stop.store(true, Ordering::Relaxed);
    fw_thread.join().unwrap();
}
