//! LineServers across a simulated lossy multi-hop WAN (§7.4.3, hardened).
//!
//! The paper ran its LineServer on a quiet Ethernet segment; these tests
//! run it behind an [`af_chaos::Router`] — two hops of Gilbert–Elliott
//! burst loss, delay jitter, and NAT-style address rewriting — and require
//! the server to keep playing and recording: FEC recovers lost record
//! replies, the adaptive jitter buffer conceals what parity cannot bring
//! back, and the protocol layer sees zero errors throughout.

use audiofile::chaos::{GilbertElliott, HopPlan, Router};
use audiofile::client::{AcAttributes, AcMask, AudioConn};
use audiofile::device::lineserver::LineServerFirmware;
use audiofile::device::{CaptureSink, SystemClock, ToneSource};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Two hops with bursty loss averaging ~`avg_loss` each, mild jitter.
fn lossy_hops(avg_loss: f64) -> Vec<HopPlan> {
    vec![
        HopPlan::new()
            .ge(GilbertElliott::bursty(avg_loss, 2.0))
            .base_delay(Duration::from_millis(2))
            .jitter(Duration::from_millis(3)),
        HopPlan::new()
            .ge(GilbertElliott::bursty(avg_loss / 2.0, 1.5))
            .jitter(Duration::from_millis(2)),
    ]
}

#[test]
fn playback_survives_multi_hop_burst_loss() {
    // Two LineServers, each behind its own two-hop lossy router.
    let mut firmwares = Vec::new();
    let mut routers = Vec::new();
    let mut speakers = Vec::new();
    for i in 0..2 {
        let clock = Arc::new(SystemClock::new(8000));
        let (sink, speaker) = CaptureSink::new(1 << 22);
        let (fw, addr) = LineServerFirmware::boot(
            clock,
            Box::new(sink),
            Box::new(ToneSource::ulaw(350.0 + 90.0 * i as f64, 8000.0, 10_000.0)),
        )
        .unwrap();
        let stop = fw.stop_handle();
        let thread = std::thread::spawn(move || fw.run());
        firmwares.push((stop, thread));
        speakers.push(speaker);
        routers.push(Router::spawn(addr, lossy_hops(0.12), 0xBAD_1A7E5 + i as u64).unwrap());
    }

    let mut builder = audiofile::server::ServerBuilder::new()
        .listen_tcp("127.0.0.1:0".parse().unwrap())
        .update_interval(Duration::from_millis(50));
    for router in &routers {
        builder.add_lineserver(router.addr()).unwrap();
    }
    let server = builder.spawn().unwrap();
    let stats = server.stats();

    let mut conn = AudioConn::open(&server.tcp_addr().unwrap().to_string()).unwrap();
    assert_eq!(conn.devices().len(), 2);

    // Play a marker burst on device 0; the one-way FEC-framed play path
    // must land most of it on the far speaker despite the loss.
    let ac = conn
        .create_ac(0, AcMask::default(), &AcAttributes::default())
        .unwrap();
    let t = conn.get_time(0).unwrap();
    conn.play_samples(&ac, t + 1600u32, &[0x44u8; 1600]).unwrap();

    // Record the tone from device 1 through the jitter buffer meanwhile.
    let ac1 = conn
        .create_ac(1, AcMask::default(), &AcAttributes::default())
        .unwrap();
    let t1 = conn.get_time(1).unwrap();
    conn.record_samples(&ac1, t1, 0, false).unwrap(); // Arm.
    std::thread::sleep(Duration::from_millis(900));
    let (_, data) = conn.record_samples(&ac1, t1 + 1600u32, 2400, true).unwrap();
    assert_eq!(data.len(), 2400);
    let dbm = audiofile::dsp::power::power_dbm_ulaw(&data);
    assert!(dbm > -30.0, "recorded tone through loss at {dbm} dBm");

    {
        let cap = speakers[0].lock();
        let marked = cap.iter().filter(|&&b| b == 0x44).count();
        assert!(
            marked >= 800,
            "speaker heard {marked}/1600 marker bytes through burst loss"
        );
    }

    // Zero protocol errors: loss must degrade audio, never the protocol.
    assert_eq!(stats.protocol_errors.load(Ordering::Relaxed), 0);

    // The links saw real WAN weather and the defenses engaged: parity
    // brought lost record replies back.
    let links = stats.link_snapshots();
    assert_eq!(links.len(), 2);
    let recovered: u64 = links.iter().map(|l| l.fec_recovered).sum();
    assert!(recovered > 0, "expected FEC recoveries, got {links:?}");

    // The routers really dropped traffic on both paths.
    for router in &routers {
        let dropped: u64 = router.hop_stats().iter().map(|h| h.dropped_loss).sum();
        assert!(dropped > 0, "router injected no loss");
    }

    server.shutdown();
    for router in &mut routers {
        router.stop();
    }
    for (stop, thread) in firmwares {
        stop.store(true, Ordering::Relaxed);
        thread.join().unwrap();
    }
}

#[test]
fn link_health_counters_are_exported() {
    // A clean (lossless) router still exercises the full WAN stack; the
    // per-link counters must be registered and the gauges live.
    let clock = Arc::new(SystemClock::new(8000));
    let (sink, _speaker) = CaptureSink::new(1 << 20);
    let (fw, addr) = LineServerFirmware::boot(
        clock,
        Box::new(sink),
        Box::new(ToneSource::ulaw(440.0, 8000.0, 10_000.0)),
    )
    .unwrap();
    let stop = fw.stop_handle();
    let thread = std::thread::spawn(move || fw.run());
    let mut router = Router::spawn(addr, vec![HopPlan::new()], 7).unwrap();

    let mut builder = audiofile::server::ServerBuilder::new()
        .listen_tcp("127.0.0.1:0".parse().unwrap())
        .update_interval(Duration::from_millis(50));
    builder.add_lineserver(router.addr()).unwrap();
    let server = builder.spawn().unwrap();
    let stats = server.stats();

    let mut conn = AudioConn::open(&server.tcp_addr().unwrap().to_string()).unwrap();
    let ac = conn
        .create_ac(0, AcMask::default(), &AcAttributes::default())
        .unwrap();
    let t = conn.get_time(0).unwrap();
    conn.record_samples(&ac, t, 0, false).unwrap(); // Arm the record path.
    std::thread::sleep(Duration::from_millis(400));
    let (_, data) = conn.record_samples(&ac, t + 400u32, 800, true).unwrap();
    assert_eq!(data.len(), 800);

    let links = stats.link_snapshots();
    assert_eq!(links.len(), 1, "one registered link");
    assert!(
        links[0].target_depth > 0,
        "jitter buffer target not live: {links:?}"
    );
    assert_eq!(stats.protocol_errors.load(Ordering::Relaxed), 0);

    server.shutdown();
    router.stop();
    stop.store(true, Ordering::Relaxed);
    thread.join().unwrap();
}
