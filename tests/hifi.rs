//! The high-fidelity path: 44.1 kHz 16-bit stereo devices, sample-type
//! conversion modules, and endianness of multi-byte sample data.

use audiofile::client::{AcAttributes, AcMask, AudioConn};
use audiofile::device::{CaptureSink, SilenceSource, VirtualClock};
use audiofile::dsp::Encoding;
use audiofile::server::{RunningServer, ServerBuilder, ServerHandle};
use std::sync::Arc;

struct Hifi {
    server: RunningServer,
    clock: Arc<VirtualClock>,
    speaker: audiofile::device::io::CaptureBuffer,
}

impl Hifi {
    fn new() -> Hifi {
        let clock = Arc::new(VirtualClock::new(44_100));
        let (sink, speaker) = CaptureSink::new(1 << 24);
        let mut builder = ServerBuilder::new().listen_tcp("127.0.0.1:0".parse().unwrap());
        builder.add_hifi(
            clock.clone(),
            Box::new(sink),
            Box::new(SilenceSource::new(0)),
        );
        let server = builder.spawn().unwrap();
        Hifi {
            server,
            clock,
            speaker,
        }
    }

    fn connect(&self) -> AudioConn {
        AudioConn::open(&self.server.tcp_addr().unwrap().to_string()).unwrap()
    }

    fn run(&self, handle: &ServerHandle, frames: u32) {
        let mut left = frames;
        while left > 0 {
            let n = left.min(2000);
            self.clock.advance(n);
            handle.run_update();
            left -= n;
        }
    }
}

/// Builds interleaved stereo LIN16 LE bytes: left = `l`, right = `r`.
fn stereo_frames(l: i16, r: i16, frames: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(frames * 4);
    for _ in 0..frames {
        out.extend_from_slice(&l.to_le_bytes());
        out.extend_from_slice(&r.to_le_bytes());
    }
    out
}

#[test]
fn hifi_device_attributes() {
    let fx = Hifi::new();
    let conn = fx.connect();
    let d = &conn.devices()[0];
    assert_eq!(d.play_sample_freq, 44_100);
    assert_eq!(d.play_buf_type, Encoding::Lin16);
    assert_eq!(d.play_nchannels, 2);
    assert_eq!(d.kind, audiofile::proto::DeviceKind::Hifi);
}

#[test]
fn stereo_playback_preserves_channel_identity() {
    let fx = Hifi::new();
    let handle = fx.server.handle();
    let mut conn = fx.connect();
    let ac = conn
        .create_ac(0, AcMask::default(), &AcAttributes::default())
        .unwrap();
    assert_eq!(ac.attrs.encoding, Encoding::Lin16);
    assert_eq!(ac.attrs.channels, 2);
    assert_eq!(ac.frame_bytes(), 4);

    let data = stereo_frames(1000, -2000, 500);
    conn.play_samples(&ac, audiofile::time::ATime::new(4410), &data)
        .unwrap();
    fx.run(&handle, 44_100 / 4);

    let cap = fx.speaker.lock();
    // Frame 4410 sits at byte 4410*4.
    let off = 4410 * 4;
    let l = i16::from_le_bytes([cap[off], cap[off + 1]]);
    let r = i16::from_le_bytes([cap[off + 2], cap[off + 3]]);
    assert_eq!(l, 1000);
    assert_eq!(r, -2000);
}

#[test]
fn stereo_mixing_is_per_channel() {
    let fx = Hifi::new();
    let handle = fx.server.handle();
    let mut c1 = fx.connect();
    let mut c2 = fx.connect();
    let ac1 = c1
        .create_ac(0, AcMask::default(), &AcAttributes::default())
        .unwrap();
    let ac2 = c2
        .create_ac(0, AcMask::default(), &AcAttributes::default())
        .unwrap();

    c1.play_samples(
        &ac1,
        audiofile::time::ATime::new(8000),
        &stereo_frames(100, 0, 200),
    )
    .unwrap();
    c2.play_samples(
        &ac2,
        audiofile::time::ATime::new(8000),
        &stereo_frames(0, 70, 200),
    )
    .unwrap();
    c1.sync().unwrap();
    c2.sync().unwrap();
    fx.run(&handle, 16_000);

    let cap = fx.speaker.lock();
    let off = 8050 * 4;
    let l = i16::from_le_bytes([cap[off], cap[off + 1]]);
    let r = i16::from_le_bytes([cap[off + 2], cap[off + 3]]);
    assert_eq!((l, r), (100, 70));
}

#[test]
fn big_endian_sample_data_converted() {
    // The AC declares big-endian data; the server swaps it (§7.3.1).
    let fx = Hifi::new();
    let handle = fx.server.handle();
    let mut conn = fx.connect();
    let attrs = AcAttributes {
        big_endian_data: true,
        ..AcAttributes::default()
    };
    let ac = conn.create_ac(0, AcMask::ENDIAN, &attrs).unwrap();

    // 0x1234 left, 0x0042 right, big-endian on the wire.
    let mut data = Vec::new();
    for _ in 0..100 {
        data.extend_from_slice(&0x1234i16.to_be_bytes());
        data.extend_from_slice(&0x0042i16.to_be_bytes());
    }
    conn.play_samples(&ac, audiofile::time::ATime::new(4410), &data)
        .unwrap();
    fx.run(&handle, 11_025);
    let cap = fx.speaker.lock();
    let off = 4410 * 4;
    assert_eq!(i16::from_le_bytes([cap[off], cap[off + 1]]), 0x1234);
    assert_eq!(i16::from_le_bytes([cap[off + 2], cap[off + 3]]), 0x0042);
}

#[test]
fn conversion_module_ulaw_client_on_lin16_device() {
    // A telephone-quality client on a HiFi device: the per-AC conversion
    // module translates µ-law to the device's native LIN16 (§2.2).  The
    // data plays at the device rate (no resampling in the server), which
    // is fine for this test's amplitude check.
    let fx = Hifi::new();
    let handle = fx.server.handle();
    let mut conn = fx.connect();
    let attrs = AcAttributes {
        encoding: Encoding::Mu255,
        channels: 2,
        ..AcAttributes::default()
    };
    let ac = conn
        .create_ac(0, AcMask::ENCODING | AcMask::CHANNELS, &attrs)
        .unwrap();
    assert_eq!(ac.frame_bytes(), 2); // Two µ-law bytes per stereo frame.

    let loud = audiofile::dsp::g711::linear_to_ulaw(8000);
    let quiet = audiofile::dsp::g711::linear_to_ulaw(-400);
    let mut data = Vec::new();
    for _ in 0..300 {
        data.push(loud); // Left.
        data.push(quiet); // Right.
    }
    conn.play_samples(&ac, audiofile::time::ATime::new(4410), &data)
        .unwrap();
    fx.run(&handle, 11_025);

    let cap = fx.speaker.lock();
    let off = 4500 * 4;
    let l = i16::from_le_bytes([cap[off], cap[off + 1]]);
    let r = i16::from_le_bytes([cap[off + 2], cap[off + 3]]);
    assert!((i32::from(l) - 8000).abs() < 300, "left {l}");
    assert!((i32::from(r) + 400).abs() < 40, "right {r}");
}

#[test]
fn adpcm_client_on_codec_device() {
    // An ADPCM32 client: compressed data expands through the conversion
    // module into the µ-law codec buffer.
    let clock = Arc::new(VirtualClock::new(8000));
    let (sink, speaker) = CaptureSink::new(1 << 22);
    let mut builder = ServerBuilder::new().listen_tcp("127.0.0.1:0".parse().unwrap());
    builder.add_codec(
        clock.clone(),
        Box::new(sink),
        Box::new(SilenceSource::new(0xFF)),
    );
    let server = builder.spawn().unwrap();
    let handle = server.handle();
    let mut conn = AudioConn::open(&server.tcp_addr().unwrap().to_string()).unwrap();
    let attrs = AcAttributes {
        encoding: Encoding::Adpcm32,
        ..AcAttributes::default()
    };
    let ac = conn.create_ac(0, AcMask::ENCODING, &attrs).unwrap();

    // Encode a 440 Hz tone as ADPCM client-side.
    let pcm: Vec<i16> = (0..4000)
        .map(|i| ((std::f64::consts::TAU * 440.0 * i as f64 / 8000.0).sin() * 12_000.0) as i16)
        .collect();
    let mut st = audiofile::dsp::adpcm::AdpcmState::new();
    let compressed = audiofile::dsp::adpcm::encode(&mut st, &pcm);
    assert_eq!(compressed.len(), 2000); // 4 bits per sample.

    conn.play_samples(&ac, audiofile::time::ATime::new(800), &compressed)
        .unwrap();
    for _ in 0..8 {
        clock.advance(800);
        handle.run_update();
    }
    let cap = speaker.lock();
    let heard = &cap[1000..4000];
    let dbm = audiofile::dsp::power::power_dbm_ulaw(heard);
    assert!(dbm > -12.0, "ADPCM tone arrived at {dbm} dBm");
    server.shutdown();
}

#[test]
fn mono_views_of_stereo_device() {
    // §7.4.1's left/right devices: mono plays land in one lane of the
    // stereo buffers, mono records read one lane back.
    let clock = Arc::new(VirtualClock::new(44_100));
    let (sink, speaker) = CaptureSink::new(1 << 24);
    let mut builder = ServerBuilder::new().listen_tcp("127.0.0.1:0".parse().unwrap());
    let (stereo, left, right) = builder.add_hifi_with_mono(
        clock.clone(),
        Box::new(sink),
        Box::new(SilenceSource::new(0)),
    );
    let server = builder.spawn().unwrap();
    let handle = server.handle();
    let mut conn = AudioConn::open(&server.tcp_addr().unwrap().to_string()).unwrap();

    // Three devices advertised: stereo plus two one-channel views.
    assert_eq!(conn.devices().len(), 3);
    assert_eq!(conn.devices()[left].play_nchannels, 1);
    assert_eq!(
        conn.devices()[right].kind,
        audiofile::proto::DeviceKind::HifiRight
    );
    assert_eq!(conn.devices()[left].play_buf_type, Encoding::Lin16);

    // Device time is shared with the parent.
    let t_stereo = conn.get_time(stereo as u8).unwrap();
    let t_left = conn.get_time(left as u8).unwrap();
    assert!((t_left - t_stereo).abs() < 10);

    let ac_l = conn
        .create_ac(left as u8, AcMask::default(), &AcAttributes::default())
        .unwrap();
    let ac_r = conn
        .create_ac(right as u8, AcMask::default(), &AcAttributes::default())
        .unwrap();
    assert_eq!(ac_l.attrs.channels, 1);
    assert_eq!(ac_l.frame_bytes(), 2);

    // Left client plays 5000s, right client plays -7000s, same interval.
    let left_data: Vec<u8> = std::iter::repeat_n(5000i16.to_le_bytes(), 300)
        .flatten()
        .collect();
    let right_data: Vec<u8> = std::iter::repeat_n((-7000i16).to_le_bytes(), 300)
        .flatten()
        .collect();
    conn.play_samples(&ac_l, audiofile::time::ATime::new(8000), &left_data)
        .unwrap();
    conn.play_samples(&ac_r, audiofile::time::ATime::new(8000), &right_data)
        .unwrap();
    conn.sync().unwrap();
    for _ in 0..8 {
        clock.advance(2000);
        handle.run_update();
    }

    let cap = speaker.lock();
    let off = 8100 * 4;
    let l = i16::from_le_bytes([cap[off], cap[off + 1]]);
    let r = i16::from_le_bytes([cap[off + 2], cap[off + 3]]);
    assert_eq!((l, r), (5000, -7000), "lanes crossed or lost");
    drop(cap);

    // Mono mixing within a lane: play the left lane again, amplitudes add.
    let more: Vec<u8> = std::iter::repeat_n(1000i16.to_le_bytes(), 300)
        .flatten()
        .collect();
    conn.play_samples(&ac_l, audiofile::time::ATime::new(30_000), &left_data)
        .unwrap();
    conn.play_samples(&ac_l, audiofile::time::ATime::new(30_000), &more)
        .unwrap();
    conn.sync().unwrap();
    for _ in 0..16 {
        clock.advance(2000);
        handle.run_update();
    }
    let cap = speaker.lock();
    let off = 30_100 * 4;
    let l = i16::from_le_bytes([cap[off], cap[off + 1]]);
    let r = i16::from_le_bytes([cap[off + 2], cap[off + 3]]);
    assert_eq!(l, 6000, "left lane did not mix");
    assert_eq!(r, 0, "right lane disturbed by left-lane mixing");
    server.shutdown();
}

#[test]
fn mono_view_record_reads_one_lane() {
    // The microphone produces a tone on both channels; a left-view record
    // returns mono data with the tone.
    let clock = Arc::new(VirtualClock::new(44_100));
    let mut builder = ServerBuilder::new().listen_tcp("127.0.0.1:0".parse().unwrap());
    let (_stereo, left, _right) = builder.add_hifi_with_mono(
        clock.clone(),
        Box::new(audiofile::device::NullSink),
        Box::new(audiofile::device::ToneSource::lin16(
            440.0, 44_100.0, 9000.0,
        )),
    );
    let server = builder.spawn().unwrap();
    let handle = server.handle();
    let mut conn = AudioConn::open(&server.tcp_addr().unwrap().to_string()).unwrap();
    let ac = conn
        .create_ac(left as u8, AcMask::default(), &AcAttributes::default())
        .unwrap();
    let t0 = conn.get_time(left as u8).unwrap();
    conn.record_samples(&ac, t0, 0, false).unwrap();
    for _ in 0..10 {
        clock.advance(2000);
        handle.run_update();
    }
    // 2000 mono frames = 4000 bytes of LIN16.
    let (_, data) = conn.record_samples(&ac, t0 + 2000u32, 4000, true).unwrap();
    assert_eq!(data.len(), 4000);
    let pcm: Vec<i16> = data
        .chunks_exact(2)
        .map(|c| i16::from_le_bytes([c[0], c[1]]))
        .collect();
    let dbm = audiofile::dsp::power::power_dbm_lin16(&pcm);
    assert!(dbm > -20.0, "mono record heard {dbm} dBm");
    server.shutdown();
}

#[test]
fn lofi_shape_exports_five_devices() {
    // "The Alofi server presents five audio devices to clients" (§7.4.1).
    let clock = Arc::new(VirtualClock::new(8000));
    let (builder, _line) = ServerBuilder::lofi(clock);
    let server = builder
        .listen_tcp("127.0.0.1:0".parse().unwrap())
        .spawn()
        .unwrap();
    let conn = AudioConn::open(&server.tcp_addr().unwrap().to_string()).unwrap();
    assert_eq!(conn.devices().len(), 5);
    use audiofile::proto::DeviceKind as K;
    let kinds: Vec<K> = conn.devices().iter().map(|d| d.kind).collect();
    assert_eq!(
        kinds,
        vec![K::Codec, K::Codec, K::Hifi, K::HifiLeft, K::HifiRight]
    );
    server.shutdown();
}

#[test]
fn device_advertises_supported_sample_types() {
    // §5.4's prioritized-list intent: the device description carries the
    // encodings its conversion modules accept.
    let fx = Hifi::new();
    let mut conn = fx.connect();
    let d = conn.devices()[0];
    assert!(d.supports(Encoding::Lin16));
    assert!(d.supports(Encoding::Mu255));
    assert!(d.supports(Encoding::Adpcm32));
    assert!(!d.supports(Encoding::Celp1016));

    // The client library fails fast on an unsupported encoding.
    let attrs = AcAttributes {
        encoding: Encoding::Celp1015,
        ..AcAttributes::default()
    };
    match conn.create_ac(0, AcMask::ENCODING, &attrs) {
        Err(audiofile::client::AfError::InvalidArgument(msg)) => {
            assert!(msg.contains("CELP1015"), "{msg}");
        }
        other => panic!("expected InvalidArgument, got {other:?}"),
    }
}

#[test]
fn record_returns_big_endian_when_asked() {
    // The AC's endian attribute governs record data too (§7.3.1).
    let clock = Arc::new(VirtualClock::new(44_100));
    let mut builder = ServerBuilder::new().listen_tcp("127.0.0.1:0".parse().unwrap());
    builder.add_hifi(
        clock.clone(),
        Box::new(audiofile::device::NullSink),
        Box::new(audiofile::device::ToneSource::lin16(
            440.0, 44_100.0, 9000.0,
        )),
    );
    let server = builder.spawn().unwrap();
    let handle = server.handle();

    let mut le = AudioConn::open(&server.tcp_addr().unwrap().to_string()).unwrap();
    let mut be = AudioConn::open(&server.tcp_addr().unwrap().to_string()).unwrap();
    let ac_le = le
        .create_ac(0, AcMask::default(), &AcAttributes::default())
        .unwrap();
    let attrs = AcAttributes {
        big_endian_data: true,
        ..AcAttributes::default()
    };
    let ac_be = be.create_ac(0, AcMask::ENDIAN, &attrs).unwrap();

    let t0 = le.get_time(0).unwrap();
    le.record_samples(&ac_le, t0, 0, false).unwrap();
    be.record_samples(&ac_be, t0, 0, false).unwrap();
    for _ in 0..5 {
        clock.advance(2000);
        handle.run_update();
    }
    // Same interval through both contexts: byte-swapped twins.
    let (_, le_data) = le.record_samples(&ac_le, t0 + 1000u32, 400, true).unwrap();
    let (_, be_data) = be.record_samples(&ac_be, t0 + 1000u32, 400, true).unwrap();
    assert_eq!(le_data.len(), be_data.len());
    let mut swapped = be_data.clone();
    for pair in swapped.chunks_exact_mut(2) {
        pair.swap(0, 1);
    }
    assert_eq!(le_data, swapped, "endian conversion mismatch on record");
    // And the data is actually a tone, not zeros.
    let pcm: Vec<i16> = le_data
        .chunks_exact(2)
        .map(|c| i16::from_le_bytes([c[0], c[1]]))
        .collect();
    assert!(audiofile::dsp::power::power_dbm_lin16(&pcm) > -20.0);
    server.shutdown();
}
