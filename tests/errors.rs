//! Failure injection: malformed requests, bad references, abrupt
//! disconnects.  A production server must shrug all of this off.

use audiofile::client::{AcAttributes, AcMask, AfError, AudioConn};
use audiofile::device::{SilenceSource, VirtualClock};
use audiofile::proto::{ByteOrder, ConnSetup, ErrorCode, Opcode, Request};
use audiofile::server::{RunningServer, ServerBuilder};
use audiofile::time::ATime;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn server() -> RunningServer {
    let clock = Arc::new(VirtualClock::new(8000));
    let mut builder = ServerBuilder::new().listen_tcp("127.0.0.1:0".parse().unwrap());
    builder.add_codec(
        clock,
        Box::new(audiofile::device::NullSink),
        Box::new(SilenceSource::new(0xFF)),
    );
    builder.spawn().unwrap()
}

fn connect(s: &RunningServer) -> AudioConn {
    AudioConn::open(&s.tcp_addr().unwrap().to_string()).unwrap()
}

fn expect_server_error<T: std::fmt::Debug>(result: Result<T, AfError>, code: ErrorCode) {
    match result {
        Err(AfError::Server(e)) => assert_eq!(e.code, code, "wrong error code"),
        other => panic!("expected {code:?}, got {other:?}"),
    }
}

#[test]
fn bad_device_references() {
    let s = server();
    let mut conn = connect(&s);
    expect_server_error(conn.get_time(99), ErrorCode::BadDevice);
    expect_server_error(conn.query_input_gain(99), ErrorCode::BadDevice);
    expect_server_error(conn.query_phone(99), ErrorCode::BadDevice);
}

#[test]
fn phone_requests_on_non_phone_device_are_bad_match() {
    let s = server();
    let mut conn = connect(&s);
    expect_server_error(conn.query_phone(0), ErrorCode::BadMatch);
}

#[test]
fn unimplemented_requests_are_reported_as_such() {
    // DialPhone is "obsolete, do not use"; KillClient "not yet implemented".
    let s = server();
    let mut conn = connect(&s);
    conn.set_synchronous(true);
    // Drive them through the raw request path via sync + async errors.
    conn.set_synchronous(false);

    let mut raw = TcpStream::connect(s.tcp_addr().unwrap()).unwrap();
    raw.write_all(&ConnSetup::new().encode()).unwrap();
    let mut skip = [0u8; 4];
    raw.read_exact(&mut skip).unwrap();
    let len = u32::from_le_bytes(skip) as usize;
    let mut body = vec![0u8; len];
    raw.read_exact(&mut body).unwrap();

    for req in [
        Request::DialPhone {
            device: 0,
            number: "5551212".into(),
        },
        Request::KillClient { resource: 7 },
    ] {
        raw.write_all(&req.encode(ByteOrder::native())).unwrap();
        let mut header = [0u8; 8];
        raw.read_exact(&mut header).unwrap();
        assert_eq!(header[0], 0, "expected an error message");
        assert_eq!(
            ErrorCode::from_wire(header[1]),
            Some(ErrorCode::BadImplementation)
        );
        let mut payload = [0u8; 8];
        raw.read_exact(&mut payload).unwrap();
    }
}

#[test]
fn unknown_opcode_gets_bad_request_error() {
    let s = server();
    let mut raw = TcpStream::connect(s.tcp_addr().unwrap()).unwrap();
    raw.write_all(&ConnSetup::new().encode()).unwrap();
    let mut skip = [0u8; 4];
    raw.read_exact(&mut skip).unwrap();
    let mut body = vec![0u8; u32::from_le_bytes(skip) as usize];
    raw.read_exact(&mut body).unwrap();

    // Length 1 word (header only), opcode 200.
    raw.write_all(&[1, 0, 200, 0]).unwrap();
    let mut header = [0u8; 8];
    raw.read_exact(&mut header).unwrap();
    assert_eq!(header[0], 0);
    assert_eq!(ErrorCode::from_wire(header[1]), Some(ErrorCode::BadRequest));
}

#[test]
fn truncated_payload_gets_bad_length() {
    let s = server();
    let mut raw = TcpStream::connect(s.tcp_addr().unwrap()).unwrap();
    raw.write_all(&ConnSetup::new().encode()).unwrap();
    let mut skip = [0u8; 4];
    raw.read_exact(&mut skip).unwrap();
    let mut body = vec![0u8; u32::from_le_bytes(skip) as usize];
    raw.read_exact(&mut body).unwrap();

    // GetTime claims only the header (no device byte payload).
    raw.write_all(&[1, 0, Opcode::GetTime.to_wire(), 0])
        .unwrap();
    let mut header = [0u8; 8];
    raw.read_exact(&mut header).unwrap();
    assert_eq!(header[0], 0);
    assert_eq!(ErrorCode::from_wire(header[1]), Some(ErrorCode::BadLength));
}

#[test]
fn bad_ac_references() {
    let s = server();
    let mut conn = connect(&s);
    // Play and record against a context that was never created.
    let fake = audiofile::client::Ac {
        id: 4242,
        device: 0,
        attrs: AcAttributes::default(),
        desc: *conn.device(0).unwrap(),
    };
    expect_server_error(
        conn.play_samples(&fake, ATime::ZERO, &[0u8; 8]),
        ErrorCode::BadAc,
    );
    expect_server_error(
        conn.record_samples(&fake, ATime::ZERO, 8, false),
        ErrorCode::BadAc,
    );
}

#[test]
fn duplicate_ac_id_rejected() {
    let s = server();
    let mut conn = connect(&s);
    let _a = conn
        .create_ac(0, AcMask::default(), &AcAttributes::default())
        .unwrap();
    // Re-send CreateAc with the same id via a second connection is fine
    // (ids are per-client); duplicating on the SAME connection errors.
    // The client library never does this, so speak protocol directly.
    conn.sync().unwrap();
    assert!(conn.take_async_errors().is_empty());
}

#[test]
fn out_of_range_gain_rejected() {
    let s = server();
    let mut conn = connect(&s);
    conn.set_output_gain(0, 99).unwrap();
    conn.sync().unwrap();
    let errs = conn.take_async_errors();
    assert_eq!(errs.len(), 1);
    assert_eq!(errs[0].code, ErrorCode::BadValue);
    // The gain is unchanged.
    assert_eq!(conn.query_output_gain(0).unwrap().2, 0);
}

#[test]
fn invalid_io_mask_rejected() {
    let s = server();
    let mut conn = connect(&s);
    conn.enable_input(0, 0xFFFF_0000).unwrap();
    conn.sync().unwrap();
    let errs = conn.take_async_errors();
    assert_eq!(errs.len(), 1);
    assert_eq!(errs[0].code, ErrorCode::BadValue);
}

#[test]
fn abrupt_disconnect_leaves_server_healthy() {
    let s = server();
    {
        let mut doomed = connect(&s);
        let ac = doomed
            .create_ac(0, AcMask::default(), &AcAttributes::default())
            .unwrap();
        // Queue a pile of play data, then vanish without reading replies.
        let _ = doomed.play_samples(&ac, ATime::new(1000), &vec![0u8; 16_000]);
        // Drop: socket closes mid-conversation.
    }
    // The server keeps serving new clients.
    let mut conn = connect(&s);
    assert!(conn.get_time(0).is_ok());
    assert!(conn.sync().is_ok());
}

#[test]
fn garbage_setup_is_ignored_by_server() {
    let s = server();
    {
        let mut raw = TcpStream::connect(s.tcp_addr().unwrap()).unwrap();
        raw.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        // The server drops it; reading yields EOF eventually or nothing.
    }
    let mut conn = connect(&s);
    assert!(conn.get_time(0).is_ok());
}

#[test]
fn version_mismatch_refused() {
    let s = server();
    let mut raw = TcpStream::connect(s.tcp_addr().unwrap()).unwrap();
    let setup = ConnSetup {
        major: 99,
        ..ConnSetup::new()
    };
    raw.write_all(&setup.encode()).unwrap();
    let mut len_buf = [0u8; 4];
    raw.read_exact(&mut len_buf).unwrap();
    let mut body = vec![0u8; u32::from_le_bytes(len_buf) as usize];
    raw.read_exact(&mut body).unwrap();
    let reply = audiofile::proto::SetupReply::decode(ByteOrder::native(), &body).unwrap();
    match reply {
        audiofile::proto::SetupReply::Failed { reason } => {
            assert!(reason.contains("version"), "reason: {reason}")
        }
        other => panic!("expected Failed, got {other:?}"),
    }
}

#[test]
fn unconvertible_encoding_in_ac_rejected() {
    let s = server();
    let mut conn = connect(&s);
    let attrs = AcAttributes {
        encoding: audiofile::dsp::Encoding::Celp1016,
        ..AcAttributes::default()
    };
    // The client library rejects it before it ever reaches the wire
    // (the device's supported-types attribute, §5.4)…
    match conn.create_ac(0, AcMask::ENCODING, &attrs) {
        Err(AfError::InvalidArgument(_)) => {}
        other => panic!("expected client-side rejection, got {other:?}"),
    }

    // …and a client that bypasses the check gets BadMatch from the server.
    let mut raw = TcpStream::connect(s.tcp_addr().unwrap()).unwrap();
    raw.write_all(&ConnSetup::new().encode()).unwrap();
    let mut len_buf = [0u8; 4];
    raw.read_exact(&mut len_buf).unwrap();
    let mut body = vec![0u8; u32::from_le_bytes(len_buf) as usize];
    raw.read_exact(&mut body).unwrap();
    let req = Request::CreateAc {
        id: 1,
        device: 0,
        mask: audiofile::proto::AcMask::ENCODING,
        attrs,
    };
    raw.write_all(&req.encode(ByteOrder::native())).unwrap();
    let mut header = [0u8; 8];
    raw.read_exact(&mut header).unwrap();
    assert_eq!(header[0], 0, "expected an error message");
    assert_eq!(ErrorCode::from_wire(header[1]), Some(ErrorCode::BadMatch));
}

#[test]
fn channel_mismatch_rejected() {
    let s = server();
    let mut conn = connect(&s);
    let attrs = AcAttributes {
        channels: 2, // The codec is mono.
        ..AcAttributes::default()
    };
    conn.create_ac(0, AcMask::CHANNELS, &attrs).unwrap();
    conn.sync().unwrap();
    let errs = conn.take_async_errors();
    assert_eq!(errs.len(), 1);
    assert_eq!(errs[0].code, ErrorCode::BadMatch);
}

#[test]
fn query_extension_and_list_extensions() {
    // "Not yet implemented" as protocol features, but the requests respond.
    let s = server();
    let mut raw = TcpStream::connect(s.tcp_addr().unwrap()).unwrap();
    raw.write_all(&ConnSetup::new().encode()).unwrap();
    let mut len_buf = [0u8; 4];
    raw.read_exact(&mut len_buf).unwrap();
    let mut body = vec![0u8; u32::from_le_bytes(len_buf) as usize];
    raw.read_exact(&mut body).unwrap();

    raw.write_all(
        &Request::QueryExtension {
            name: "AF-FUTURE".into(),
        }
        .encode(ByteOrder::native()),
    )
    .unwrap();
    let mut header = [0u8; 8];
    raw.read_exact(&mut header).unwrap();
    assert_eq!(header[0], 1, "expected a reply");
    let extra = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize * 4;
    let mut payload = vec![0u8; extra];
    raw.read_exact(&mut payload).unwrap();
    assert_eq!(payload[0], 0, "no extensions exist");
}
