//! Chaos soak: full client ↔ server ↔ LineServer sessions under injected
//! faults.  Every scenario uses a fixed seed, runs in bounded time, and
//! asserts the system *recovers* — no hangs, no panics, no unbounded
//! queues, and healthy clients keep getting audio service.

use audiofile::chaos::{StreamFaultPlan, UdpFaultPlan};
use audiofile::client::{AcAttributes, AcMask, AudioConn, ConnectOptions};
use audiofile::device::lineserver::{LineServerFirmware, LineServerLink};
use audiofile::device::{NullSink, SilenceSource, SystemClock, VirtualClock};
use audiofile::proto::{ByteOrder, ConnSetup, Request};
use audiofile::server::{RunningServer, ServerBuilder, ServerStats, OUTBOUND_QUEUE_CAPACITY};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn codec_server() -> RunningServer {
    codec_server_with(false)
}

/// Codec server on either transport: the reactor (default) or the classic
/// thread-per-connection path, so every fault scenario runs against both.
fn codec_server_with(classic: bool) -> RunningServer {
    let clock = Arc::new(VirtualClock::new(8000));
    let mut builder = ServerBuilder::new()
        .listen_tcp("127.0.0.1:0".parse().unwrap())
        .classic_transport(classic);
    builder.add_codec(
        clock,
        Box::new(NullSink),
        Box::new(SilenceSource::new(0xFF)),
    );
    builder.spawn().unwrap()
}

/// Opens a raw TCP connection and completes the setup handshake.
fn raw_handshake(server: &RunningServer) -> TcpStream {
    let mut raw = TcpStream::connect(server.tcp_addr().unwrap()).unwrap();
    raw.write_all(&ConnSetup::new().encode()).unwrap();
    let mut len_buf = [0u8; 4];
    raw.read_exact(&mut len_buf).unwrap();
    let mut body = vec![0u8; u32::from_le_bytes(len_buf) as usize];
    raw.read_exact(&mut body).unwrap();
    raw
}

#[test]
fn slow_client_is_evicted_not_fatal() {
    slow_client_is_evicted(false);
}

#[test]
fn slow_client_is_evicted_not_fatal_classic_transport() {
    slow_client_is_evicted(true);
}

fn slow_client_is_evicted(classic: bool) {
    let server = codec_server_with(classic);
    let stats = server.stats();

    // A well-behaved client, connected before the abuse starts.
    let mut healthy = AudioConn::open(&server.tcp_addr().unwrap().to_string()).unwrap();
    assert!(healthy.get_time(0).is_ok());

    // The slow client: floods reply-bearing requests and never reads a
    // byte back.  Replies pile up — first in the kernel socket buffers,
    // then in the server's per-client outbound queue, which is bounded at
    // OUTBOUND_QUEUE_CAPACITY.  When it overflows, the dispatcher must
    // evict this client rather than buffer without limit or stall.
    const {
        assert!(
            OUTBOUND_QUEUE_CAPACITY <= 1024,
            "outbound queue must stay small enough that a slow client \
             cannot hold significant server memory"
        );
    }
    let mut slow = raw_handshake(&server);
    slow.set_nodelay(true).unwrap();
    let get_time = Request::GetTime { device: 0 }.encode(ByteOrder::native());
    let batch: Vec<u8> = get_time
        .iter()
        .copied()
        .cycle()
        .take(get_time.len() * 1024)
        .collect();

    let start = Instant::now();
    let mut evicted = false;
    // 2048 batches ≈ 2M requests ≫ any sane socket buffering; in practice
    // eviction lands far earlier.
    for _ in 0..2048 {
        if slow.write_all(&batch).is_err() {
            // Kicked: the server shut the socket down under us.
            evicted = true;
            break;
        }
        if ServerStats::get(&stats.evicted_slow) > 0 {
            evicted = true;
            break;
        }
        assert!(
            start.elapsed() < Duration::from_secs(25),
            "server failed to evict a slow client in bounded time"
        );
    }
    assert!(evicted, "slow client was never evicted");

    // Give the eviction a moment to fully settle, then verify the healthy
    // client and new connections still get service.
    server.handle().barrier();
    assert!(ServerStats::get(&stats.evicted_slow) >= 1);
    assert!(healthy.get_time(0).is_ok());
    let mut fresh = AudioConn::open(&server.tcp_addr().unwrap().to_string()).unwrap();
    assert!(fresh.get_time(0).is_ok());
}

#[test]
fn lossy_lineserver_degrades_to_silence_not_stall() {
    // LineServer firmware on a real-time clock; the server reaches it
    // through a UDP link that drops over half of all datagrams.
    let clock = Arc::new(SystemClock::new(8000));
    let (fw, addr) = LineServerFirmware::boot(
        clock,
        Box::new(NullSink),
        Box::new(SilenceSource::new(0xFF)),
    )
    .unwrap();
    let stop = fw.stop_handle();
    let fw_thread = std::thread::spawn(move || fw.run());

    let plan = UdpFaultPlan::new(0xDE5A)
        .drop_send(0.4)
        .drop_recv(0.4)
        .reorder(0.2)
        .duplicate(0.2);
    let link = LineServerLink::connect_chaos(addr, plan).unwrap();
    link.set_reply_timeout(Duration::from_millis(25)).unwrap();

    let mut builder = ServerBuilder::new()
        .listen_tcp("127.0.0.1:0".parse().unwrap())
        .update_interval(Duration::from_millis(50));
    builder.add_lineserver_link(link);
    let server = builder.spawn().unwrap();

    let mut conn = AudioConn::open(&server.tcp_addr().unwrap().to_string()).unwrap();
    let ac = conn
        .create_ac(0, AcMask::default(), &AcAttributes::default())
        .unwrap();

    // Time must keep flowing even when individual exchanges are lost:
    // successful replies re-anchor it, lost ones free-run it locally.
    let t0 = conn.get_time(0).unwrap();
    std::thread::sleep(Duration::from_millis(250));
    let t1 = conn.get_time(0).unwrap();
    let advanced = t1 - t0;
    assert!(
        (500..=16_000).contains(&advanced),
        "device time advanced {advanced} ticks in 250 ms under loss"
    );

    // Play and record keep completing: lost play exchanges become silent
    // gaps, lost record exchanges come back as silence fill — never a
    // stall, never an error surfaced to the client.
    let start = Instant::now();
    for _ in 0..5 {
        let t = conn.get_time(0).unwrap();
        conn.play_samples(&ac, t + 1200u32, &[0x44u8; 400]).unwrap();
        conn.record_samples(&ac, t, 0, false).unwrap(); // Arm.
        let (_, data) = conn.record_samples(&ac, t + 200u32, 400, true).unwrap();
        assert_eq!(data.len(), 400, "record must return the full buffer");
    }
    assert!(
        start.elapsed() < Duration::from_secs(20),
        "audio calls must complete in bounded time under loss"
    );

    server.shutdown();
    stop.store(true, Ordering::Relaxed);
    fw_thread.join().unwrap();
}

#[test]
fn corrupting_stream_disconnects_only_that_client() {
    corrupting_stream_is_contained(false);
}

#[test]
fn corrupting_stream_disconnects_only_that_client_classic_transport() {
    corrupting_stream_is_contained(true);
}

fn corrupting_stream_is_contained(classic: bool) {
    let server = codec_server_with(classic);
    let stats = server.stats();

    let mut healthy = AudioConn::open(&server.tcp_addr().unwrap().to_string()).unwrap();

    // A deterministically fatal framing error: a zero-length frame header.
    // The server must treat it as a protocol error and drop that client.
    let mut garbage = raw_handshake(&server);
    garbage.write_all(&[0, 0, 0, 0]).unwrap();
    let mut buf = [0u8; 64];
    // The server closes the connection; reads drain to EOF.
    loop {
        match garbage.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }

    // A connection whose writes are randomly corrupted, dribbled out in
    // 7-byte chunks, and cut after 8 KB.  Whatever reaches the server,
    // the damage must stay contained to this one connection.  A timeout
    // on the underlying socket keeps the probe itself bounded: corrupted
    // length fields can leave the server legitimately waiting for bytes
    // that never come.
    let raw = TcpStream::connect(server.tcp_addr().unwrap()).unwrap();
    raw.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
    let mut chaotic = audiofile::chaos::ChaosStream::new(
        raw,
        StreamFaultPlan::new(0xC0DE)
            .corruption(0.3)
            .partial_writes(7)
            .cut_after(8192),
    );
    let get_time = Request::GetTime { device: 0 }.encode(ByteOrder::native());
    let _ = chaotic.write_all(&ConnSetup::new().encode());
    for _ in 0..64 {
        // Errors (resets, timeouts, the cut) are expected; hangs are not.
        if chaotic.write_all(&get_time).is_err() {
            break;
        }
        let _ = chaotic.read(&mut buf);
    }
    drop(chaotic);

    // Meanwhile a client over a merely *awkward* stream — partial reads
    // and writes, no corruption — must work: framing reassembles chunks.
    let opts = ConnectOptions {
        chaos: Some(StreamFaultPlan::new(0x5EED).partial_reads(3).partial_writes(5)),
        ..ConnectOptions::default()
    };
    let mut dribble = AudioConn::open_with_options(
        &server.tcp_addr().unwrap().to_string(),
        ByteOrder::native(),
        &opts,
    )
    .expect("partial I/O alone must not break a client");
    assert!(dribble.get_time(0).is_ok());

    server.handle().barrier();
    assert!(
        ServerStats::get(&stats.protocol_errors) >= 1,
        "zero-length frame must be counted as a protocol error"
    );
    // The blast radius was one connection: the healthy client never
    // noticed, and new clients are served.
    assert!(healthy.get_time(0).is_ok());
    assert!(healthy.sync().is_ok());
    let mut fresh = AudioConn::open(&server.tcp_addr().unwrap().to_string()).unwrap();
    assert!(fresh.get_time(0).is_ok());
}

#[test]
fn one_byte_at_a_time_handshake_and_frames_survive_both_transports() {
    // Partial-frame torture: the setup header, setup tail, and every
    // request frame header arrive one byte per write, with a pause that
    // makes each byte a separate readiness event on the reactor (and a
    // separate short read on the classic reader).  Framing must
    // reassemble them all; nothing may be misparsed or dropped.
    for classic in [false, true] {
        let server = codec_server_with(classic);
        let mut raw = TcpStream::connect(server.tcp_addr().unwrap()).unwrap();
        raw.set_nodelay(true).unwrap();

        let dribble = |bytes: &[u8], raw: &mut TcpStream| {
            for b in bytes {
                raw.write_all(std::slice::from_ref(b)).unwrap();
                raw.flush().unwrap();
                std::thread::sleep(Duration::from_millis(1));
            }
        };

        dribble(&ConnSetup::new().encode(), &mut raw);
        let mut len_buf = [0u8; 4];
        raw.read_exact(&mut len_buf).unwrap();
        let mut body = vec![0u8; u32::from_le_bytes(len_buf) as usize];
        raw.read_exact(&mut body).unwrap();

        for _ in 0..3 {
            let get_time = Request::GetTime { device: 0 }.encode(ByteOrder::native());
            dribble(&get_time, &mut raw);
            // A Time reply is exactly 12 bytes: 8-byte message header plus
            // the 4-byte tick count.
            let mut reply = [0u8; 12];
            raw.read_exact(&mut reply).unwrap();
        }

        // The abuse left the server fully functional for everyone else.
        let mut fresh = AudioConn::open(&server.tcp_addr().unwrap().to_string()).unwrap();
        assert!(fresh.get_time(0).is_ok(), "classic={classic}");
        server.shutdown();
    }
}

#[test]
fn flapping_connection_reconnects() {
    // Phase 1: a server dies under a connected client.
    let server = codec_server();
    let addr = server.tcp_addr().unwrap();
    let mut conn = AudioConn::open(&addr.to_string()).unwrap();
    assert!(conn.get_time(0).is_ok());
    server.shutdown();
    let err = match conn.get_time(0) {
        Ok(_) => panic!("call must fail once the server is gone"),
        Err(e) => e,
    };
    assert!(err.is_transient(), "a dead server is a retryable condition");

    // Phase 2: the client retries with backoff while the server is still
    // coming back, and connects once it is up.  Reserve a port, start the
    // reconnect attempt against it, then bring the server up mid-retry.
    let reserved = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = reserved.local_addr().unwrap();
    drop(reserved);

    let opts = ConnectOptions {
        timeout: Duration::from_millis(500),
        retries: 10,
        backoff: Duration::from_millis(50),
        chaos: None,
    };
    let client = std::thread::spawn(move || {
        let start = Instant::now();
        let conn = AudioConn::open_with_options(&addr.to_string(), ByteOrder::native(), &opts);
        (conn, start.elapsed())
    });

    std::thread::sleep(Duration::from_millis(300));
    let clock = Arc::new(VirtualClock::new(8000));
    let mut builder = ServerBuilder::new().listen_tcp(addr);
    builder.add_codec(
        clock,
        Box::new(NullSink),
        Box::new(SilenceSource::new(0xFF)),
    );
    let revived = builder.spawn().unwrap();

    let (conn, elapsed) = client.join().unwrap();
    let mut conn = conn.expect("client must reconnect once the server returns");
    assert!(conn.get_time(0).is_ok());
    assert!(
        elapsed < Duration::from_secs(15),
        "reconnect took {elapsed:?}; backoff must stay bounded"
    );
    revived.shutdown();
}
