//! Clock-domain experiments: the `apass` problem (§8.3).
//!
//! Two servers on independent sample clocks with a realistic crystal
//! error ("crystal oscillators have tolerances of perhaps 100 parts per
//! million") relay audio.  If the transmit clock is faster, buffering at
//! the receiver grows; the slip tracker must detect the drift and
//! resynchronize.

use audiofile::client::{AcAttributes, AcMask, AudioConn};
use audiofile::device::{CaptureSink, ToneSource, VirtualClock};
use audiofile::server::{RunningServer, ServerBuilder, ServerHandle};
use std::sync::Arc;

fn server_with(
    clock: Arc<VirtualClock>,
    source: Box<dyn audiofile::device::SampleSource>,
) -> (RunningServer, audiofile::device::io::CaptureBuffer) {
    let (sink, speaker) = CaptureSink::new(1 << 24);
    let mut builder = ServerBuilder::new().listen_tcp("127.0.0.1:0".parse().unwrap());
    builder.add_codec(clock, Box::new(sink), source);
    (builder.spawn().unwrap(), speaker)
}

/// The apass inner loop (§8.3.2), run for `blocks` blocks; returns the
/// number of resynchronizations.
#[allow(clippy::too_many_arguments)]
fn apass_loop(
    faud: &mut AudioConn,
    taud: &mut AudioConn,
    blocks: usize,
    delay_s: f64,
    aj_s: f64,
    buffering_s: f64,
    mut pump: impl FnMut(),
) -> usize {
    let fac = faud
        .create_ac(0, AcMask::default(), &AcAttributes::default())
        .unwrap();
    let tac = taud
        .create_ac(0, AcMask::default(), &AcAttributes::default())
        .unwrap();
    let rate = 8000f64;
    let bufsize = (buffering_s * rate) as u32;
    let nominal_slip = ((delay_s - buffering_s) * rate) as i32;
    let aj = (aj_s * rate) as i32;

    let mut ft = faud.get_time(0).unwrap();
    faud.record_samples(&fac, ft, 0, false).unwrap();
    let mut tt = taud.get_time(0).unwrap() + (delay_s * rate) as i32;

    let mut sliphist = [nominal_slip; 4];
    let mut next = 0;
    let mut resyncs = 0;
    for _ in 0..blocks {
        pump(); // Advance both virtual clocks one block.
        let (_, data) = faud
            .record_samples(&fac, ft, bufsize as usize, true)
            .unwrap();
        let tactt = taud.play_samples(&tac, tt, &data).unwrap();
        sliphist[next] = tt - tactt;
        next = (next + 1) % 4;
        let slip = (sliphist.iter().map(|&s| i64::from(s)).sum::<i64>() / 4) as i32;
        if slip < nominal_slip - aj || slip >= nominal_slip + aj {
            tt = tactt + nominal_slip;
            resyncs += 1;
            // Restart the average from the resynchronized position.
            sliphist = [nominal_slip; 4];
        }
        ft += bufsize;
        tt += bufsize;
    }
    resyncs
}

#[test]
fn matched_clocks_never_resynchronize() {
    let c_in = Arc::new(VirtualClock::new(8000));
    let c_out = Arc::new(VirtualClock::new(8000));
    let (s_in, _) = server_with(
        c_in.clone(),
        Box::new(ToneSource::ulaw(440.0, 8000.0, 8000.0)),
    );
    let (s_out, _) = server_with(
        c_out.clone(),
        Box::new(audiofile::device::SilenceSource::new(0xFF)),
    );
    let hi: ServerHandle = s_in.handle();
    let ho: ServerHandle = s_out.handle();
    let mut faud = AudioConn::open(&s_in.tcp_addr().unwrap().to_string()).unwrap();
    let mut taud = AudioConn::open(&s_out.tcp_addr().unwrap().to_string()).unwrap();

    let resyncs = apass_loop(&mut faud, &mut taud, 50, 0.3, 0.1, 0.2, || {
        for _ in 0..2 {
            c_in.advance(800);
            c_out.advance(800);
            hi.run_update();
            ho.run_update();
        }
    });
    assert_eq!(resyncs, 0, "matched clocks should stay in the band");
}

#[test]
fn drifting_clocks_force_resynchronization() {
    // The relay loop is paced by the transmit clock (each blocking record
    // completes after one block of *its* time), so a receive clock running
    // 2% slow consumes fewer samples per loop than arrive: "the excess
    // samples will accumulate in buffers in between... manifest[ing]
    // itself as gradually increasing end-to-end delay" (§8.3).  The 2% is
    // exaggerated so the ±50 ms band is crossed within a short test; at
    // the paper's 100 ppm the same crossing takes minutes.
    let c_in = Arc::new(VirtualClock::new(8000));
    let c_out = Arc::new(VirtualClock::with_drift(8000, -20_000.0));
    let (s_in, _) = server_with(
        c_in.clone(),
        Box::new(ToneSource::ulaw(440.0, 8000.0, 8000.0)),
    );
    let (s_out, speaker) = server_with(
        c_out.clone(),
        Box::new(audiofile::device::SilenceSource::new(0xFF)),
    );
    let hi = s_in.handle();
    let ho = s_out.handle();
    let mut faud = AudioConn::open(&s_in.tcp_addr().unwrap().to_string()).unwrap();
    let mut taud = AudioConn::open(&s_out.tcp_addr().unwrap().to_string()).unwrap();

    let resyncs = apass_loop(&mut faud, &mut taud, 120, 0.3, 0.05, 0.2, || {
        for _ in 0..2 {
            c_in.advance(800);
            c_out.advance(800);
            hi.run_update();
            ho.run_update();
        }
    });
    assert!(
        resyncs >= 1,
        "2% clock skew must cross a ±50 ms band within 24 s of audio"
    );
    // Audio still flowed: the receiver's speaker heard the relayed tone.
    let cap = speaker.lock();
    let nonsilent = cap.iter().filter(|&&b| b != 0xFF).count();
    assert!(
        nonsilent > 50_000,
        "only {nonsilent} non-silent bytes relayed"
    );
}

#[test]
fn correspondence_tracks_two_server_clocks() {
    // The §2.1 conversion formula applied across two live servers.
    let c_a = Arc::new(VirtualClock::new(8000));
    let c_b = Arc::new(VirtualClock::new(8000));
    let (s_a, _) = server_with(
        c_a.clone(),
        Box::new(audiofile::device::SilenceSource::new(0xFF)),
    );
    let (s_b, _) = server_with(
        c_b.clone(),
        Box::new(audiofile::device::SilenceSource::new(0xFF)),
    );
    let mut conn_a = AudioConn::open(&s_a.tcp_addr().unwrap().to_string()).unwrap();
    let mut conn_b = AudioConn::open(&s_b.tcp_addr().unwrap().to_string()).unwrap();

    let ta = conn_a.get_time(0).unwrap();
    let tb = conn_b.get_time(0).unwrap();
    let corr = audiofile::time::Correspondence::new(ta, 8000.0, tb, 8000.0);

    // Both clocks advance together; the mapping stays exact.
    c_a.advance(12_000);
    c_b.advance(12_000);
    let ta2 = conn_a.get_time(0).unwrap();
    let tb2 = conn_b.get_time(0).unwrap();
    assert_eq!(corr.a_to_b(ta2), tb2);
}
