//! The sharded data plane: per-device audio workers behind the
//! single-threaded dispatcher.
//!
//! The contract is that sharding is *invisible* to clients: every sample a
//! client plays lands on the same device frames, mixes in the same order,
//! and every byte a client records is identical to what the classic
//! single-threaded path produces.  The differential tests here replay one
//! request trace against both server modes and compare the replies and
//! the captured speaker output bit for bit.  The soak test then leans on
//! the sharded path with many concurrent connections and a misbehaving
//! client to show the control plane stays live.

use audiofile::chaos::StreamFaultPlan;
use audiofile::client::{AcAttributes, AcMask, AudioConn};
use audiofile::device::{
    CaptureSink, NullSink, SilenceSource, SystemClock, ToneSource, VirtualClock,
};
use audiofile::server::{RunningServer, ServerBuilder, ServerHandle, ServerStats};
use audiofile::time::ATime;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SIL: u8 = 0xFF;

/// A codec pair on one virtual clock: device 0's speaker is captured and
/// its mic hums at 440 Hz; device 1's mic hums at 200 Hz so pass-through
/// has something recognizable to move.  The two are pass-through peers,
/// which in sharded mode forces them onto one worker.
struct Rig {
    server: RunningServer,
    clock: Arc<VirtualClock>,
    speaker: audiofile::device::io::CaptureBuffer,
}

impl Rig {
    fn new(sharded: bool) -> Rig {
        let clock = Arc::new(VirtualClock::new(8000));
        let (sink, speaker) = CaptureSink::new(1 << 22);
        let mut builder = ServerBuilder::new()
            .listen_tcp("127.0.0.1:0".parse().unwrap())
            .sharded_data_plane(sharded);
        let d0 = builder.add_codec(
            clock.clone(),
            Box::new(sink),
            Box::new(ToneSource::ulaw(440.0, 8000.0, 10_000.0)),
        );
        let d1 = builder.add_codec(
            clock.clone(),
            Box::new(NullSink),
            Box::new(ToneSource::ulaw(200.0, 8000.0, 10_000.0)),
        );
        builder.pair_passthrough(d0, d1);
        let server = builder.spawn().unwrap();
        Rig {
            server,
            clock,
            speaker,
        }
    }

    fn connect(&self) -> AudioConn {
        AudioConn::open(&self.server.tcp_addr().unwrap().to_string()).unwrap()
    }

    /// Advances virtual time in update-sized steps, with a full-server
    /// update barrier (dispatcher and, in sharded mode, every worker)
    /// after each step.
    fn run(&self, handle: &ServerHandle, samples: u32) {
        let mut left = samples;
        while left > 0 {
            let n = left.min(800);
            self.clock.advance(n);
            handle.run_update();
            left -= n;
        }
    }
}

/// Replays the reference trace against one server mode.
///
/// Returns `(transcript, speaker_capture)`.  The transcript logs every
/// deterministic observable: reply times of synchronous requests issued
/// between update barriers, and the bytes of every record reply.  Sample
/// payloads of suspended (blocked) requests are covered by the speaker
/// capture — their *completion timestamps* depend on wall-clock worker
/// scheduling and are asserted for sanity instead of compared.
fn replay_trace(sharded: bool) -> (Vec<String>, Vec<u8>) {
    let rig = Rig::new(sharded);
    let handle = rig.server.handle();
    let mut log: Vec<String> = Vec::new();

    let mut c1 = rig.connect();
    let mut c2 = rig.connect();
    let ac1 = c1
        .create_ac(0, AcMask::default(), &AcAttributes::default())
        .unwrap();
    let ac2 = c2
        .create_ac(0, AcMask::default(), &AcAttributes::default())
        .unwrap();
    let preempt_attrs = AcAttributes {
        preempt: true,
        ..AcAttributes::default()
    };
    let ac2p = c2.create_ac(0, AcMask::PREEMPTION, &preempt_attrs).unwrap();

    let t0 = c1.get_time(0).unwrap();
    log.push(format!("t0={}", t0.ticks()));

    // Mixing and preemption: two clients overlap at 1200..1400, then a
    // preemptive write replaces 1300..1400.
    let a = audiofile::dsp::g711::linear_to_ulaw(4000);
    let b = audiofile::dsp::g711::linear_to_ulaw(2000);
    let p = audiofile::dsp::g711::linear_to_ulaw(-1500);
    let t = c1.play_samples(&ac1, ATime::new(1000), &[a; 400]).unwrap();
    log.push(format!("play1={}", t.ticks()));
    let t = c2.play_samples(&ac2, ATime::new(1200), &[b; 400]).unwrap();
    log.push(format!("play2={}", t.ticks()));
    let t = c2.play_samples(&ac2p, ATime::new(1300), &[p; 100]).unwrap();
    log.push(format!("play3={}", t.ticks()));

    // Output gain applies at request time.
    c1.set_output_gain(0, -6).unwrap();
    c1.sync().unwrap();
    let t = c1.play_samples(&ac1, ATime::new(2000), &[a; 200]).unwrap();
    log.push(format!("play4={}", t.ticks()));
    c1.set_output_gain(0, 0).unwrap();
    c1.sync().unwrap();

    // Arm the recorder, advance, then pull the recorded tone.
    let (_, first) = c1.record_samples(&ac1, t0, 0, false).unwrap();
    assert!(first.is_empty());
    rig.run(&handle, 2400);
    let now = c1.get_time(0).unwrap();
    log.push(format!("after_2400={}", now.ticks()));
    let (rt, data) = c1.record_samples(&ac1, t0, 4000, false).unwrap();
    log.push(format!("rec1_time={} data={:?}", rt.ticks(), data));

    // Input gain and the input-disabled silence fill, both read at
    // completion time.
    c1.set_input_gain(0, 6).unwrap();
    c1.sync().unwrap();
    let (rt, data) = c1.record_samples(&ac1, t0 + 800u32, 800, false).unwrap();
    log.push(format!("rec_gain_time={} data={:?}", rt.ticks(), data));
    c1.disable_input(0, 1).unwrap();
    c1.sync().unwrap();
    let (rt, data) = c1.record_samples(&ac1, t0 + 800u32, 800, false).unwrap();
    log.push(format!("rec_muted_time={} data={:?}", rt.ticks(), data));
    c1.enable_input(0, 1).unwrap();
    c1.set_input_gain(0, 0).unwrap();
    c1.sync().unwrap();

    // A Lin16 context over the µ-law device: conversion runs in-ring in
    // sharded mode, on the dispatcher classically.
    let l16 = AcAttributes {
        encoding: audiofile::dsp::Encoding::Lin16,
        ..AcAttributes::default()
    };
    let acl = c1.create_ac(0, AcMask::ENCODING, &l16).unwrap();
    let mut lin: Vec<u8> = Vec::new();
    for i in 0..300i16 {
        lin.extend_from_slice(&(i * 40).to_le_bytes());
    }
    let t = c1.play_samples(&acl, ATime::new(3600), &lin).unwrap();
    log.push(format!("play_l16={}", t.ticks()));
    let (rt, data) = c1.record_samples(&acl, t0 + 1000u32, 1200, false).unwrap();
    log.push(format!("rec_l16_time={} data={:?}", rt.ticks(), data));
    // Free and recreate: the replacement context must start from fresh
    // converter state (the worker drops its cached pair on FreeAc).
    c1.free_ac(acl).unwrap();
    c1.sync().unwrap();
    let acl = c1.create_ac(0, AcMask::ENCODING, &l16).unwrap();
    let (rt, data) = c1.record_samples(&acl, t0 + 1000u32, 1200, false).unwrap();
    log.push(format!("rec_l16b_time={} data={:?}", rt.ticks(), data));

    // Pass-through: device 1's 200 Hz mic tone flows into device 0's
    // speaker while enabled.
    c1.enable_pass_through(0).unwrap();
    c1.sync().unwrap();
    rig.run(&handle, 1600);
    c1.disable_pass_through(0).unwrap();
    c1.sync().unwrap();

    // A play past the 4-second horizon suspends and drains over wake-ups
    // (§2.2).  The reply time depends on which update completes it, so
    // only sanity is asserted here; the samples land at absolute device
    // times and are compared through the speaker capture.
    let anchor = c1.get_time(0).unwrap();
    log.push(format!("anchor={}", anchor.ticks()));
    let addr = rig.server.tcp_addr().unwrap().to_string();
    let (ready_tx, ready_rx) = std::sync::mpsc::channel::<()>();
    let big_play = std::thread::spawn(move || {
        let mut c3 = AudioConn::open(&addr).unwrap();
        let ac3 = c3
            .create_ac(0, AcMask::default(), &AcAttributes::default())
            .unwrap();
        let tone = audiofile::dsp::g711::linear_to_ulaw(3000);
        // In-horizon head: completes while the clock is frozen, so every
        // frame is in the ring before the hardware could consume it.
        c3.play_samples(&ac3, anchor, &vec![tone; 28_000]).unwrap();
        let _ = ready_tx.send(());
        // Beyond-horizon tail: suspends and drains over wake-ups.
        let tail = audiofile::dsp::g711::linear_to_ulaw(-2500);
        c3.play_samples(&ac3, anchor + 28_000u32, &vec![tail; 8_000])
            .unwrap()
    });
    // A blocking record waits for time to advance past its end.  The rec
    // ring has been armed by c1's context since t0, so the bytes it reads
    // are deterministic no matter when this request lands.
    let addr = rig.server.tcp_addr().unwrap().to_string();
    let blocking_rec = std::thread::spawn(move || {
        let mut c4 = AudioConn::open(&addr).unwrap();
        let ac4 = c4
            .create_ac(0, AcMask::default(), &AcAttributes::default())
            .unwrap();
        let (_, first) = c4.record_samples(&ac4, anchor, 0, false).unwrap();
        assert!(first.is_empty());
        c4.record_samples(&ac4, anchor, 1600, true).unwrap()
    });
    ready_rx.recv().expect("in-horizon head must complete");
    rig.run(&handle, 38_400);
    let t_done = big_play.join().unwrap();
    assert!(
        t_done.is_after(anchor),
        "suspended play must complete after time advances"
    );
    let (rec_t, rec_data) = blocking_rec.join().unwrap();
    assert_eq!(rec_data.len(), 1600);
    assert!(rec_t.is_after(anchor + 1600u32) || rec_t == anchor + 1600u32);
    log.push(format!("blocked_rec_data={rec_data:?}"));

    // Quiesce: everything suspended has drained, device time is final.
    rig.run(&handle, 1600);
    let t_end = c1.get_time(0).unwrap();
    log.push(format!("t_end={}", t_end.ticks()));
    let stats = rig.server.stats();
    assert_eq!(ServerStats::get(&stats.evicted_slow), 0);
    if sharded {
        let workers = stats.worker_snapshots();
        assert!(!workers.is_empty(), "sharded server must register workers");
        let jobs: u64 = workers.iter().map(|w| w.jobs_processed).sum();
        assert!(jobs > 0, "workers must have processed sample jobs");
    } else {
        assert!(stats.worker_snapshots().is_empty());
    }

    drop(c1);
    drop(c2);
    let capture = rig.speaker.lock().clone();
    rig.server.shutdown();
    (log, capture)
}

#[test]
fn sharded_data_plane_is_bit_exact_with_classic() {
    let (classic_log, classic_cap) = replay_trace(false);
    let (sharded_log, sharded_cap) = replay_trace(true);

    assert_eq!(
        classic_log.len(),
        sharded_log.len(),
        "transcript shapes differ"
    );
    for (i, (c, s)) in classic_log.iter().zip(sharded_log.iter()).enumerate() {
        assert_eq!(c, s, "transcript entry {i} diverged");
    }
    assert_eq!(
        classic_cap.len(),
        sharded_cap.len(),
        "speaker capture lengths differ"
    );
    if let Some(pos) = classic_cap
        .iter()
        .zip(sharded_cap.iter())
        .position(|(a, b)| a != b)
    {
        panic!(
            "speaker capture diverged at frame {pos}: classic={:#04x} sharded={:#04x}",
            classic_cap[pos], sharded_cap[pos]
        );
    }
}

/// Mono views (§7.4.1) resolve to the stereo owner's worker: play into the
/// left lane, mix into the right, and compare the interleaved capture.
fn replay_hifi_trace(sharded: bool) -> (Vec<String>, Vec<u8>) {
    let clock = Arc::new(VirtualClock::new(44_100));
    let (sink, speaker) = CaptureSink::new(1 << 24);
    let mut builder = ServerBuilder::new()
        .listen_tcp("127.0.0.1:0".parse().unwrap())
        .sharded_data_plane(sharded);
    let (stereo, left, right) = builder.add_hifi_with_mono(
        clock.clone(),
        Box::new(sink),
        Box::new(SilenceSource::new(0)),
    );
    let server = builder.spawn().unwrap();
    let handle = server.handle();
    let mut log = Vec::new();

    let mut conn = AudioConn::open(&server.tcp_addr().unwrap().to_string()).unwrap();
    let ac_l = conn
        .create_ac(left as u8, AcMask::default(), &AcAttributes::default())
        .unwrap();
    let ac_r = conn
        .create_ac(right as u8, AcMask::default(), &AcAttributes::default())
        .unwrap();
    let ac_s = conn
        .create_ac(stereo as u8, AcMask::default(), &AcAttributes::default())
        .unwrap();

    let mono = |v: i16, n: usize| -> Vec<u8> {
        let mut out = Vec::with_capacity(n * 2);
        for _ in 0..n {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    };
    let t = conn
        .play_samples(&ac_l, ATime::new(4410), &mono(1000, 500))
        .unwrap();
    log.push(format!("left={}", t.ticks()));
    let t = conn
        .play_samples(&ac_r, ATime::new(4410), &mono(-2000, 500))
        .unwrap();
    log.push(format!("right={}", t.ticks()));
    // A stereo write overlapping the lane writes mixes per channel.
    let mut stereo_data = Vec::new();
    for _ in 0..250 {
        stereo_data.extend_from_slice(&500i16.to_le_bytes());
        stereo_data.extend_from_slice(&500i16.to_le_bytes());
    }
    let t = conn
        .play_samples(&ac_s, ATime::new(4600), &stereo_data)
        .unwrap();
    log.push(format!("stereo={}", t.ticks()));

    // GetTime on a mono view answers from the owner's clock.
    let mut left_time_before = conn.get_time(left as u8).unwrap();
    let mut done = 0u32;
    while done < 22_050 {
        clock.advance(2205);
        handle.run_update();
        done += 2205;
    }
    let left_time_after = conn.get_time(left as u8).unwrap();
    log.push(format!(
        "mono_times={},{}",
        left_time_before.ticks(),
        left_time_after.ticks()
    ));
    left_time_before = left_time_after;
    let _ = left_time_before;

    let capture = speaker.lock().clone();
    drop(conn);
    server.shutdown();
    (log, capture)
}

#[test]
fn sharded_mono_views_are_bit_exact_with_classic() {
    let (classic_log, classic_cap) = replay_hifi_trace(false);
    let (sharded_log, sharded_cap) = replay_hifi_trace(true);
    assert_eq!(classic_log, sharded_log);
    assert_eq!(
        classic_cap, sharded_cap,
        "hifi speaker capture diverged between modes"
    );
}

/// 32 concurrent connections streaming into 4 sharded devices on a real
/// clock, plus one slow client that floods replies and never reads: the
/// control plane must stay live, the slow client must be evicted by the
/// bounded outbound queue, device times must advance monotonically, and
/// the worker counters must show the data plane did the work.
#[test]
fn soak_many_clients_four_sharded_devices() {
    let clock = Arc::new(SystemClock::new(8000));
    let mut builder = ServerBuilder::new()
        .listen_tcp("127.0.0.1:0".parse().unwrap())
        .sharded_data_plane(true)
        .chaos(
            StreamFaultPlan::new(0x5047)
                .partial_reads(9)
                .partial_writes(9)
                .latency(0.002, Duration::from_micros(200)),
        );
    for _ in 0..4 {
        builder.add_codec(
            clock.clone(),
            Box::new(NullSink),
            Box::new(SilenceSource::new(SIL)),
        );
    }
    let server = builder.spawn().unwrap();
    let addr = server.tcp_addr().unwrap().to_string();
    let stats = server.stats();

    // The slow client: floods reply-bearing requests and never reads.
    // Replies pile into the bounded per-client outbound queue until the
    // dispatcher evicts it.
    let slow_addr = addr.clone();
    let slow = std::thread::spawn(move || {
        use audiofile::proto::{ByteOrder, ConnSetup, Request};
        use std::io::{Read, Write};
        let mut raw = std::net::TcpStream::connect(&slow_addr).unwrap();
        raw.write_all(&ConnSetup::new().encode()).unwrap();
        let mut len_buf = [0u8; 4];
        raw.read_exact(&mut len_buf).unwrap();
        let mut body = vec![0u8; u32::from_le_bytes(len_buf) as usize];
        raw.read_exact(&mut body).unwrap();
        let get_time = Request::GetTime { device: 0 }.encode(ByteOrder::native());
        let batch: Vec<u8> = get_time
            .iter()
            .copied()
            .cycle()
            .take(get_time.len() * 1024)
            .collect();
        for _ in 0..4096 {
            if raw.write_all(&batch).is_err() {
                return; // Kicked.
            }
        }
    });

    let workers: Vec<_> = (0..32)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let device = (i % 4) as u8;
                let mut conn = AudioConn::open(&addr).unwrap();
                let ac = conn
                    .create_ac(device, AcMask::default(), &AcAttributes::default())
                    .unwrap();
                let noise = vec![0x21u8; 4000];
                let mut last = conn.get_time(device).unwrap();
                for round in 0..30 {
                    let now = conn.get_time(device).unwrap();
                    assert!(
                        !last.is_after(now),
                        "device {device} time went backwards: {last:?} -> {now:?}"
                    );
                    last = now;
                    // Anchor half a second ahead so the stream never blocks.
                    conn.play_samples(&ac, now + 4000u32, &noise).unwrap();
                    if round % 10 == 0 {
                        let (_, _) = conn.record_samples(&ac, now, 0, false).unwrap();
                    }
                }
                conn.sync().unwrap();
            })
        })
        .collect();

    let deadline = Instant::now() + Duration::from_secs(60);
    for w in workers {
        assert!(Instant::now() < deadline, "soak exceeded bounded time");
        w.join().expect("streaming client panicked");
    }
    slow.join().expect("slow client thread panicked");

    // The misbehaving client was evicted by the bounded queue, not served
    // forever and not allowed to wedge the server.
    let evict_deadline = Instant::now() + Duration::from_secs(10);
    while ServerStats::get(&stats.evicted_slow) == 0 && Instant::now() < evict_deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        ServerStats::get(&stats.evicted_slow) >= 1,
        "slow client must be evicted"
    );

    // Device times still advance monotonically after the abuse.
    let mut conn = AudioConn::open(&addr).unwrap();
    for device in 0..4u8 {
        let t1 = conn.get_time(device).unwrap();
        std::thread::sleep(Duration::from_millis(120));
        let t2 = conn.get_time(device).unwrap();
        assert!(
            t2.is_after(t1),
            "device {device} time stalled: {t1:?} -> {t2:?}"
        );
    }

    // The data plane did the work: four workers, all busy, queues bounded.
    let snaps = stats.worker_snapshots();
    assert_eq!(snaps.len(), 4, "one worker per unpaired device");
    for s in &snaps {
        assert!(
            s.jobs_processed > 0,
            "worker {} processed no jobs",
            s.label
        );
        assert!(
            s.queue_hwm <= audiofile::server::WORKER_QUEUE_CAPACITY as u64,
            "worker {} queue exceeded its bound",
            s.label
        );
        // Cycle accounting: a worker that processed jobs must have
        // consumed cycles doing it, and plays carry bytes.
        assert!(
            s.busy_cycles > 0,
            "worker {} processed jobs but consumed no cycles",
            s.label
        );
        assert!(
            s.bytes_processed > 0,
            "worker {} processed jobs but accounted no bytes",
            s.label
        );
    }
    let _ = stats.clients_total.load(Ordering::Relaxed);
    server.shutdown();
}
