//! Telephony integration: the LoFi-shaped server with its simulated line.
//!
//! Exercises the flows §5.5 and §8.6 describe: incoming ring events,
//! answering, voice mail (greeting out, message in), DTMF both ways, and
//! the pass-through connection.

use audiofile::client::{AcAttributes, AcMask, AudioConn, EventDetail, EventKind, EventMask};
use audiofile::device::{PhoneLine, VirtualClock};
use audiofile::dsp::g711::ULAW_SILENCE;
use audiofile::dsp::telephony::dtmf_for_digit;
use audiofile::dsp::tone::tone_pair;
use audiofile::server::{RunningServer, ServerBuilder, ServerHandle};
use std::sync::Arc;

/// Phone device index in the LoFi shape.
const PHONE_DEV: u8 = 0;

struct Lofi {
    server: RunningServer,
    clock: Arc<VirtualClock>,
    line: PhoneLine,
}

impl Lofi {
    fn new() -> Lofi {
        let clock = Arc::new(VirtualClock::new(8000));
        let (builder, line) = ServerBuilder::lofi(clock.clone());
        let server = builder
            .listen_tcp("127.0.0.1:0".parse().unwrap())
            .spawn()
            .unwrap();
        Lofi {
            server,
            clock,
            line,
        }
    }

    fn connect(&self) -> AudioConn {
        AudioConn::open(&self.server.tcp_addr().unwrap().to_string()).unwrap()
    }

    fn run(&self, handle: &ServerHandle, samples: u32) {
        let mut left = samples;
        while left > 0 {
            let n = left.min(800);
            self.clock.advance(n);
            handle.run_update();
            left -= n;
        }
    }
}

fn dtmf_ulaw(digit: char, ms: u32) -> Vec<u8> {
    let def = dtmf_for_digit(digit).unwrap();
    tone_pair(def.spec, 8000.0, (8 * ms) as usize, 16)
}

#[test]
fn lofi_exports_five_devices_with_phone_first() {
    // "The Alofi server presents five audio devices to clients" (§7.4.1):
    // two CODECs and three HiFi views.
    let fx = Lofi::new();
    let conn = fx.connect();
    assert_eq!(conn.devices().len(), 5);
    assert!(conn.devices()[0].is_telephone());
    assert!(!conn.devices()[1].is_telephone());
    assert_eq!(conn.devices()[2].play_nchannels, 2);
    assert_eq!(conn.devices()[3].play_nchannels, 1);
    assert_eq!(conn.devices()[4].play_nchannels, 1);
    // The default device skips the telephone (§8.1.1).
    assert_eq!(conn.find_default_device(), Some(1));
}

#[test]
fn ring_event_reaches_selected_client() {
    let fx = Lofi::new();
    let handle = fx.server.handle();
    let mut conn = fx.connect();
    conn.select_events(PHONE_DEV, EventMask::ALL).unwrap();
    conn.sync().unwrap();

    fx.line.office_ring(true);
    handle.run_update(); // Polls phone signals.
    let ev = conn.next_event().unwrap();
    assert_eq!(ev.device, PHONE_DEV);
    assert_eq!(ev.detail, EventDetail::Ring { ringing: true });

    // A client that did not select ring events hears nothing.
    let mut other = fx.connect();
    other
        .select_events(PHONE_DEV, EventMask::NONE.with(EventKind::PhoneDtmf))
        .unwrap();
    other.sync().unwrap();
    fx.line.office_ring(false);
    fx.line.office_ring(true);
    handle.run_update();
    assert_eq!(other.pending().unwrap(), 0);
}

#[test]
fn query_phone_and_hookswitch() {
    let fx = Lofi::new();
    let handle = fx.server.handle();
    let mut conn = fx.connect();
    assert_eq!(conn.query_phone(PHONE_DEV).unwrap(), (false, false, false));

    fx.line.office_ring(true);
    assert_eq!(conn.query_phone(PHONE_DEV).unwrap(), (false, false, true));

    conn.hook_switch(PHONE_DEV, true).unwrap();
    conn.sync().unwrap();
    // Answering stops the ringing.
    assert_eq!(conn.query_phone(PHONE_DEV).unwrap(), (true, false, false));

    // Extension phone lifted: loop current flows.
    fx.line.extension_hook(true);
    assert_eq!(conn.query_phone(PHONE_DEV).unwrap(), (true, true, false));
    let _ = handle;
}

#[test]
fn answering_machine_flow() {
    // The §8.6 script as API calls: ring → answer → greeting → message.
    let fx = Lofi::new();
    let handle = fx.server.handle();
    let mut conn = fx.connect();
    conn.select_events(PHONE_DEV, EventMask::ALL).unwrap();
    let ac = conn
        .create_ac(PHONE_DEV, AcMask::default(), &AcAttributes::default())
        .unwrap();
    // Flush the selection before the call arrives: like X, events that
    // fire before SelectEvents reaches the server are not delivered.
    conn.sync().unwrap();

    // Ring, then answer.
    fx.line.office_ring(true);
    handle.run_update();
    let ev = conn.next_event().unwrap();
    assert_eq!(ev.detail, EventDetail::Ring { ringing: true });
    conn.hook_switch(PHONE_DEV, true).unwrap();
    conn.sync().unwrap();

    // Play the outgoing greeting to the line.
    let greeting = vec![0x27u8; 1600]; // 200 ms of marker audio.
    let t = conn.get_time(PHONE_DEV).unwrap();
    conn.record_samples(&ac, t, 0, false).unwrap(); // Arm for the message.
    conn.play_samples(&ac, t + 400u32, &greeting).unwrap();
    fx.run(&handle, 2400);
    let heard_by_caller = fx.line.office_recv(2400);
    assert_eq!(&heard_by_caller[400..2000], &greeting[..]);

    // The caller speaks; we record the message.
    let message = dtmf_ulaw('8', 60); // Any distinctive audio; DTMF doubles as a check.
    fx.line.office_send(&message);
    fx.line.office_send(&vec![ULAW_SILENCE; 800]);
    let msg_start = conn.get_time(PHONE_DEV).unwrap();
    fx.run(&handle, 1600);
    let (_, recorded) = conn
        .record_samples(&ac, msg_start, message.len(), true)
        .unwrap();
    let dbm = audiofile::dsp::power::power_dbm_ulaw(&recorded);
    assert!(dbm > -20.0, "message power {dbm}");

    // The DTMF decoder on the line also reported the caller's key.
    handle.run_update();
    let ev = conn
        .if_event(|e| matches!(e.detail, EventDetail::Dtmf { .. }))
        .unwrap();
    assert_eq!(
        ev.detail,
        EventDetail::Dtmf {
            digit: b'8',
            down: true
        }
    );

    // Hang up.
    conn.hook_switch(PHONE_DEV, false).unwrap();
    conn.sync().unwrap();
    assert!(!conn.query_phone(PHONE_DEV).unwrap().0);
}

#[test]
fn client_dialing_produces_dtmf_events() {
    // aphone's approach: synthesize DTMF into the play path (§5.5); the
    // line's decoder reports the digits back as events.
    let fx = Lofi::new();
    let handle = fx.server.handle();
    let mut conn = fx.connect();
    conn.select_events(PHONE_DEV, EventMask::NONE.with(EventKind::PhoneDtmf))
        .unwrap();
    let ac = conn
        .create_ac(PHONE_DEV, AcMask::default(), &AcAttributes::default())
        .unwrap();
    conn.hook_switch(PHONE_DEV, true).unwrap();

    let mut dial = Vec::new();
    for d in ['4', '2'] {
        dial.extend(dtmf_ulaw(d, 60));
        dial.extend(vec![ULAW_SILENCE; 480]);
    }
    let t = conn.get_time(PHONE_DEV).unwrap();
    conn.play_samples(&ac, t + 400u32, &dial).unwrap();
    fx.run(&handle, dial.len() as u32 + 1600);

    let mut digits = Vec::new();
    while let Some(ev) = conn
        .check_if_event(|e| matches!(e.detail, EventDetail::Dtmf { down: true, .. }))
        .unwrap()
    {
        if let EventDetail::Dtmf { digit, .. } = ev.detail {
            digits.push(digit as char);
        }
    }
    assert_eq!(digits, vec!['4', '2']);
}

#[test]
fn pass_through_routes_phone_to_local_codec() {
    // §7.4.1: pass-through connects the telephone to the local audio
    // device.  Caller audio must come out of the local speaker.
    let clock = Arc::new(VirtualClock::new(8000));
    let line = PhoneLine::new();
    let (capture_sink, speaker) = audiofile::device::CaptureSink::new(1 << 22);
    let mut builder = ServerBuilder::new();
    let d0 = builder.add_phone_codec(clock.clone(), line.clone());
    let d1 = builder.add_codec(
        clock.clone(),
        Box::new(capture_sink),
        Box::new(audiofile::device::SilenceSource::new(ULAW_SILENCE)),
    );
    builder.pair_passthrough(d0, d1);
    let server = builder
        .listen_tcp("127.0.0.1:0".parse().unwrap())
        .spawn()
        .unwrap();
    let handle = server.handle();
    let mut conn = AudioConn::open(&server.tcp_addr().unwrap().to_string()).unwrap();

    conn.hook_switch(0, true).unwrap();
    conn.enable_pass_through(0).unwrap();
    conn.sync().unwrap();

    // The caller talks; their audio is on the line.
    line.office_send(&vec![0x35u8; 4000]);
    for _ in 0..20 {
        clock.advance(800);
        handle.run_update();
    }
    let heard = speaker.lock();
    let marked = heard.iter().filter(|&&b| b == 0x35).count();
    assert!(
        marked > 2000,
        "local speaker heard {marked} caller bytes of 4000"
    );
    drop(heard);

    // Disable: caller audio stops reaching the speaker.
    conn.disable_pass_through(0).unwrap();
    conn.sync().unwrap();
    let before = speaker.lock().len();
    line.office_send(&vec![0x36u8; 1600]);
    for _ in 0..5 {
        clock.advance(800);
        handle.run_update();
    }
    let heard = speaker.lock();
    let marked = heard[before..].iter().filter(|&&b| b == 0x36).count();
    assert_eq!(marked, 0, "pass-through still routing after disable");
    server.shutdown();
}
