//! Atoms, properties, and inter-client communication (§5.9).
//!
//! "Clients can use such facilities to coordinate use of resources (like
//! the telephone) and to cooperate among themselves" — the
//! `LAST_NUMBER_DIALED` convention is tested exactly as the paper
//! describes it.

use audiofile::client::{AfError, AudioConn, EventDetail, EventKind, EventMask};
use audiofile::device::{SilenceSource, VirtualClock};
use audiofile::proto::atoms::{ATOM_CARDINAL, ATOM_LAST_NUMBER_DIALED, ATOM_STRING};
use audiofile::proto::request::PropertyMode;
use audiofile::proto::Atom;
use audiofile::server::{RunningServer, ServerBuilder};
use std::sync::Arc;

fn server() -> RunningServer {
    let clock = Arc::new(VirtualClock::new(8000));
    let mut builder = ServerBuilder::new().listen_tcp("127.0.0.1:0".parse().unwrap());
    builder.add_codec(
        clock,
        Box::new(audiofile::device::NullSink),
        Box::new(SilenceSource::new(0xFF)),
    );
    builder.spawn().unwrap()
}

fn connect(s: &RunningServer) -> AudioConn {
    AudioConn::open(&s.tcp_addr().unwrap().to_string()).unwrap()
}

#[test]
fn builtin_atoms_preinterned() {
    let s = server();
    let mut conn = connect(&s);
    // Table 2's atoms resolve without creating anything new.
    assert_eq!(conn.intern_atom("STRING", true).unwrap(), ATOM_STRING);
    assert_eq!(
        conn.intern_atom("LAST_NUMBER_DIALED", true).unwrap(),
        ATOM_LAST_NUMBER_DIALED
    );
    assert_eq!(conn.get_atom_name(Atom(1)).unwrap(), "ATOM");
    assert_eq!(conn.get_atom_name(Atom(12)).unwrap(), "SAMPLE_MU255");
}

#[test]
fn interning_is_idempotent_and_shared_across_clients() {
    let s = server();
    let mut c1 = connect(&s);
    let mut c2 = connect(&s);
    let a1 = c1.intern_atom("MY_SHARED_NAME", false).unwrap();
    let a2 = c2.intern_atom("MY_SHARED_NAME", false).unwrap();
    assert_eq!(a1, a2);
    assert_eq!(c2.get_atom_name(a1).unwrap(), "MY_SHARED_NAME");
    // only_if_exists on a missing name returns the null atom.
    assert!(c1.intern_atom("NEVER_MADE", true).unwrap().is_none());
}

#[test]
fn unknown_atom_name_is_server_error() {
    let s = server();
    let mut conn = connect(&s);
    match conn.get_atom_name(Atom(9999)) {
        Err(AfError::Server(e)) => {
            assert_eq!(e.code, audiofile::proto::ErrorCode::BadAtom)
        }
        other => panic!("expected BadAtom, got {other:?}"),
    }
}

#[test]
fn last_number_dialed_convention() {
    // "Any client dialing the telephone should update the value of this
    // property... a directory of recently used numbers could acquire all
    // numbers dialed by all telephone applications."
    let s = server();
    let mut dialer = connect(&s);
    let mut directory = connect(&s);

    directory
        .select_events(0, EventMask::NONE.with(EventKind::PropertyChange))
        .unwrap();
    directory.sync().unwrap();

    dialer
        .change_property(
            0,
            PropertyMode::Replace,
            ATOM_LAST_NUMBER_DIALED,
            ATOM_STRING,
            b"16175551212",
        )
        .unwrap();
    dialer.sync().unwrap();

    // The directory client is notified and reads the value.
    let ev = directory.next_event().unwrap();
    assert_eq!(
        ev.detail,
        EventDetail::Property {
            atom: ATOM_LAST_NUMBER_DIALED,
            exists: true
        }
    );
    let (type_, data) = directory
        .get_property(0, false, ATOM_LAST_NUMBER_DIALED, ATOM_STRING)
        .unwrap();
    assert_eq!(type_, ATOM_STRING);
    assert_eq!(data, b"16175551212");
}

#[test]
fn property_modes_append_prepend_replace() {
    let s = server();
    let mut conn = connect(&s);
    let prop = conn.intern_atom("SCRATCH", false).unwrap();

    conn.change_property(0, PropertyMode::Replace, prop, ATOM_STRING, b"mid")
        .unwrap();
    conn.change_property(0, PropertyMode::Append, prop, ATOM_STRING, b"-end")
        .unwrap();
    conn.change_property(0, PropertyMode::Prepend, prop, ATOM_STRING, b"start-")
        .unwrap();
    let (_, data) = conn.get_property(0, false, prop, ATOM_STRING).unwrap();
    assert_eq!(data, b"start-mid-end");

    // Append with a mismatched type is a BadMatch (checked via sync).
    conn.change_property(0, PropertyMode::Append, prop, ATOM_CARDINAL, &[1])
        .unwrap();
    conn.sync().unwrap();
    let errs = conn.take_async_errors();
    assert_eq!(errs.len(), 1);
    assert_eq!(errs[0].code, audiofile::proto::ErrorCode::BadMatch);
}

#[test]
fn get_property_with_delete_removes_and_notifies() {
    let s = server();
    let mut writer = connect(&s);
    let mut watcher = connect(&s);
    watcher
        .select_events(0, EventMask::NONE.with(EventKind::PropertyChange))
        .unwrap();
    watcher.sync().unwrap();

    let prop = writer.intern_atom("ONE_SHOT", false).unwrap();
    writer
        .change_property(0, PropertyMode::Replace, prop, ATOM_STRING, b"x")
        .unwrap();
    writer.sync().unwrap();

    let (type_, data) = writer.get_property(0, true, prop, Atom::NONE).unwrap();
    assert_eq!(type_, ATOM_STRING);
    assert_eq!(data, b"x");

    // Second read: gone.
    let (type_, data) = writer.get_property(0, false, prop, Atom::NONE).unwrap();
    assert!(type_.is_none());
    assert!(data.is_empty());

    // Watcher saw the change then the deletion.
    let ev1 = watcher.next_event().unwrap();
    assert_eq!(
        ev1.detail,
        EventDetail::Property {
            atom: prop,
            exists: true
        }
    );
    let ev2 = watcher.next_event().unwrap();
    assert_eq!(
        ev2.detail,
        EventDetail::Property {
            atom: prop,
            exists: false
        }
    );
}

#[test]
fn type_filter_mismatch_returns_actual_type_no_data() {
    let s = server();
    let mut conn = connect(&s);
    let prop = conn.intern_atom("TYPED", false).unwrap();
    conn.change_property(0, PropertyMode::Replace, prop, ATOM_STRING, b"abc")
        .unwrap();
    conn.sync().unwrap();
    let (type_, data) = conn.get_property(0, false, prop, ATOM_CARDINAL).unwrap();
    assert_eq!(type_, ATOM_STRING); // The actual type is reported.
    assert!(data.is_empty()); // But no data crosses.
}

#[test]
fn list_properties_sorted() {
    let s = server();
    let mut conn = connect(&s);
    assert!(conn.list_properties(0).unwrap().is_empty());
    let a = conn.intern_atom("P_A", false).unwrap();
    let b = conn.intern_atom("P_B", false).unwrap();
    conn.change_property(0, PropertyMode::Replace, b, ATOM_STRING, b"1")
        .unwrap();
    conn.change_property(0, PropertyMode::Replace, a, ATOM_STRING, b"2")
        .unwrap();
    conn.sync().unwrap();
    assert_eq!(conn.list_properties(0).unwrap(), vec![a, b]);
}

#[test]
fn delete_property_of_missing_is_silent() {
    let s = server();
    let mut conn = connect(&s);
    let prop = conn.intern_atom("NOT_SET", false).unwrap();
    conn.delete_property(0, prop).unwrap();
    conn.sync().unwrap();
    assert!(conn.take_async_errors().is_empty());
}

#[test]
fn access_control_requests_round_trip() {
    let s = server();
    let mut conn = connect(&s);
    let (enabled, hosts) = conn.list_hosts().unwrap();
    assert!(enabled);
    assert!(hosts.is_empty());

    conn.add_host(&[10, 0, 0, 7]).unwrap();
    conn.add_host(&[10, 0, 0, 8]).unwrap();
    conn.remove_host(&[10, 0, 0, 7]).unwrap();
    conn.set_access_control(false).unwrap();
    let (enabled, hosts) = conn.list_hosts().unwrap();
    assert!(!enabled);
    assert_eq!(hosts, vec![vec![10, 0, 0, 8]]);

    // A malformed address length is rejected.
    conn.add_host(&[1, 2, 3]).unwrap();
    conn.sync().unwrap();
    let errs = conn.take_async_errors();
    assert_eq!(errs.len(), 1);
    assert_eq!(errs[0].code, audiofile::proto::ErrorCode::BadValue);
}

#[test]
fn deselecting_events_stops_delivery() {
    let s = server();
    let mut writer = connect(&s);
    let mut watcher = connect(&s);
    watcher
        .select_events(0, EventMask::NONE.with(EventKind::PropertyChange))
        .unwrap();
    watcher.sync().unwrap();
    let prop = writer.intern_atom("TOGGLE", false).unwrap();
    writer
        .change_property(0, PropertyMode::Replace, prop, ATOM_STRING, b"1")
        .unwrap();
    writer.sync().unwrap();
    // next_event blocks until the event's bytes arrive.
    let _ = watcher.next_event().unwrap();

    // Deselect: further changes are not delivered.
    watcher.select_events(0, EventMask::NONE).unwrap();
    watcher.sync().unwrap();
    writer
        .change_property(0, PropertyMode::Replace, prop, ATOM_STRING, b"2")
        .unwrap();
    writer.sync().unwrap();
    // The watcher's own sync orders any in-flight event ahead of the
    // reply, so after it an empty queue means the event was never sent.
    watcher.sync().unwrap();
    assert_eq!(watcher.pending().unwrap(), 0);
}

#[test]
fn events_carry_host_time() {
    // §5.2: "all device events contain both the audio device time of the
    // device and the clock time of the host of the server."
    let s = server();
    let mut watcher = connect(&s);
    let mut writer = connect(&s);
    watcher
        .select_events(0, EventMask::NONE.with(EventKind::PropertyChange))
        .unwrap();
    watcher.sync().unwrap();
    let prop = writer.intern_atom("TIMED", false).unwrap();
    writer
        .change_property(0, PropertyMode::Replace, prop, ATOM_STRING, b"x")
        .unwrap();
    writer.sync().unwrap();
    let ev = watcher.next_event().unwrap();
    // Host time is Unix milliseconds: sanity-band it (2020-01-01 ..).
    assert!(ev.host_time_ms > 1_577_836_800_000, "{}", ev.host_time_ms);
}
