//! Fairness: one client must not starve the others (§7.1).
//!
//! "The server is designed such that one client cannot dominate the
//! processing time within the server and preclude the server from getting
//! work done on the behalf of other clients."  Two mechanisms deliver
//! this: round-robin servicing of connections and client-side chunking of
//! large requests.  These tests measure both effects directly.

use audiofile::client::{AcAttributes, AcMask, AudioConn};
use audiofile::device::{SilenceSource, SystemClock};
use audiofile::server::{RunningServer, ServerBuilder};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn realtime_server() -> RunningServer {
    // A real-time clock so the flooding client runs flat out while the
    // victim's latency is measured in wall time.
    let clock = Arc::new(SystemClock::new(8000));
    let mut builder = ServerBuilder::new().listen_tcp("127.0.0.1:0".parse().unwrap());
    builder.add_codec(
        clock,
        Box::new(audiofile::device::NullSink),
        Box::new(SilenceSource::new(0xFF)),
    );
    builder.spawn().unwrap()
}

#[test]
fn flooding_client_does_not_starve_get_time() {
    let server = realtime_server();
    let addr = server.tcp_addr().unwrap().to_string();

    // Baseline latency with an idle server.
    let mut victim = AudioConn::open(&addr).unwrap();
    let mut baseline = Duration::ZERO;
    const PROBES: u32 = 200;
    for _ in 0..PROBES {
        let t0 = Instant::now();
        victim.get_time(0).unwrap();
        baseline += t0.elapsed();
    }
    let baseline = baseline / PROBES;

    // A flooder hammers the server with maximum-size play requests
    // (client-side chunking splits them into 8 KB pieces, which is what
    // keeps individual dispatch steps short).
    let stop = Arc::new(AtomicBool::new(false));
    let flood_stop = stop.clone();
    let flood_addr = addr.clone();
    let flooder = std::thread::spawn(move || {
        let mut conn = AudioConn::open(&flood_addr).unwrap();
        let ac = conn
            .create_ac(0, AcMask::default(), &AcAttributes::default())
            .unwrap();
        let noise = vec![0x21u8; 16_384];
        while !flood_stop.load(Ordering::Relaxed) {
            // Anchor one second ahead so the writes never block.
            let now = conn.get_time(0).unwrap();
            conn.play_samples(&ac, now + 8000u32, &noise).unwrap();
        }
    });

    // Victim latency while the flood runs.
    std::thread::sleep(Duration::from_millis(100)); // Let the flood ramp up.
    let mut worst = Duration::ZERO;
    let mut total = Duration::ZERO;
    for _ in 0..PROBES {
        let t0 = Instant::now();
        victim.get_time(0).unwrap();
        let d = t0.elapsed();
        total += d;
        worst = worst.max(d);
    }
    let loaded = total / PROBES;
    stop.store(true, Ordering::Relaxed);
    flooder.join().unwrap();

    // The victim's mean latency may grow (the dispatcher is shared), but
    // must stay interactive: within 50× of baseline and under 5 ms mean,
    // 50 ms worst — far inside the real-time budget of 8 kHz audio.  With
    // no fairness (e.g. a dispatcher that drained one client's queue to
    // exhaustion) the victim would see multi-second stalls.
    assert!(
        loaded < baseline * 50 + Duration::from_millis(5),
        "mean latency under load {loaded:?} vs baseline {baseline:?}"
    );
    assert!(
        worst < Duration::from_millis(50),
        "worst-case latency under load {worst:?}"
    );
}

#[test]
fn two_streams_make_proportional_progress() {
    // Two clients pushing identical workloads finish within a reasonable
    // factor of each other — round-robin, not FIFO-until-drained.
    let server = realtime_server();
    let addr = server.tcp_addr().unwrap().to_string();

    let run_one = |addr: String| {
        std::thread::spawn(move || {
            let mut conn = AudioConn::open(&addr).unwrap();
            let ac = conn
                .create_ac(0, AcMask::default(), &AcAttributes::default())
                .unwrap();
            let block = vec![0x30u8; 8192];
            let t0 = Instant::now();
            for _ in 0..200 {
                let now = conn.get_time(0).unwrap();
                conn.play_samples(&ac, now + 8000u32, &block).unwrap();
            }
            t0.elapsed()
        })
    };
    let a = run_one(addr.clone());
    let b = run_one(addr);
    let ta = a.join().unwrap();
    let tb = b.join().unwrap();
    let ratio =
        ta.as_secs_f64().max(tb.as_secs_f64()) / ta.as_secs_f64().min(tb.as_secs_f64()).max(1e-9);
    assert!(
        ratio < 3.0,
        "streams finished {ta:?} vs {tb:?} (ratio {ratio:.1})"
    );
}
