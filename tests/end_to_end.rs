//! End-to-end integration: real client, real server, real sockets.
//!
//! These tests run the full stack — client library → TCP/Unix transport →
//! dispatcher → buffering engine → simulated hardware — with virtual
//! clocks so timing assertions are exact.

use audiofile::client::{AcAttributes, AcMask, AudioConn};
use audiofile::device::{CaptureSink, SilenceSource, ToneSource, VirtualClock, Wire};
use audiofile::dsp::g711;
use audiofile::server::{RunningServer, ServerBuilder, ServerHandle};
use audiofile::time::ATime;
use std::sync::Arc;

const SIL: u8 = 0xFF;

struct Fixture {
    server: RunningServer,
    clock: Arc<VirtualClock>,
    speaker: audiofile::device::io::CaptureBuffer,
}

impl Fixture {
    /// One codec whose speaker is captured and whose mic is silent.
    fn new() -> Fixture {
        let clock = Arc::new(VirtualClock::new(8000));
        let (sink, speaker) = CaptureSink::new(1 << 22);
        let mut builder = ServerBuilder::new().listen_tcp("127.0.0.1:0".parse().unwrap());
        builder.add_codec(
            clock.clone(),
            Box::new(sink),
            Box::new(SilenceSource::new(SIL)),
        );
        let server = builder.spawn().unwrap();
        Fixture {
            server,
            clock,
            speaker,
        }
    }

    fn connect(&self) -> AudioConn {
        AudioConn::open(&self.server.tcp_addr().unwrap().to_string()).unwrap()
    }

    /// Advances virtual time in update-sized steps, running the server's
    /// update task after each step (as the periodic task would).
    fn run(&self, handle: &ServerHandle, samples: u32) {
        let mut left = samples;
        while left > 0 {
            let n = left.min(800);
            self.clock.advance(n);
            handle.run_update();
            left -= n;
        }
    }
}

#[test]
fn connect_and_inspect_devices() {
    let fx = Fixture::new();
    let conn = fx.connect();
    assert_eq!(conn.devices().len(), 1);
    let d = &conn.devices()[0];
    assert_eq!(d.play_sample_freq, 8000);
    assert_eq!(d.play_nchannels, 1);
    assert!(!d.is_telephone());
    assert_eq!(conn.find_default_device(), Some(0));
    assert!(conn.vendor().contains("audiofile"));
}

#[test]
fn get_time_tracks_virtual_clock() {
    let fx = Fixture::new();
    let mut conn = fx.connect();
    let t0 = conn.get_time(0).unwrap();
    fx.clock.advance(12_345);
    let t1 = conn.get_time(0).unwrap();
    assert_eq!(t1 - t0, 12_345);
}

#[test]
fn played_audio_reaches_the_speaker_at_the_scheduled_time() {
    let fx = Fixture::new();
    let handle = fx.server.handle();
    let mut conn = fx.connect();
    let ac = conn
        .create_ac(0, AcMask::default(), &AcAttributes::default())
        .unwrap();

    let t = conn.get_time(0).unwrap();
    let start = t + 1000u32;
    let data = vec![0x21u8; 500];
    conn.play_samples(&ac, start, &data).unwrap();

    fx.run(&handle, 2400);
    let cap = fx.speaker.lock();
    let s = start.ticks() as usize;
    assert!(cap.len() >= s + 500);
    assert!(cap[..s].iter().all(|&b| b == SIL), "leading not silent");
    assert_eq!(&cap[s..s + 500], &data[..]);
}

#[test]
fn two_clients_mix_and_preempt() {
    let fx = Fixture::new();
    let handle = fx.server.handle();
    let mut c1 = fx.connect();
    let mut c2 = fx.connect();
    let ac1 = c1
        .create_ac(0, AcMask::default(), &AcAttributes::default())
        .unwrap();
    let preempt_attrs = AcAttributes {
        preempt: true,
        ..AcAttributes::default()
    };
    let ac2 = c2.create_ac(0, AcMask::PREEMPTION, &preempt_attrs).unwrap();

    let a = g711::linear_to_ulaw(4000);
    let b = g711::linear_to_ulaw(2000);
    let p = g711::linear_to_ulaw(-1500);

    // Client 1 and client 2 (region 2000..2100) mix; the preemptive write
    // at 2050..2100 replaces the mix.
    c1.play_samples(&ac1, ATime::new(2000), &[a; 100]).unwrap();
    // Use a non-preempting AC for the mixing write.
    let ac2_mix = c2
        .create_ac(0, AcMask::default(), &AcAttributes::default())
        .unwrap();
    c2.play_samples(&ac2_mix, ATime::new(2000), &[b; 100])
        .unwrap();
    c2.play_samples(&ac2, ATime::new(2050), &[p; 50]).unwrap();
    c2.sync().unwrap();

    fx.run(&handle, 4000);
    let cap = fx.speaker.lock();
    let mixed = g711::ulaw_to_linear(cap[2010]);
    assert!(
        (i32::from(mixed) - 6000).abs() < 500,
        "expected ~6000 mixed, got {mixed}"
    );
    let preempted = g711::ulaw_to_linear(cap[2060]);
    assert!(
        (i32::from(preempted) + 1500).abs() < 150,
        "expected ~-1500 preempted, got {preempted}"
    );
}

#[test]
fn record_from_tone_source() {
    let clock = Arc::new(VirtualClock::new(8000));
    let mut builder = ServerBuilder::new().listen_tcp("127.0.0.1:0".parse().unwrap());
    builder.add_codec(
        clock.clone(),
        Box::new(audiofile::device::NullSink),
        Box::new(ToneSource::ulaw(440.0, 8000.0, 10_000.0)),
    );
    let server = builder.spawn().unwrap();
    let handle = server.handle();
    let mut conn = AudioConn::open(&server.tcp_addr().unwrap().to_string()).unwrap();
    let ac = conn
        .create_ac(0, AcMask::default(), &AcAttributes::default())
        .unwrap();

    // Prime the recorder (first record marks the context recording).
    let t0 = conn.get_time(0).unwrap();
    let (_, first) = conn.record_samples(&ac, t0, 0, false).unwrap();
    assert!(first.is_empty());

    // Advance a second of virtual time, then record the past second.
    for _ in 0..10 {
        clock.advance(800);
        handle.run_update();
    }
    let (now, data) = conn.record_samples(&ac, t0 + 800u32, 4000, true).unwrap();
    assert_eq!(data.len(), 4000);
    assert!(now.is_after(t0));
    let dbm = audiofile::dsp::power::power_dbm_ulaw(&data);
    assert!(dbm > -15.0, "recorded tone at {dbm} dBm");
    server.shutdown();
}

#[test]
fn nonblocking_record_returns_partial() {
    let fx = Fixture::new();
    let handle = fx.server.handle();
    let mut conn = fx.connect();
    let ac = conn
        .create_ac(0, AcMask::default(), &AcAttributes::default())
        .unwrap();

    let t0 = conn.get_time(0).unwrap();
    let (_, _) = conn.record_samples(&ac, t0, 0, false).unwrap();
    fx.run(&handle, 800);
    // Ask for 2000 frames but only ~800 have elapsed.
    let (_, data) = conn.record_samples(&ac, t0, 2000, false).unwrap();
    assert!(data.len() >= 700 && data.len() <= 900, "got {}", data.len());
}

#[test]
fn blocking_record_waits_for_time_to_advance() {
    let fx = Fixture::new();
    let handle = fx.server.handle();
    let mut conn = fx.connect();
    let ac = conn
        .create_ac(0, AcMask::default(), &AcAttributes::default())
        .unwrap();
    let t0 = conn.get_time(0).unwrap();
    let (_, _) = conn.record_samples(&ac, t0, 0, false).unwrap();

    // Drive the clock from another thread while the record blocks.
    let clock = fx.clock.clone();
    let driver = std::thread::spawn(move || {
        for _ in 0..5 {
            std::thread::sleep(std::time::Duration::from_millis(30));
            clock.advance(800);
            handle.run_update();
        }
    });
    let (_, data) = conn.record_samples(&ac, t0, 2000, true).unwrap();
    assert_eq!(data.len(), 2000);
    driver.join().unwrap();
}

#[test]
fn play_flow_control_blocks_beyond_four_seconds() {
    let fx = Fixture::new();
    let handle = fx.server.handle();
    let mut conn = fx.connect();
    let ac = conn
        .create_ac(0, AcMask::default(), &AcAttributes::default())
        .unwrap();
    let t0 = conn.get_time(0).unwrap();

    // Fill the entire 4-second buffer; this completes immediately.
    let body = vec![0x30u8; 32_768];
    conn.play_samples(&ac, t0, &body).unwrap();

    // The next second of audio must block until the clock advances.
    let clock = fx.clock.clone();
    let driver = std::thread::spawn(move || {
        for _ in 0..12 {
            std::thread::sleep(std::time::Duration::from_millis(20));
            clock.advance(800);
            handle.run_update();
        }
    });
    let start = std::time::Instant::now();
    conn.play_samples(&ac, t0 + 32_768u32, &vec![0x31u8; 8000])
        .unwrap();
    assert!(
        start.elapsed() > std::time::Duration::from_millis(50),
        "play did not block for flow control"
    );
    driver.join().unwrap();
}

#[test]
fn silence_skipping_needs_no_data() {
    // A client advances its play time across a silent interval (§2.2).
    let fx = Fixture::new();
    let handle = fx.server.handle();
    let mut conn = fx.connect();
    let ac = conn
        .create_ac(0, AcMask::default(), &AcAttributes::default())
        .unwrap();
    conn.play_samples(&ac, ATime::new(1000), &[0x21; 100])
        .unwrap();
    conn.play_samples(&ac, ATime::new(3000), &[0x22; 100])
        .unwrap();
    fx.run(&handle, 4000);
    let cap = fx.speaker.lock();
    assert_eq!(&cap[1000..1100], &[0x21; 100][..]);
    assert!(cap[1100..3000].iter().all(|&b| b == SIL));
    assert_eq!(&cap[3000..3100], &[0x22; 100][..]);
}

#[test]
fn unix_socket_transport_works() {
    let clock = Arc::new(VirtualClock::new(8000));
    let path = std::env::temp_dir().join(format!("af-e2e-{}.sock", std::process::id()));
    let (sink, _speaker) = CaptureSink::new(1 << 16);
    let mut builder = ServerBuilder::new().listen_unix(path.clone());
    builder.add_codec(
        clock.clone(),
        Box::new(sink),
        Box::new(SilenceSource::new(SIL)),
    );
    let server = builder.spawn().unwrap();
    let mut conn = AudioConn::open(path.to_str().unwrap()).unwrap();
    let t0 = conn.get_time(0).unwrap();
    clock.advance(500);
    assert_eq!(conn.get_time(0).unwrap() - t0, 500);
    server.shutdown();
}

#[test]
fn big_endian_client_interoperates() {
    // A "big-endian machine" client: every wire field byte-swapped by the
    // library, byte-swapped back by the server (§7.3.1).
    let fx = Fixture::new();
    let handle = fx.server.handle();
    let addr = fx.server.tcp_addr().unwrap().to_string();
    let mut conn = AudioConn::open_with_order(&addr, audiofile::proto::ByteOrder::Big).unwrap();
    let ac = conn
        .create_ac(0, AcMask::default(), &AcAttributes::default())
        .unwrap();
    let t = conn.get_time(0).unwrap();
    conn.play_samples(&ac, t + 500u32, &[0x42u8; 64]).unwrap();
    fx.run(&handle, 1600);
    let cap = fx.speaker.lock();
    let s = (t.ticks() + 500) as usize;
    assert_eq!(&cap[s..s + 64], &[0x42u8; 64][..]);
}

#[test]
fn wire_loopback_record_of_played_audio() {
    // Speaker wired to microphone: play a marker and record it back.
    let clock = Arc::new(VirtualClock::new(8000));
    let wire = Wire::new(1 << 20, SIL);
    let mut builder = ServerBuilder::new().listen_tcp("127.0.0.1:0".parse().unwrap());
    builder.add_codec(
        clock.clone(),
        Box::new(wire.sink()),
        Box::new(wire.source()),
    );
    let server = builder.spawn().unwrap();
    let handle = server.handle();
    let mut conn = AudioConn::open(&server.tcp_addr().unwrap().to_string()).unwrap();
    let ac = conn
        .create_ac(0, AcMask::default(), &AcAttributes::default())
        .unwrap();

    let t0 = conn.get_time(0).unwrap();
    conn.record_samples(&ac, t0, 0, false).unwrap(); // Arm the recorder.
    conn.play_samples(&ac, t0 + 1000u32, &[0x5A; 200]).unwrap();
    for _ in 0..3 {
        clock.advance(800);
        handle.run_update();
    }
    let (_, heard) = conn.record_samples(&ac, t0 + 1000u32, 200, true).unwrap();
    assert_eq!(heard, vec![0x5A; 200]);
    server.shutdown();
}

#[test]
fn interrupt_erases_buffered_audio() {
    // aplay's control-C behaviour (§8.1.2): after queueing seconds of
    // audio, preemptive silence over [now, end) stops playback on a dime.
    let fx = Fixture::new();
    let handle = fx.server.handle();
    let mut conn = fx.connect();
    let ac = conn
        .create_ac(0, AcMask::default(), &AcAttributes::default())
        .unwrap();

    let t0 = conn.get_time(0).unwrap();
    let body = vec![0x2Au8; 16_000]; // Two seconds queued ahead.
    let end = t0 + 800u32 + 16_000u32;
    conn.play_samples(&ac, t0 + 800u32, &body).unwrap();

    // Let half a second play, then "interrupt".
    fx.run(&handle, 4000);
    let nact = conn.get_time(0).unwrap();
    audiofile::util::erase::erase_future(&mut conn, &ac, nact, end).unwrap();

    fx.run(&handle, 16_000);
    let cap = fx.speaker.lock();
    // Audio played up to about the erase point...
    let played_marker = cap[..nact.ticks() as usize]
        .iter()
        .filter(|&&b| b == 0x2A)
        .count();
    assert!(played_marker > 2000, "nothing played before the interrupt");
    // ...and (allowing one update interval of already-committed samples)
    // silence after it.
    let slack = 1100; // One hardware lead of write-through latency.
    let after = &cap[(nact.ticks() as usize + slack)..];
    let leaked = after.iter().filter(|&&b| b == 0x2A).count();
    assert_eq!(leaked, 0, "buffered audio survived the erase");
}

#[test]
fn synchronous_mode_surfaces_errors_immediately() {
    // AFSynchronize: "particularly [useful] when debugging" (§6.1.3).
    let fx = Fixture::new();
    let mut conn = fx.connect();
    conn.set_synchronous(true);
    // An async request with a bad device: the error arrives on the very
    // next call, not at some later round trip.
    conn.set_output_gain(99, 0).unwrap();
    let errs = conn.take_async_errors();
    assert_eq!(errs.len(), 1);
    assert_eq!(errs[0].code, audiofile::proto::ErrorCode::BadDevice);
}

#[test]
fn error_handler_intercepts_async_errors() {
    use std::sync::atomic::{AtomicU32, Ordering};
    let fx = Fixture::new();
    let mut conn = fx.connect();
    static HITS: AtomicU32 = AtomicU32::new(0);
    conn.set_error_handler(Some(Box::new(|e| {
        assert_eq!(e.code, audiofile::proto::ErrorCode::BadDevice);
        HITS.fetch_add(1, Ordering::SeqCst);
    })));
    conn.set_output_gain(99, 0).unwrap();
    conn.sync().unwrap();
    assert_eq!(HITS.load(Ordering::SeqCst), 1);
    // Handled errors are not queued.
    assert!(conn.take_async_errors().is_empty());
}

#[test]
fn free_ac_releases_record_reference() {
    // After the last recording AC is freed, the record update stops
    // running and recorded_until resumes tracking "now" with no capture.
    let fx = Fixture::new();
    let handle = fx.server.handle();
    let mut conn = fx.connect();
    let ac = conn
        .create_ac(0, AcMask::default(), &AcAttributes::default())
        .unwrap();
    let t0 = conn.get_time(0).unwrap();
    conn.record_samples(&ac, t0, 0, false).unwrap(); // Arm.
    fx.run(&handle, 800);
    conn.free_ac(ac).unwrap();
    conn.sync().unwrap();

    // A new AC can be created and the server still behaves.
    let ac2 = conn
        .create_ac(0, AcMask::default(), &AcAttributes::default())
        .unwrap();
    fx.run(&handle, 800);
    let t = conn.get_time(0).unwrap();
    let (_, data) = conn.record_samples(&ac2, t - 700u32, 400, true).unwrap();
    assert_eq!(data.len(), 400);
}

#[test]
fn per_request_preempt_flag_overrides_mixing_context() {
    let fx = Fixture::new();
    let handle = fx.server.handle();
    let mut conn = fx.connect();
    let ac = conn
        .create_ac(0, AcMask::default(), &AcAttributes::default())
        .unwrap();
    let a = audiofile::dsp::g711::linear_to_ulaw(5000);
    let p = audiofile::dsp::g711::linear_to_ulaw(-2000);
    conn.play_samples(&ac, ATime::new(2000), &[a; 100])
        .unwrap();
    conn.play_samples_with_flags(
        &ac,
        ATime::new(2000),
        &[p; 100],
        audiofile::client::play_flags::PREEMPT,
    )
    .unwrap();
    fx.run(&handle, 4000);
    let got = audiofile::dsp::g711::ulaw_to_linear(fx.speaker.lock()[2050]);
    assert!(
        (i32::from(got) + 2000).abs() < 200,
        "expected preempted -2000, got {got}"
    );
}

#[test]
fn devices_keep_separate_notions_of_time() {
    // "When a server supports multiple audio devices, it traffics in
    // device time for each device separately" (§2.1).
    let fast = Arc::new(VirtualClock::new(8000));
    let slow = Arc::new(VirtualClock::new(8000));
    let mut builder = ServerBuilder::new().listen_tcp("127.0.0.1:0".parse().unwrap());
    builder.add_codec(
        fast.clone(),
        Box::new(audiofile::device::NullSink),
        Box::new(SilenceSource::new(SIL)),
    );
    builder.add_codec(
        slow.clone(),
        Box::new(audiofile::device::NullSink),
        Box::new(SilenceSource::new(SIL)),
    );
    let server = builder.spawn().unwrap();
    let mut conn = AudioConn::open(&server.tcp_addr().unwrap().to_string()).unwrap();

    let a0 = conn.get_time(0).unwrap();
    let b0 = conn.get_time(1).unwrap();
    fast.advance(5000);
    slow.advance(1000);
    assert_eq!(conn.get_time(0).unwrap() - a0, 5000);
    assert_eq!(conn.get_time(1).unwrap() - b0, 1000);
    server.shutdown();
}

#[test]
fn oversized_frame_drops_connection_only() {
    use std::io::{Read, Write};
    let fx = Fixture::new();
    let addr = fx.server.tcp_addr().unwrap();
    {
        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        raw.write_all(&audiofile::proto::ConnSetup::new().encode())
            .unwrap();
        let mut len_buf = [0u8; 4];
        raw.read_exact(&mut len_buf).unwrap();
        let mut body = vec![0u8; u32::from_le_bytes(len_buf) as usize];
        raw.read_exact(&mut body).unwrap();
        // Claim the maximum length (0xFFFF words) without sending payload;
        // the server must not allocate-and-hang forever on other clients.
        raw.write_all(&[0xFF, 0xFF, 7, 0]).unwrap();
        // Leave the payload unsent and drop.
    }
    let mut conn = fx.connect();
    assert!(conn.get_time(0).is_ok(), "server hurt by oversized frame");
}
