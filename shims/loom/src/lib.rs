//! Offline stand-in for the `loom` model checker.
//!
//! Exposes the subset of loom's API this workspace uses — [`model`],
//! [`thread::spawn`], [`sync::Mutex`] and [`sync::atomic`] — and runs the
//! model body under a deterministic cooperative scheduler that explores
//! **every** interleaving of the model's synchronization operations by
//! depth-first search over scheduling decisions.
//!
//! Differences from real loom, by design:
//!
//! * Only sequentially-consistent interleavings are explored: every atomic
//!   operation is performed `SeqCst` regardless of the ordering argument.
//!   Weak-memory reorderings are out of scope; the checker targets lost
//!   updates, lost wakeups, publication-order and deadlock bugs, which all
//!   manifest under SC interleavings of *some* schedule.
//! * Models run under plain `cargo test` — no `--cfg loom` build flag and
//!   no separate CI matrix entry is required for correctness, though CI
//!   still runs the model tests as a dedicated job.
//! * Model bodies must be deterministic (no wall clock, no OS randomness):
//!   schedules are replayed from recorded decision prefixes, and a body
//!   whose runnable-thread sets diverge between replays aborts the run.
//!
//! Threads are real OS threads serialized by a token: at each sync
//! operation the running thread hands the token to the scheduler, which
//! picks the next runnable thread according to the schedule being
//! explored.  A blocked set plus runnable-set emptiness check gives
//! deadlock detection for free.

mod rt;

pub use rt::model;

pub mod thread {
    //! Model-aware replacement for `std::thread`.

    use crate::rt;
    use std::panic::{self, AssertUnwindSafe};
    use std::sync::Arc;

    /// Handle to a model thread; joining is a blocking scheduler operation.
    pub struct JoinHandle<T> {
        inner: std::thread::JoinHandle<T>,
        tid: usize,
        exec: Arc<rt::Execution>,
    }

    /// Spawns a model thread.  Must be called from inside [`crate::model`].
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let ctx = rt::current().expect("loom::thread::spawn called outside loom::model");
        let tid = ctx.exec.register_thread();
        let exec = Arc::clone(&ctx.exec);
        let inner = std::thread::spawn(move || {
            rt::set_current(Some(rt::Ctx {
                exec: Arc::clone(&exec),
                tid,
            }));
            // The first-schedule wait must sit inside the catch: it panics
            // when the run aborts, and `finish` must still be reached or
            // the host's wait-for-all-finished would hang.
            match panic::catch_unwind(AssertUnwindSafe(|| {
                exec.wait_first_schedule(tid);
                f()
            })) {
                Ok(v) => {
                    exec.finish(tid, None);
                    v
                }
                Err(e) => {
                    exec.finish(tid, Some(rt::payload_to_string(&e)));
                    panic::resume_unwind(e)
                }
            }
        });
        JoinHandle {
            inner,
            tid,
            exec: ctx.exec,
        }
    }

    impl<T> JoinHandle<T> {
        /// Blocks (in the model scheduler) until the thread finishes.
        pub fn join(self) -> std::thread::Result<T> {
            if let Some(ctx) = rt::current() {
                self.exec.block_on_join(ctx.tid, self.tid);
            }
            self.inner.join()
        }
    }

    /// An explicit scheduling point with no memory effect.
    pub fn yield_now() {
        if let Some(ctx) = rt::current() {
            ctx.exec.switch(ctx.tid);
        }
    }
}

pub mod sync {
    //! Model-aware replacements for `std::sync` types.

    pub use std::sync::Arc;

    use crate::rt;
    use std::ops::{Deref, DerefMut};
    use std::sync::{LockResult, OnceLock};

    /// A mutex whose lock acquisition is a scheduler blocking point.
    ///
    /// Outside a model it degrades to a plain `std::sync::Mutex`.
    pub struct Mutex<T> {
        inner: std::sync::Mutex<T>,
        id: OnceLock<usize>,
    }

    impl<T> Mutex<T> {
        /// Creates a new model mutex.
        pub fn new(value: T) -> Mutex<T> {
            Mutex {
                inner: std::sync::Mutex::new(value),
                id: OnceLock::new(),
            }
        }

        /// Acquires the mutex, blocking the model thread until available.
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            if let Some(ctx) = rt::current() {
                let id = *self.id.get_or_init(|| ctx.exec.register_mutex());
                ctx.exec.switch(ctx.tid);
                while !ctx.exec.try_acquire_mutex(id, ctx.tid) {
                    ctx.exec.block_on_mutex(ctx.tid, id);
                }
                let guard = self
                    .inner
                    .try_lock()
                    .expect("scheduler owner bookkeeping guarantees exclusivity");
                Ok(MutexGuard {
                    guard: Some(guard),
                    release: Some((ctx, id)),
                })
            } else {
                let guard = self.inner.lock().unwrap_or_else(|p| p.into_inner());
                Ok(MutexGuard {
                    guard: Some(guard),
                    release: None,
                })
            }
        }

        /// Consumes the mutex, returning the inner value.
        pub fn into_inner(self) -> LockResult<T> {
            Ok(self.inner.into_inner().unwrap_or_else(|p| p.into_inner()))
        }
    }

    /// RAII guard; dropping releases the lock and wakes blocked threads.
    pub struct MutexGuard<'a, T> {
        guard: Option<std::sync::MutexGuard<'a, T>>,
        release: Option<(rt::Ctx, usize)>,
    }

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.guard.as_ref().expect("guard live until drop")
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.guard.as_mut().expect("guard live until drop")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // Release the std guard before telling the scheduler the mutex
            // is free, so a woken thread's try_lock cannot race it.
            drop(self.guard.take());
            if let Some((ctx, id)) = self.release.take() {
                ctx.exec.release_mutex(id);
            }
        }
    }

    pub mod atomic {
        //! Atomics whose every operation is a scheduling point.
        //!
        //! All operations execute `SeqCst` regardless of the ordering
        //! argument — see the crate docs for why.

        pub use std::sync::atomic::Ordering;

        use crate::rt;

        fn scheduling_point() {
            if let Some(ctx) = rt::current() {
                ctx.exec.switch(ctx.tid);
            }
        }

        macro_rules! model_atomic {
            ($name:ident, $std:ident, $ty:ty) => {
                /// Model-checked atomic; every access is a scheduling point.
                #[derive(Debug, Default)]
                pub struct $name(std::sync::atomic::$std);

                impl $name {
                    /// Creates a new atomic with the given initial value.
                    pub fn new(v: $ty) -> Self {
                        Self(std::sync::atomic::$std::new(v))
                    }

                    /// Atomic load (always `SeqCst`).
                    pub fn load(&self, _order: Ordering) -> $ty {
                        scheduling_point();
                        self.0.load(Ordering::SeqCst)
                    }

                    /// Atomic store (always `SeqCst`).
                    pub fn store(&self, v: $ty, _order: Ordering) {
                        scheduling_point();
                        self.0.store(v, Ordering::SeqCst)
                    }

                    /// Atomic swap (always `SeqCst`).
                    pub fn swap(&self, v: $ty, _order: Ordering) -> $ty {
                        scheduling_point();
                        self.0.swap(v, Ordering::SeqCst)
                    }

                    /// Atomic compare-exchange (always `SeqCst`).
                    pub fn compare_exchange(
                        &self,
                        current: $ty,
                        new: $ty,
                        _success: Ordering,
                        _failure: Ordering,
                    ) -> Result<$ty, $ty> {
                        scheduling_point();
                        self.0
                            .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                    }

                    /// Same exploration as [`Self::compare_exchange`]; the
                    /// shim never fails spuriously.
                    pub fn compare_exchange_weak(
                        &self,
                        current: $ty,
                        new: $ty,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$ty, $ty> {
                        self.compare_exchange(current, new, success, failure)
                    }
                }
            };
        }

        macro_rules! model_atomic_arith {
            ($name:ident, $ty:ty) => {
                impl $name {
                    /// Atomic add, returning the previous value.
                    pub fn fetch_add(&self, v: $ty, _order: Ordering) -> $ty {
                        scheduling_point();
                        self.0.fetch_add(v, Ordering::SeqCst)
                    }

                    /// Atomic subtract, returning the previous value.
                    pub fn fetch_sub(&self, v: $ty, _order: Ordering) -> $ty {
                        scheduling_point();
                        self.0.fetch_sub(v, Ordering::SeqCst)
                    }

                    /// Atomic max, returning the previous value.
                    pub fn fetch_max(&self, v: $ty, _order: Ordering) -> $ty {
                        scheduling_point();
                        self.0.fetch_max(v, Ordering::SeqCst)
                    }
                }
            };
        }

        model_atomic!(AtomicU64, AtomicU64, u64);
        model_atomic!(AtomicU32, AtomicU32, u32);
        model_atomic!(AtomicUsize, AtomicUsize, usize);
        model_atomic!(AtomicI32, AtomicI32, i32);
        model_atomic!(AtomicBool, AtomicBool, bool);

        model_atomic_arith!(AtomicU64, u64);
        model_atomic_arith!(AtomicU32, u32);
        model_atomic_arith!(AtomicUsize, usize);
        model_atomic_arith!(AtomicI32, i32);

        impl AtomicBool {
            /// Atomic OR, returning the previous value.
            pub fn fetch_or(&self, v: bool, _order: Ordering) -> bool {
                scheduling_point();
                self.0.fetch_or(v, Ordering::SeqCst)
            }

            /// Atomic AND, returning the previous value.
            pub fn fetch_and(&self, v: bool, _order: Ordering) -> bool {
                scheduling_point();
                self.0.fetch_and(v, Ordering::SeqCst)
            }
        }
    }
}
