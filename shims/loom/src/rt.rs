//! The exploration runtime: token-passing scheduler + DFS over schedules.
//!
//! One model run executes the body with a fixed *decision prefix*: at every
//! scheduling point where more than one thread is runnable, the scheduler
//! either replays the recorded choice or (past the prefix) picks the first
//! runnable thread and records the branch width.  After the run, the last
//! decision with an unexplored sibling is incremented and everything after
//! it discarded — classic depth-first search, the same strategy loom and
//! CHESS use.  Exploration terminates when no decision has siblings left.

use std::any::Any;
use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Upper bound on scheduling decisions in one run; a model hitting this is
/// looping (e.g. an unbounded spin) and cannot be explored exhaustively.
const MAX_BRANCHES_PER_RUN: usize = 10_000;

/// Upper bound on distinct schedules; models should stay small (two or
/// three threads, a handful of operations each).
const MAX_SCHEDULES: usize = 250_000;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    Runnable,
    BlockedMutex(usize),
    BlockedJoin(usize),
    Finished,
}

struct State {
    threads: Vec<TState>,
    /// Which thread currently holds the execution token.
    active: usize,
    /// Decisions to replay (from the previous run's backtrack).
    prefix: Vec<usize>,
    /// `(chosen, options)` for every branching decision made this run.
    decisions: Vec<(usize, usize)>,
    /// Owner per registered model mutex.
    mutex_owner: Vec<Option<usize>>,
    /// First panic observed in any model thread.
    panic_msg: Option<String>,
    /// Set on panic or deadlock: all threads unwind at their next
    /// scheduling point so the run can terminate.
    abort: bool,
}

/// One exploration run's shared scheduler state.
pub(crate) struct Execution {
    state: Mutex<State>,
    cv: Condvar,
}

impl Execution {
    fn new(prefix: Vec<usize>) -> Arc<Execution> {
        Arc::new(Execution {
            state: Mutex::new(State {
                threads: vec![TState::Runnable],
                active: 0,
                prefix,
                decisions: Vec::new(),
                mutex_owner: Vec::new(),
                panic_msg: None,
                abort: false,
            }),
            cv: Condvar::new(),
        })
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Registers a new thread (runnable, not yet scheduled); returns its id.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.lock();
        st.threads.push(TState::Runnable);
        st.threads.len() - 1
    }

    /// Registers a model mutex; returns its id.
    pub(crate) fn register_mutex(&self) -> usize {
        let mut st = self.lock();
        st.mutex_owner.push(None);
        st.mutex_owner.len() - 1
    }

    /// Picks the next thread to hold the token.  Records a DFS decision
    /// when more than one thread is runnable; flags deadlock when none is
    /// but some remain blocked.
    fn pick_next(st: &mut State, cv: &Condvar) {
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == TState::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if st.threads.iter().any(|s| *s != TState::Finished) {
                Self::flag_abort(st, "deadlock: every live model thread is blocked".to_string());
            }
            cv.notify_all();
            return;
        }
        let chosen = if runnable.len() == 1 {
            runnable[0]
        } else {
            let k = st.decisions.len();
            let i = if k < st.prefix.len() {
                let i = st.prefix[k];
                assert!(
                    i < runnable.len(),
                    "schedule replay diverged: model body is nondeterministic"
                );
                i
            } else {
                0
            };
            st.decisions.push((i, runnable.len()));
            assert!(
                st.decisions.len() <= MAX_BRANCHES_PER_RUN,
                "model exceeds {MAX_BRANCHES_PER_RUN} scheduling decisions; \
                 is a thread spinning?"
            );
            runnable[i]
        };
        st.active = chosen;
        cv.notify_all();
    }

    fn flag_abort(st: &mut State, msg: String) {
        if st.panic_msg.is_none() {
            st.panic_msg = Some(msg);
        }
        st.abort = true;
        // Unblock everything so the waiting loops can observe `abort` and
        // unwind; they re-check the flag before touching shared data.
        for s in st.threads.iter_mut() {
            if matches!(s, TState::BlockedMutex(_) | TState::BlockedJoin(_)) {
                *s = TState::Runnable;
            }
        }
    }

    fn wait_until_scheduled<'a>(
        &'a self,
        mut st: MutexGuard<'a, State>,
        tid: usize,
    ) -> MutexGuard<'a, State> {
        while !st.abort && (st.active != tid || st.threads[tid] != TState::Runnable) {
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        if st.abort {
            drop(st);
            panic!("loom: run aborted");
        }
        st
    }

    /// A scheduling point: hands the token to the scheduler and returns
    /// when this thread is scheduled again (possibly immediately).
    pub(crate) fn switch(&self, tid: usize) {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            panic!("loom: run aborted");
        }
        Self::pick_next(&mut st, &self.cv);
        drop(self.wait_until_scheduled(st, tid));
    }

    /// First token acquisition of a spawned thread.
    pub(crate) fn wait_first_schedule(&self, tid: usize) {
        let st = self.lock();
        drop(self.wait_until_scheduled(st, tid));
    }

    /// Attempts to take ownership of a model mutex.
    pub(crate) fn try_acquire_mutex(&self, id: usize, tid: usize) -> bool {
        let mut st = self.lock();
        if st.mutex_owner[id].is_none() {
            st.mutex_owner[id] = Some(tid);
            true
        } else {
            false
        }
    }

    /// Blocks until the mutex is released (then re-contends in the caller).
    pub(crate) fn block_on_mutex(&self, tid: usize, id: usize) {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            panic!("loom: run aborted");
        }
        st.threads[tid] = TState::BlockedMutex(id);
        Self::pick_next(&mut st, &self.cv);
        drop(self.wait_until_scheduled(st, tid));
    }

    /// Releases a model mutex and wakes threads blocked on it.
    pub(crate) fn release_mutex(&self, id: usize) {
        let mut st = self.lock();
        st.mutex_owner[id] = None;
        for s in st.threads.iter_mut() {
            if *s == TState::BlockedMutex(id) {
                *s = TState::Runnable;
            }
        }
        self.cv.notify_all();
    }

    /// Blocks until `target` finishes.
    pub(crate) fn block_on_join(&self, tid: usize, target: usize) {
        loop {
            let mut st = self.lock();
            if st.abort {
                drop(st);
                panic!("loom: run aborted");
            }
            if st.threads[target] == TState::Finished {
                return;
            }
            st.threads[tid] = TState::BlockedJoin(target);
            Self::pick_next(&mut st, &self.cv);
            drop(self.wait_until_scheduled(st, tid));
        }
    }

    /// Marks `tid` finished (recording its panic, if any), wakes joiners
    /// and hands the token onward.
    pub(crate) fn finish(&self, tid: usize, panicked: Option<String>) {
        let mut st = self.lock();
        if let Some(msg) = panicked {
            Self::flag_abort(&mut st, msg);
        }
        st.threads[tid] = TState::Finished;
        for s in st.threads.iter_mut() {
            if *s == TState::BlockedJoin(tid) {
                *s = TState::Runnable;
            }
        }
        if st.abort {
            self.cv.notify_all();
        } else {
            Self::pick_next(&mut st, &self.cv);
        }
    }

    /// Waits (on the host thread, outside the token protocol) until every
    /// model thread has finished; returns the run's decisions and panic.
    fn wait_done(&self) -> (Vec<(usize, usize)>, Option<String>) {
        let mut st = self.lock();
        while st.threads.iter().any(|s| *s != TState::Finished) {
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        (st.decisions.clone(), st.panic_msg.clone())
    }
}

/// Per-thread handle back to the execution being explored.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Execution>,
    pub(crate) tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

pub(crate) fn current() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

pub(crate) fn payload_to_string(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked".to_string()
    }
}

/// Computes the next DFS prefix, or `None` when the space is exhausted.
fn next_prefix(mut decisions: Vec<(usize, usize)>) -> Option<Vec<usize>> {
    loop {
        let (chosen, options) = decisions.pop()?;
        if chosen + 1 < options {
            decisions.push((chosen + 1, options));
            return Some(decisions.into_iter().map(|(c, _)| c).collect());
        }
    }
}

/// Runs `body` under every interleaving of its synchronization operations.
///
/// Panics (with the failing schedule's decision prefix) if any interleaving
/// panics, fails an assertion, or deadlocks.
pub fn model<F>(body: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let body = Arc::new(body);
    let mut prefix: Vec<usize> = Vec::new();
    let mut schedules = 0usize;
    loop {
        schedules += 1;
        assert!(
            schedules <= MAX_SCHEDULES,
            "loom shim: more than {MAX_SCHEDULES} schedules; shrink the model"
        );
        let exec = Execution::new(prefix.clone());
        let (exec0, body0) = (Arc::clone(&exec), Arc::clone(&body));
        std::thread::spawn(move || {
            set_current(Some(Ctx {
                exec: Arc::clone(&exec0),
                tid: 0,
            }));
            let result = panic::catch_unwind(AssertUnwindSafe(|| body0()));
            exec0.finish(0, result.err().map(|e| payload_to_string(&*e)));
        });
        let (decisions, panic_msg) = exec.wait_done();
        if let Some(msg) = panic_msg {
            panic!(
                "loom model failed on schedule {schedules} \
                 (replay prefix {prefix:?}): {msg}"
            );
        }
        match next_prefix(decisions) {
            Some(p) => prefix = p,
            None => break,
        }
    }
}
