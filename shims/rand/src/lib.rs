//! Offline stand-in for the `rand` crate.
//!
//! The workspace's own deterministic generators (af-chaos's SplitMix64)
//! cover its randomness needs; this crate provides a minimal `Rng` /
//! `thread_rng` so stray `rand` usage still compiles without network
//! access.  Not cryptographically secure.

use std::cell::Cell;

/// Minimal random-value source.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value in `[0, bound)`.
    fn gen_range_u64(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.next_u64() % bound
    }
}

/// A SplitMix64 generator seeded from the thread and time.
pub struct ThreadRng {
    state: u64,
}

impl Rng for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

thread_local! {
    static SEED: Cell<u64> = const { Cell::new(0) };
}

/// A generator seeded per call from a thread-local counter and the clock.
pub fn thread_rng() -> ThreadRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let bump = SEED.with(|s| {
        let v = s.get().wrapping_add(1);
        s.set(v);
        v
    });
    ThreadRng {
        state: nanos ^ bump.rotate_left(32),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_varied_values() {
        let mut rng = thread_rng();
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
        for _ in 0..100 {
            assert!(rng.gen_range_u64(10) < 10);
        }
    }
}
