//! Offline stand-in for the `bytes` crate.
//!
//! The workspace declares `bytes` but does not currently use any of its
//! items; this empty crate satisfies the dependency without network access.
