//! Offline stand-in for the `crossbeam-channel` crate.
//!
//! The build container has no network access and no registry cache, so the
//! workspace vendors the narrow channel subset it actually uses: `bounded` /
//! `unbounded` MPMC channels with `send` / `try_send` / `recv` /
//! `recv_timeout` / `try_recv` / `len`, and crossbeam's disconnect
//! semantics (receivers drain remaining messages after the last sender
//! drops; senders fail once every receiver is gone).  Built on
//! `std::sync::{Mutex, Condvar}`; correctness over micro-optimisation.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver is gone.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Sender::try_send`].
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The bounded channel is at capacity.
    Full(T),
    /// Every receiver is gone.
    Disconnected(T),
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender is gone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message was waiting.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Channel<T> {
    inner: Mutex<Inner<T>>,
    cap: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Creates a channel holding at most `cap` messages.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap))
}

/// Creates a channel with no capacity bound.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Channel {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        cap,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

/// The sending half of a channel.
pub struct Sender<T> {
    chan: Arc<Channel<T>>,
}

impl<T> Sender<T> {
    /// Sends `msg`, blocking while a bounded channel is full.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut inner = self.chan.inner.lock().expect("channel poisoned");
        loop {
            if inner.receivers == 0 {
                return Err(SendError(msg));
            }
            match self.chan.cap {
                Some(cap) if inner.queue.len() >= cap => {
                    inner = self
                        .chan
                        .not_full
                        .wait(inner)
                        .expect("channel poisoned");
                }
                _ => break,
            }
        }
        inner.queue.push_back(msg);
        drop(inner);
        self.chan.not_empty.notify_one();
        Ok(())
    }

    /// Sends `msg` without blocking.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.chan.inner.lock().expect("channel poisoned");
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if let Some(cap) = self.chan.cap {
            if inner.queue.len() >= cap {
                return Err(TrySendError::Full(msg));
            }
        }
        inner.queue.push_back(msg);
        drop(inner);
        self.chan.not_empty.notify_one();
        Ok(())
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.chan.inner.lock().expect("channel poisoned").queue.len()
    }

    /// Whether no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.chan.inner.lock().expect("channel poisoned").senders += 1;
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.chan.inner.lock().expect("channel poisoned");
        inner.senders -= 1;
        let last = inner.senders == 0;
        drop(inner);
        if last {
            self.chan.not_empty.notify_all();
        }
    }
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    chan: Arc<Channel<T>>,
}

impl<T> Receiver<T> {
    /// Receives a message, blocking until one arrives or every sender is
    /// gone (remaining messages are still drained first).
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.chan.inner.lock().expect("channel poisoned");
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.chan.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self
                .chan
                .not_empty
                .wait(inner)
                .expect("channel poisoned");
        }
    }

    /// Receives a message, giving up after `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.chan.inner.lock().expect("channel poisoned");
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.chan.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .chan
                .not_empty
                .wait_timeout(inner, deadline - now)
                .expect("channel poisoned");
            inner = guard;
        }
    }

    /// Receives a message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.chan.inner.lock().expect("channel poisoned");
        if let Some(msg) = inner.queue.pop_front() {
            drop(inner);
            self.chan.not_full.notify_one();
            return Ok(msg);
        }
        if inner.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.chan.inner.lock().expect("channel poisoned").queue.len()
    }

    /// Whether no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A blocking iterator that ends when every sender is gone.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.chan.inner.lock().expect("channel poisoned").receivers += 1;
        Receiver {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.chan.inner.lock().expect("channel poisoned");
        inner.receivers -= 1;
        let last = inner.receivers == 0;
        drop(inner);
        if last {
            self.chan.not_full.notify_all();
        }
    }
}

/// Blocking message iterator (see [`Receiver::iter`]).
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bounded_try_send_reports_full_then_drains() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
    }

    #[test]
    fn disconnect_semantics_match_crossbeam() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        // Remaining messages drain before the disconnect error.
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));

        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_timeout_times_out_and_wakes() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            tx.send(5).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(5));
        t.join().unwrap();
    }

    #[test]
    fn bounded_send_blocks_until_room() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || {
            tx.send(2).unwrap(); // Blocks until the receiver drains one.
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    }
}
