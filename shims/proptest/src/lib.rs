//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! property-testing subset its suites use: the `proptest!` macro, value
//! strategies (`any`, ranges, `Just`, `prop_oneof!`, `prop::collection::vec`,
//! character-class string patterns), `prop_map`, and the assertion macros.
//! Cases are generated from a deterministic per-test PRNG; there is **no
//! shrinking** — a failure reports the panic from the raw generated case.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Test-runner types (`ProptestConfig` and case rejection).
pub mod test_runner {
    /// Configuration for a `proptest!` block.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// A case discarded by `prop_assume!`.
    #[derive(Clone, Copy, Debug)]
    pub struct Rejected;

    /// Runs one generated case (the indirection keeps the expansion of
    /// `proptest!` free of clippy's redundant-closure-call lint).
    pub fn run_case<F: FnOnce() -> Result<(), Rejected>>(f: F) -> Result<(), Rejected> {
        f()
    }

    /// The deterministic SplitMix64 generator behind every strategy.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from the test name so each property has a stable stream.
        pub fn for_test(name: &str) -> TestRng {
            let mut seed = 0xA076_1D64_78BD_642Fu64;
            for b in name.bytes() {
                seed = (seed ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
            }
            TestRng { state: seed }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, bound)` (`bound` 0 yields 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                0
            } else {
                self.next_u64() % bound
            }
        }

        /// A uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Strategy trait and combinators.
pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating random values of one type.
    ///
    /// Unlike real proptest there is no value tree: `generate` yields a
    /// plain value and failures do not shrink.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Discards generated values failing `f` (retrying a bounded
        /// number of times).
        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }

        /// Type-erases the strategy (for heterogeneous `prop_oneof!` arms).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive candidates");
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The strategy behind [`crate::any`].
    pub struct Any<T>(pub std::marker::PhantomData<T>);

    impl<T: crate::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Uniform choice between boxed alternatives (see `prop_oneof!`).
    pub struct OneOf<V>(pub Vec<BoxedStrategy<V>>);

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].generate(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident / $v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A / a);
    tuple_strategy!(A / a, B / b);
    tuple_strategy!(A / a, B / b, C / c);
    tuple_strategy!(A / a, B / b, C / c, D / d);
    tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
    tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);
    tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g);
    tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g, H / h);
}

use strategy::Strategy;
use test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Generates an unconstrained random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {
        $(impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })+
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        (rng.unit_f64() * 2.0 - 1.0) as f32 * 1.0e6
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.unit_f64() * 2.0 - 1.0) * 1.0e9
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> strategy::Any<T> {
    strategy::Any(PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = u128::from(rng.next_u64()) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = u128::from(rng.next_u64()) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )+
    };
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        })+
    };
}

float_range_strategy!(f32, f64);

/// Strategies for `bool` (`proptest::bool::ANY`).
pub mod bool {
    /// Uniform true/false.
    pub const ANY: crate::strategy::Any<::core::primitive::bool> =
        crate::strategy::Any(std::marker::PhantomData);
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A length specification: exact, half-open, or inclusive.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for vectors with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// A tiny character-class pattern interpreter so string strategies like
/// `"[a-zA-Z0-9_]{0,40}"` work.  Supports exactly one `[class]{lo,hi}`
/// (or `[class]{n}` / `[class]*` / `[class]+`) production; anything else
/// panics so unsupported patterns fail loudly instead of silently.
fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let rest = pattern
        .strip_prefix('[')
        .unwrap_or_else(|| panic!("unsupported string pattern: {pattern}"));
    let (class, reps) = rest
        .split_once(']')
        .unwrap_or_else(|| panic!("unsupported string pattern: {pattern}"));
    let mut chars = Vec::new();
    let cs: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            for c in cs[i]..=cs[i + 2] {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(cs[i]);
            i += 1;
        }
    }
    assert!(!chars.is_empty(), "empty character class: {pattern}");
    let (lo, hi) = match reps {
        "*" => (0usize, 8usize),
        "+" => (1, 8),
        "" => (1, 1),
        braced => {
            let inner = braced
                .strip_prefix('{')
                .and_then(|b| b.strip_suffix('}'))
                .unwrap_or_else(|| panic!("unsupported repetition: {pattern}"));
            match inner.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse().expect("repetition bound"),
                    b.trim().parse().expect("repetition bound"),
                ),
                None => {
                    let n = inner.trim().parse().expect("repetition count");
                    (n, n)
                }
            }
        }
    };
    let len = lo + rng.below((hi - lo) as u64 + 1) as usize;
    (0..len)
        .map(|_| chars[rng.below(chars.len() as u64) as usize])
        .collect()
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

/// The `prop::` module path used by the prelude (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// The common imports: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop, Arbitrary};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Declares property tests: each function runs its body over many
/// generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run ($cfg) $($rest)* }
    };
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                $(let $arg = $strat;)*
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut rng);)*
                    let _ = $crate::test_runner::run_case(|| { { $body }; Ok(()) });
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @run ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Asserts a condition inside a property (plain assert: no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Discards the current case when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::Rejected);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::test_runner::Rejected);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<$crate::strategy::BoxedStrategy<_>> =
            vec![$($crate::strategy::Strategy::boxed($arm)),+];
        $crate::strategy::OneOf(arms)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_strings_match_class_and_length() {
        let mut rng = crate::test_runner::TestRng::for_test("pattern");
        for _ in 0..100 {
            let s = crate::generate_from_pattern("[a-zA-Z0-9_]{0,40}", &mut rng);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, y in -5i32..=5, f in 0.25f32..0.75) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec(any::<u8>(), 3..6),
            tag in prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|x| x)],
            flag in crate::bool::ANY,
        ) {
            prop_assert!(v.len() >= 3 && v.len() < 6);
            prop_assert!(matches!(tag, 1 | 2 | 5 | 6));
            // A tautology on purpose: exercises prop_assume's accept path.
            prop_assume!(usize::from(flag) + usize::from(!flag) == 1);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in any::<u16>()) {
            let x2 = u32::from(x) * 2;
            prop_assert_eq!(x2, u32::from(x) + u32::from(x));
        }
    }
}
