//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! benchmark-harness subset its benches use: `criterion_group!` /
//! `criterion_main!`, `Criterion::bench_function` / `benchmark_group`,
//! `BenchmarkId`, `Throughput`, and `Bencher::iter`.  Measurement is a
//! plain wall-clock mean over `sample_size` timed batches after a short
//! warm-up — no outlier analysis or change detection, but the printed
//! ns/iter (and derived throughput) are real measurements.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-per-iteration declaration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes moved per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id like `"name/param"`.
    pub fn new(name: impl Into<String>, param: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{param}", name.into()),
        }
    }

    /// An id carrying only the parameter.
    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> BenchmarkId {
        BenchmarkId { label }
    }
}

/// Times the closure under measurement.
pub struct Bencher {
    samples: usize,
    per_iter: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing: aim for ~10 ms per timed sample.
        let start = Instant::now();
        black_box(f());
        let first = start.elapsed().max(Duration::from_nanos(20));
        let per_sample = Duration::from_millis(10);
        let batch = (per_sample.as_nanos() / first.as_nanos()).clamp(1, 1_000_000) as usize;

        let mut best = Duration::MAX;
        let mut total = Duration::ZERO;
        let mut timed = 0u32;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed() / batch as u32;
            best = best.min(elapsed);
            total += elapsed;
            timed += 1;
        }
        self.per_iter = if timed == 0 { first } else { total / timed };
    }
}

/// The benchmark driver: collects and prints measurements.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-benchmark measurement budget (bounds sampling).
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    /// Accepted for CLI compatibility; flags are ignored.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        run_one(name, None, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declares the work per iteration for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count within this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; the budget is not enforced per group.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.throughput, self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        per_iter: Duration::ZERO,
    };
    f(&mut b);
    let ns = b.per_iter.as_secs_f64() * 1e9;
    let extra = match throughput {
        Some(Throughput::Bytes(bytes)) if ns > 0.0 => {
            let mb_s = bytes as f64 / (ns / 1e9) / (1024.0 * 1024.0);
            format!("  {mb_s:>10.1} MiB/s")
        }
        Some(Throughput::Elements(n)) if ns > 0.0 => {
            let elem_s = n as f64 / (ns / 1e9);
            format!("  {elem_s:>10.0} elem/s")
        }
        _ => String::new(),
    };
    println!("{label:<60} {ns:>12.1} ns/iter{extra}");
}

/// Declares a benchmark group function, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Bytes(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3).measurement_time(Duration::from_millis(50));
        targets = trivial
    }

    #[test]
    fn harness_runs_and_measures() {
        benches();
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("direct", |b| b.iter(|| black_box(1 + 1)));
    }
}
