//! Offline stand-in for the `parking_lot` crate.
//!
//! Provides the poison-free `Mutex` this workspace uses, as a thin wrapper
//! over `std::sync::Mutex` (a poisoned lock is recovered, matching
//! parking_lot's no-poisoning contract).

use std::fmt;

/// A guard releasing the lock on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(_) => panic!("mutex storage inaccessible"),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
