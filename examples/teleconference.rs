//! A two-server audio relay with a delay budget — the `apass` experiment
//! (§8.3) as a library program.
//!
//! Run with `cargo run --example teleconference`.
//!
//! One server's microphone carries "speech" (a tone source); a relay loop
//! records blocks from it and schedules them on a second server with a
//! strict end-to-end delay of packetization + transport + anti-jitter.
//! The receive clock is deliberately 2% slow, so it consumes fewer samples
//! than the (transmit-paced) relay delivers and the receiver's buffering
//! grows until the slip tracker resynchronizes — the clock-domain problem
//! the paper calls out as fundamental to teleconferencing.

use audiofile::client::{AcAttributes, AcMask, AudioConn};
use audiofile::device::{CaptureSink, SystemClock, ToneSource};
use audiofile::dsp::power::power_dbm_ulaw;
use audiofile::server::ServerBuilder;
use std::sync::Arc;

fn main() {
    // Transmit server: microphone carries a 440 Hz "voice".
    let tx_clock = Arc::new(SystemClock::new(8000));
    let mut tx_builder = ServerBuilder::new()
        .listen_tcp("127.0.0.1:0".parse().unwrap())
        .update_interval(std::time::Duration::from_millis(50));
    tx_builder.add_codec(
        tx_clock,
        Box::new(audiofile::device::NullSink),
        Box::new(ToneSource::ulaw(440.0, 8000.0, 9000.0)),
    );
    let tx = tx_builder.spawn().expect("tx server");

    // Receive server: speaker captured so we can measure what arrived;
    // its crystal runs 2% slow (exaggerated so the drift shows within
    // seconds; the paper's 100 ppm would take minutes).
    let rx_clock = Arc::new(SystemClock::with_drift(8000, -20_000.0));
    let (sink, speaker) = CaptureSink::new(1 << 24);
    let mut rx_builder = ServerBuilder::new()
        .listen_tcp("127.0.0.1:0".parse().unwrap())
        .update_interval(std::time::Duration::from_millis(50));
    rx_builder.add_codec(
        rx_clock,
        Box::new(sink),
        Box::new(audiofile::device::SilenceSource::new(0xFF)),
    );
    let rx = rx_builder.spawn().expect("rx server");

    let mut faud = AudioConn::open(&tx.tcp_addr().unwrap().to_string()).expect("tx connect");
    let mut taud = AudioConn::open(&rx.tcp_addr().unwrap().to_string()).expect("rx connect");
    let fac = faud
        .create_ac(0, AcMask::default(), &AcAttributes::default())
        .expect("tx ac");
    let tac = taud
        .create_ac(0, AcMask::default(), &AcAttributes::default())
        .expect("rx ac");

    // Delay budget (§8.3): 0.2 s packetization + 0.1 s anti-jitter.
    let rate = 8000u32;
    let bufsize = rate / 5; // 0.2 s blocks.
    let delay = 0.3f64;
    let nominal_slip = ((delay - 0.2) * f64::from(rate)) as i32;
    let aj = (0.05 * f64::from(rate)) as i32;

    let mut ft = faud.get_time(0).expect("tx time");
    faud.record_samples(&fac, ft, 0, false).expect("arm");
    let mut tt = taud.get_time(0).expect("rx time") + (delay * f64::from(rate)) as i32;

    let mut sliphist = [nominal_slip; 4];
    let mut next = 0;
    let mut resyncs = 0u32;
    println!("relaying 8 seconds of audio with a 300 ms delay budget…");
    for block in 0..40 {
        let (_, data) = faud
            .record_samples(&fac, ft, bufsize as usize, true)
            .expect("record");
        let tactt = taud.play_samples(&tac, tt, &data).expect("play");

        sliphist[next] = tt - tactt;
        next = (next + 1) % 4;
        let slip = (sliphist.iter().map(|&s| i64::from(s)).sum::<i64>() / 4) as i32;
        if slip < nominal_slip - aj || slip >= nominal_slip + aj {
            println!("  block {block:2}: slip {slip:5} samples — resynchronizing (audible blip)");
            tt = tactt + nominal_slip;
            sliphist = [nominal_slip; 4];
            next = 0;
            resyncs += 1;
        } else if block % 5 == 0 {
            println!("  block {block:2}: slip {slip:5} samples (band ±{aj})");
        }
        ft += bufsize;
        tt += bufsize;
    }

    std::thread::sleep(std::time::Duration::from_millis(400));
    let heard = speaker.lock();
    let voiced: Vec<u8> = heard.iter().copied().filter(|&b| b != 0xFF).collect();
    println!(
        "receiver heard {:.1} s of speech at {:.1} dBm; {resyncs} resynchronization(s)",
        voiced.len() as f64 / f64::from(rate),
        power_dbm_ulaw(&voiced)
    );
    assert!(
        resyncs >= 1,
        "a 2% clock skew should force a resync within 8 s"
    );
    drop(heard);
    tx.shutdown();
    rx.shutdown();
    println!("done");
}
