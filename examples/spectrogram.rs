//! A real-time spectrogram of server audio — the heart of `afft` (§9.5).
//!
//! Run with `cargo run --example spectrogram`.
//!
//! A server's microphone carries a frequency sweep; the client records it
//! in real time, runs windowed FFTs, and renders a terminal waterfall:
//! time flows downward, frequency rightward, brightness is power.

use audiofile::client::{AcAttributes, AcMask, AudioConn};
use audiofile::device::io::{SampleSink, SampleSource}; // Traits for the custom source.
use audiofile::device::SystemClock;
use audiofile::dsp::fft::Spectrogram;
use audiofile::dsp::g711::linear_to_ulaw;
use audiofile::dsp::window::Window;
use audiofile::server::ServerBuilder;
use audiofile::time::ATime;
use std::sync::Arc;

/// A microphone that sweeps 200 Hz → 3.4 kHz over four seconds.
struct SweepSource {
    phase: f64,
    produced: u64,
}

impl SampleSource for SweepSource {
    fn fill(&mut self, _time: ATime, out: &mut [u8]) {
        for b in out.iter_mut() {
            let t = self.produced as f64 / 8000.0;
            let freq = 200.0 + (t % 4.0) / 4.0 * 3200.0;
            self.phase += freq / 8000.0;
            let v = (self.phase * std::f64::consts::TAU).sin() * 12_000.0;
            *b = linear_to_ulaw(v as i16);
            self.produced += 1;
        }
    }
}

/// An unplugged speaker.
struct Mute;

impl SampleSink for Mute {
    fn consume(&mut self, _time: ATime, _data: &[u8]) {}
}

const SHADES: &[char] = &[' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

fn main() {
    let clock = Arc::new(SystemClock::new(8000));
    let mut builder = ServerBuilder::new()
        .listen_tcp("127.0.0.1:0".parse().unwrap())
        .update_interval(std::time::Duration::from_millis(50));
    builder.add_codec(
        clock,
        Box::new(Mute),
        Box::new(SweepSource {
            phase: 0.0,
            produced: 0,
        }),
    );
    let server = builder.spawn().expect("server");

    let mut conn = AudioConn::open(&server.tcp_addr().unwrap().to_string()).expect("connect");
    let ac = conn
        .create_ac(0, AcMask::default(), &AcAttributes::default())
        .expect("ac");

    let mut engine = Spectrogram::new(256, 256, Window::Hamming);
    let mut t = conn.get_time(0).expect("time");
    conn.record_samples(&ac, t, 0, false).expect("arm");

    println!("frequency → (0 … 4 kHz), one line ≈ 32 ms, 3 seconds total");
    let mut lines = 0;
    while lines < 90 {
        let (_, data) = conn.record_samples(&ac, t, 1024, true).expect("record");
        t += data.len() as u32;
        let pcm: Vec<f64> = data
            .iter()
            .map(|&b| f64::from(audiofile::dsp::g711::ulaw_to_linear(b)))
            .collect();
        for spectrum in engine.feed(&pcm) {
            render(&spectrum);
            lines += 1;
        }
    }
    server.shutdown();
}

fn render(spectrum: &[f64]) {
    let cols = 64;
    let per = spectrum.len() / cols;
    let full = (32_768.0f64 * 256.0).powi(2) / 16.0;
    let mut line = String::new();
    for c in 0..cols {
        let p: f64 = spectrum[c * per..(c + 1) * per].iter().sum::<f64>() / per as f64;
        let v = ((10.0 * (p / full).max(1e-12).log10() + 60.0) / 60.0).clamp(0.0, 1.0);
        let idx = (v * (SHADES.len() - 1) as f64).round() as usize;
        line.push(SHADES[idx.min(SHADES.len() - 1)]);
    }
    println!("{line}");
}
