//! `abiff` as a library program: audio notification of new mail (§9.6).
//!
//! Run with `cargo run --example audio_biff`.
//!
//! The paper's `abiff` used a speech synthesizer to announce arriving
//! mail; this one plays a rising chime.  A temporary file stands in for
//! the mailbox, and a writer thread "delivers mail" into it while the
//! watcher loop plays the notification through the server.

use audiofile::client::{AcAttributes, AcMask, AudioConn};
use audiofile::device::{CaptureSink, SystemClock};
use audiofile::dsp::tone::{tone_pair, TonePairSpec};
use audiofile::server::ServerBuilder;
use std::io::Write;
use std::sync::Arc;

fn main() {
    let clock = Arc::new(SystemClock::new(8000));
    let (sink, speaker) = CaptureSink::new(1 << 22);
    let mut builder = ServerBuilder::new()
        .listen_tcp("127.0.0.1:0".parse().unwrap())
        .update_interval(std::time::Duration::from_millis(50));
    builder.add_codec(
        clock,
        Box::new(sink),
        Box::new(audiofile::device::SilenceSource::new(0xFF)),
    );
    let server = builder.spawn().expect("server");

    // The "mailbox".
    let mailbox = std::env::temp_dir().join(format!("audio-biff-demo-{}", std::process::id()));
    std::fs::write(&mailbox, b"").expect("create mailbox");

    // A mail delivery agent drops two messages, a second apart.
    let mbox = mailbox.clone();
    let postman = std::thread::spawn(move || {
        for i in 1..=2 {
            std::thread::sleep(std::time::Duration::from_millis(900));
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&mbox)
                .expect("open mailbox");
            writeln!(f, "From demo{i}@example.org: hello").unwrap();
            println!("[postman] delivered message {i}");
        }
    });

    // The biff loop: poll the mailbox, chime on growth.
    let mut conn = AudioConn::open(&server.tcp_addr().unwrap().to_string()).expect("connect");
    let device = conn.find_default_device().expect("device");
    let ac = conn
        .create_ac(device, AcMask::default(), &AcAttributes::default())
        .expect("ac");
    let mut chime = tone_pair(
        TonePairSpec {
            f1: 660.0,
            db1: -10.0,
            f2: 880.0,
            db2: -10.0,
        },
        8000.0,
        1200,
        64,
    );
    chime.extend(tone_pair(
        TonePairSpec {
            f1: 880.0,
            db1: -8.0,
            f2: 1320.0,
            db2: -8.0,
        },
        8000.0,
        1600,
        64,
    ));

    let mut last_len = 0u64;
    let mut notified = 0;
    while notified < 2 {
        std::thread::sleep(std::time::Duration::from_millis(100));
        let len = std::fs::metadata(&mailbox).map(|m| m.len()).unwrap_or(0);
        if len > last_len {
            let t = conn.get_time(device).expect("time");
            conn.play_samples(&ac, t + 400u32, &chime).expect("chime");
            notified += 1;
            println!("[biff] new mail! ({len} bytes in the mailbox)");
        }
        last_len = len;
    }

    // Let the second chime finish, then verify it reached the speaker.
    std::thread::sleep(std::time::Duration::from_millis(600));
    let played = speaker.lock().iter().filter(|&&b| b != 0xFF).count();
    println!("speaker carried {played} chime bytes");
    assert!(played >= chime.len(), "chimes did not play");

    postman.join().unwrap();
    let _ = std::fs::remove_file(&mailbox);
    server.shutdown();
    println!("done");
}
