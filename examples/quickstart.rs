//! Quickstart: start a server, connect, play a tone, record it back.
//!
//! Run with `cargo run --example quickstart`.
//!
//! This is the whole AudioFile loop in one file: a server with a simulated
//! 8 kHz codec whose speaker is wired to its microphone, a client that
//! schedules a dial-tone at an exact device time, and a record request
//! that reads the same audio back out of the server's four-second buffer.

use audiofile::client::{AcAttributes, AcMask, AudioConn};
use audiofile::device::{SystemClock, Wire};
use audiofile::dsp::g711::ULAW_SILENCE;
use audiofile::dsp::power::power_dbm_ulaw;
use audiofile::dsp::telephony::call_progress;
use audiofile::dsp::tone::tone_pair;
use audiofile::server::ServerBuilder;
use std::sync::Arc;

fn main() {
    // 1. A server with one codec device; speaker wired to microphone.
    let clock = Arc::new(SystemClock::new(8000));
    let wire = Wire::new(1 << 20, ULAW_SILENCE);
    let mut builder = ServerBuilder::new()
        .listen_tcp("127.0.0.1:0".parse().unwrap())
        .update_interval(std::time::Duration::from_millis(50));
    builder.add_codec(clock, Box::new(wire.sink()), Box::new(wire.source()));
    let server = builder.spawn().expect("start server");
    let addr = server.tcp_addr().unwrap();
    println!("server listening on {addr}");

    // 2. Connect like any network client would.
    let mut conn = AudioConn::open(&addr.to_string()).expect("connect");
    println!(
        "connected to {} ({}), {} device(s)",
        conn.name(),
        conn.vendor(),
        conn.devices().len()
    );
    let device = conn.find_default_device().expect("a device");
    let ac = conn
        .create_ac(device, AcMask::default(), &AcAttributes::default())
        .expect("create audio context");

    // 3. Arm the recorder, then schedule one second of dial tone 100 ms in
    //    the future — the client controls exactly when sound happens.
    let t0 = conn.get_time(device).expect("get time");
    conn.record_samples(&ac, t0, 0, false)
        .expect("arm recorder");
    let dialtone = tone_pair(call_progress("dialtone").unwrap().spec, 8000.0, 8000, 64);
    let start = t0 + 800u32; // 100 ms ahead at 8 kHz.
    let now = conn.play_samples(&ac, start, &dialtone).expect("play");
    println!("scheduled 1 s of dial tone at t={start} (now t={now})");

    // 4. Record the same interval; the blocking record returns once the
    //    data has actually passed through the "hardware".
    let (t_done, heard) = conn
        .record_samples(&ac, start, dialtone.len(), true)
        .expect("record");
    println!(
        "recorded {} bytes back (device time now {t_done})",
        heard.len()
    );
    println!("loopback power: {:.2} dBm", power_dbm_ulaw(&heard));
    assert!(power_dbm_ulaw(&heard) > -15.0, "tone did not loop back");

    server.shutdown();
    println!("done");
}
