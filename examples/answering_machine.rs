//! The trivial answering machine of §8.6, as a program instead of a shell
//! script.
//!
//! Run with `cargo run --example answering_machine`.
//!
//! The original composed core clients in a strict sequence: wait for the
//! phone to ring, answer it, play the outgoing message, record the
//! incoming message until the caller stops talking, hang up.  Here the
//! same sequence drives a simulated telephone line, with a scripted
//! "caller" on the office side of the line.

use audiofile::client::{AcAttributes, AcMask, AudioConn, EventDetail, EventMask};
use audiofile::device::SystemClock;
use audiofile::dsp::g711::ULAW_SILENCE;
use audiofile::dsp::power::{power_dbm_ulaw, SilenceDetector};
use audiofile::dsp::telephony::dtmf_for_digit;
use audiofile::dsp::tone::{tone_pair, TonePairSpec};
use audiofile::server::ServerBuilder;
use std::sync::Arc;

const PHONE_DEV: u8 = 0;

fn main() {
    // The LoFi-shaped server: phone codec + local codec + HiFi.
    let clock = Arc::new(SystemClock::new(8000));
    let (builder, line) = ServerBuilder::lofi(clock);
    let server = builder
        .listen_tcp("127.0.0.1:0".parse().unwrap())
        .update_interval(std::time::Duration::from_millis(50))
        .spawn()
        .expect("start server");

    // A scripted caller: ring, then (once answered) speak a few "words"
    // of tone and press a DTMF key, then fall silent.
    let caller_line = line.clone();
    let caller = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(200));
        println!("[caller] dialing in: ring!");
        caller_line.office_ring(true);
        // Wait until answered.
        while !caller_line.query().0 {
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        // Listen to the greeting for a moment.
        std::thread::sleep(std::time::Duration::from_millis(700));
        let _greeting = caller_line.office_recv(4000);
        println!("[caller] heard the greeting, leaving a message");
        let word = tone_pair(
            TonePairSpec {
                f1: 300.0,
                db1: -10.0,
                f2: 450.0,
                db2: -12.0,
            },
            8000.0,
            2400,
            64,
        );
        for _ in 0..3 {
            caller_line.office_send(&word);
            caller_line.office_send(&vec![ULAW_SILENCE; 800]);
            std::thread::sleep(std::time::Duration::from_millis(400));
        }
        caller_line.office_send(&tone_pair(
            dtmf_for_digit('5').unwrap().spec,
            8000.0,
            480,
            16,
        ));
        println!("[caller] pressed '5', hanging up");
    });

    // The answering machine proper.
    let mut conn = AudioConn::open(&server.tcp_addr().unwrap().to_string()).expect("connect");
    conn.select_events(PHONE_DEV, EventMask::ALL)
        .expect("select events");
    let ac = conn
        .create_ac(PHONE_DEV, AcMask::default(), &AcAttributes::default())
        .expect("create ac");

    // Wait for the phone to ring (the `aevents -ringcount` step).
    println!("[machine] waiting for a call…");
    let ev = conn
        .if_event(|e| matches!(e.detail, EventDetail::Ring { ringing: true }))
        .expect("ring event");
    println!("[machine] ring at device time {}", ev.device_time);

    // Answer the phone (`ahs off`).
    conn.hook_switch(PHONE_DEV, true).expect("answer");

    // Play the outgoing message (`aplay -f outgoing_message.snd`).
    let greeting = tone_pair(
        TonePairSpec {
            f1: 523.0,
            db1: -10.0,
            f2: 659.0,
            db2: -10.0,
        },
        8000.0,
        4000,
        64,
    );
    let t = conn.get_time(PHONE_DEV).expect("time");
    conn.record_samples(&ac, t, 0, false).expect("arm recorder");
    let after_greeting = t + 800u32 + greeting.len() as u32;
    conn.play_samples(&ac, t + 800u32, &greeting)
        .expect("greeting");
    println!("[machine] greeting playing; recording after the beep");

    // Record up to 10 seconds, or until the caller stops talking
    // (`arecord -silentlevel -35 -silenttime 1.5`).
    let mut detector = SilenceDetector::new(-35.0, 1.5, 8000.0);
    let mut message = Vec::new();
    let mut cursor = after_greeting;
    for _ in 0..(10 * 8000 / 1000) {
        let (_, block) = conn
            .record_samples(&ac, cursor, 1000, true)
            .expect("record block");
        cursor += block.len() as u32;
        let dbm = power_dbm_ulaw(&block);
        message.extend_from_slice(&block);
        if detector.feed(dbm, block.len()) {
            println!("[machine] caller went silent");
            break;
        }
    }

    // Hang up (`ahs on`).
    conn.hook_switch(PHONE_DEV, false).expect("hang up");
    conn.sync().expect("sync");

    let secs = message.len() as f64 / 8000.0;
    println!(
        "[machine] saved a {secs:.1} s message at {:.1} dBm average",
        power_dbm_ulaw(&message)
    );

    // Check the DTMF key the caller pressed arrived as an event.
    if let Ok(Some(ev)) =
        conn.check_if_event(|e| matches!(e.detail, EventDetail::Dtmf { down: true, .. }))
    {
        if let EventDetail::Dtmf { digit, .. } = ev.detail {
            println!("[machine] caller pressed '{}'", digit as char);
        }
    }

    caller.join().unwrap();
    server.shutdown();
    println!("done");
}
