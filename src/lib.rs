//! AudioFile: a network-transparent system for distributed audio
//! applications, reimplemented in Rust.
//!
//! This facade crate re-exports the workspace's public layers:
//!
//! * [`client`] — the client library (`libAF`): connections, audio
//!   contexts, timed play/record, events.
//! * [`server`] — the audio server: builder, buffering engine, transports.
//! * [`proto`] — the wire protocol (37 requests, 5 events, atoms).
//! * [`dsp`] — the utility substrate (`libAFUtil`): G.711, gain/mixing
//!   tables, tones, DTMF, FFT, power measurement.
//! * [`device`] — simulated audio hardware: clocks, rings, phone line,
//!   LineServer.
//! * [`chaos`] — deterministic fault injection for streams and UDP links,
//!   used to test failure handling end to end.
//! * [`time`] — the 32-bit wrapping device-time abstraction.
//! * [`util`] — client utility procedures: dialing, sound file I/O.
//!
//! # Quickstart
//!
//! ```
//! use audiofile::client::AudioConn;
//! use audiofile::device::{CaptureSink, SilenceSource, SystemClock};
//! use audiofile::server::ServerBuilder;
//! use std::sync::Arc;
//!
//! // Run a server with one simulated 8 kHz codec device.
//! let clock = Arc::new(SystemClock::new(8000));
//! let (sink, _speaker) = CaptureSink::new(1 << 20);
//! let mut builder = ServerBuilder::new().listen_tcp("127.0.0.1:0".parse().unwrap());
//! builder.add_codec(clock, Box::new(sink), Box::new(SilenceSource::new(0xFF)));
//! let server = builder.spawn().unwrap();
//!
//! // Connect, make an audio context, schedule a beep a bit in the future.
//! let mut conn = AudioConn::open(&server.tcp_addr().unwrap().to_string()).unwrap();
//! let device = conn.find_default_device().unwrap();
//! let ac = conn
//!     .create_ac(device, audiofile::client::AcMask::default(), &Default::default())
//!     .unwrap();
//! let beep = audiofile::dsp::tone::tone_pair(
//!     audiofile::dsp::telephony::call_progress("dialtone").unwrap().spec,
//!     8000.0,
//!     800,
//!     40,
//! );
//! let t = conn.get_time(device).unwrap();
//! conn.play_samples(&ac, t + 800u32, &beep).unwrap();
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
pub use af_chaos as chaos;
pub use af_client as client;
pub use af_device as device;
pub use af_dsp as dsp;
pub use af_proto as proto;
pub use af_server as server;
pub use af_time as time;
pub use af_util as util;
